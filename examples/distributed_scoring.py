"""Distributed Fusion scoring job anatomy (paper Figure 3 / §4.2-§4.3).

Demonstrates the structure of a single scoring job: poses are divided per
node and per rank, each rank's data loaders featurize its subset, model
weights are broadcast Horovod-style, predictions are combined with
``allgather`` and written in parallel to an HDF5-like store whose layout
mirrors ConveyorLC's output.  The analytic throughput model then reports
what the same geometry achieves at paper scale (Table 7 / Figure 4), and
the LSF-style scheduler shows the fault-tolerant many-small-jobs strategy.

Run:  python examples/distributed_scoring.py
"""

from __future__ import annotations

from repro.chem.protein import make_sarscov2_targets
from repro.datasets import build_screening_deck
from repro.docking import CDT1Receptor, CDT2Ligand, CDT3Docking
from repro.eval.reports import format_table, render_series
from repro.experiments.common import build_workbench
from repro.hpc import FaultInjector, FusionThroughputModel, Job, JobScheduler, SchedulerConfig, SimulatedCluster
from repro.screening import FusionScoringJob, read_predictions, table7_rows, figure4_series


def main() -> None:
    workbench = build_workbench("tiny")
    site = make_sarscov2_targets(seed=1)["protease1"]

    print("=== Docking a small deck against Mpro/protease1 (ConveyorLC stages 1-3) ===")
    deck = build_screening_deck({"emolecules": 10}, seed=3)
    receptors = CDT1Receptor().run([site])
    ligands = CDT2Ligand().run(deck.molecules, library="emolecules")
    database = CDT3Docking(num_poses=3, monte_carlo_steps=20, restarts=2, seed=0).run(receptors, ligands)
    records = database.records()
    print(f"docked {len(database.compounds('protease1'))} compounds -> {len(records)} poses")

    print("\n=== Running one 2-node x 2-GPU Fusion scoring job in process ===")
    job = FusionScoringJob(
        model=workbench.coherent_fusion,
        featurizer=workbench.featurizer,
        site=site,
        records=records,
        num_nodes=2,
        gpus_per_node=2,
        batch_size_per_rank=8,
        num_data_workers=2,
        job_name="demo-job",
    )
    result = job.run()
    print(f"ranks: {result.num_ranks}   poses scored: {result.num_poses}")
    for phase, seconds in result.timings.items():
        print(f"  {phase:>11s}: {seconds:.3f} s")
    stored = read_predictions(result.store, "protease1")
    print(f"predictions mirrored to the HDF5-like store: {len(stored)} entries "
          f"(example: {next(iter(stored.items()))})")

    print("\n=== Paper-scale throughput from the analytic model (Table 7) ===")
    rows = table7_rows(FusionThroughputModel())
    table = [[metric, rows["single_job"][metric], rows["peak"][metric]]
             for metric in ("avg_startup_minutes", "avg_evaluation_minutes", "avg_file_output_minutes",
                            "poses_per_second", "compounds_per_hour")]
    print(format_table(["metric", "single 4-node job", "peak (125 jobs / 500 nodes)"], table))

    print("\n=== Strong scaling of one job (Figure 4) ===")
    for batch, series in sorted(figure4_series(batch_sizes=(12, 56)).items()):
        print(render_series(f"batch size {batch}", [n for n, _ in series], [t for _, t in series],
                            "nodes", "run time (minutes)"))

    print("\n=== Fault-tolerant scheduling of a 12-job allotment ===")
    model = FusionThroughputModel()
    cluster = SimulatedCluster(num_nodes=48)
    scheduler = JobScheduler(cluster, SchedulerConfig(walltime_limit_seconds=12 * 3600), FaultInjector(seed=11))
    for index in range(12):
        scheduler.submit(Job(name=f"job{index}", num_nodes=4, duration_seconds=model.estimate().total_minutes * 60))
    scheduler.run()
    failures = [name for name, job in scheduler.jobs.items() if job.attempts > 1]
    print(f"completed {len(scheduler.completed_jobs())}/12 jobs; requeued after faults: {failures or 'none'}")
    print(f"campaign makespan: {scheduler.makespan() / 3600:.2f} simulated hours")


if __name__ == "__main__":
    main()
