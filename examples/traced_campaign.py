"""A fully-traced streaming screen: flamegraph, metrics, run record.

Runs the shard-parallel streaming screening engine with telemetry
enabled and exports all three observability artifacts:

1. ``traced_screen.trace.json`` — Chrome trace-event flamegraph (open it
   at https://ui.perfetto.dev or in ``chrome://tracing``): the run span
   on the coordinator thread, shard spans nested under it across the
   worker threads, docking/featurization kernel spans nested under the
   shards;
2. the metrics snapshot — every counter and latency histogram the run
   touched, printed;
3. ``traced_screen.run_record.json`` — the schema-validated run record
   with the paper's Table 7 startup/evaluation/output phase accounting
   rebuilt from real spans, plus worker occupancy and fault history.

Telemetry is off by default and free when off — a traced run produces
bit-identical scores to an untraced one (pinned by the golden test in
``tests/test_telemetry.py``).

Run:  python examples/traced_campaign.py
Expected runtime: a couple of minutes (it trains the fusion model first).
"""

from __future__ import annotations

import json

from repro.chem.protein import make_sarscov2_targets
from repro.datasets.libraries import build_screening_deck
from repro.experiments.common import build_workbench
from repro.screening.stream import StreamConfig, StreamingScreen
from repro.telemetry import Telemetry, validate_run_record


def main() -> None:
    print("=== Training the Coherent Fusion model (tiny workbench) ===")
    workbench = build_workbench("tiny")

    print("\n=== Streaming screen with telemetry enabled ===")
    sites = make_sarscov2_targets(seed=2020)
    sites = {name: sites[name] for name in ("protease1", "protease2")}
    deck = build_screening_deck({"emolecules": 8, "zinc_world_approved": 6}, seed=2020)
    config = StreamConfig(
        shard_size=4,
        workers=2,
        top_k=5,
        poses_per_compound=2,
        docking_mc_steps=8,
        docking_restarts=1,
        seed=2020,
    )
    telemetry = Telemetry(enabled=True)
    engine = StreamingScreen(
        workbench.coherent_fusion,
        workbench.featurizer,
        sites,
        config,
        telemetry=telemetry,
    )
    result = engine.run(deck.molecules)
    print(f"screened {result.num_compounds} compounds in {result.num_shards} shards "
          f"({result.duration_s:.1f}s, {result.steals} steals)")
    for site_name in sites:
        best = result.top_k[site_name][0]
        print(f"  {site_name}: best {best.compound_id} @ {best.score:.3f}")

    print("\n=== Exported flamegraph ===")
    trace_path = telemetry.export_chrome_trace("traced_screen.trace.json")
    print(f"{len(telemetry.tracer)} spans -> {trace_path} (open in ui.perfetto.dev)")

    print("\n=== Metrics snapshot ===")
    snapshot = telemetry.snapshot()
    for name, value in snapshot["counters"].items():
        print(f"  {name:28s} {value}")
    shard_seconds = snapshot["histograms"]["stream.shard_s"]
    print(f"  shard seconds: p50={shard_seconds['p50']:.3f}  p99={shard_seconds['p99']:.3f}")

    print("\n=== Run record (Table 7 phase accounting from real spans) ===")
    record = engine.run_record()
    validate_run_record(record)
    stage = record["stages"][0]
    for phase, seconds in stage["phases"].items():
        print(f"  {phase:12s} {seconds:7.3f}s")
    for row in record["workers"]["occupancy"]:
        print(f"  worker {row['worker']}: busy {row['busy_s']:.2f}s "
              f"(utilization {row['utilization']:.0%})")
    with open("traced_screen.run_record.json", "w") as handle:
        json.dump(record, handle, indent=2)
    print("run record -> traced_screen.run_record.json")


if __name__ == "__main__":
    main()
