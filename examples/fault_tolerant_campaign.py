"""Fault-tolerant campaign execution: checkpoints, kill, resume (paper §4.3).

The production campaign ran for days under a 12-hour LSF wall-time limit
with 2-20 % job failure rates, so the architecture leaned on many small
requeueable jobs.  ``repro.runtime`` brings that to the reproduction:
the campaign runs as a graph of named stages, every completed stage is
checkpointed under a content key, and a killed campaign resumes from the
last completed stage.  This example:

1. starts a checkpointed campaign and kills it right after docking;
2. resumes it — the physics stages restore from checkpoints and only
   the remaining stages execute;
3. re-runs it once more under a 30 % injected fault rate to show the
   per-job retry/backoff machinery absorbing faults without changing a
   single score.

Run:  python examples/fault_tolerant_campaign.py
Expected runtime: a few minutes (it trains the fusion model first).
"""

from __future__ import annotations

import tempfile

from repro.experiments.common import build_workbench
from repro.hpc.faults import FaultInjector
from repro.runtime import CampaignRuntime, RetryPolicy, RuntimeConfig
from repro.screening import CampaignConfig, CompoundCostFunction


def make_runtime(workbench, runtime_config: RuntimeConfig) -> CampaignRuntime:
    return CampaignRuntime(
        model=workbench.coherent_fusion,
        featurizer=workbench.featurizer,
        campaign=CampaignConfig(
            library_counts={"emolecules": 12, "enamine": 8},
            poses_per_compound=2,
            compounds_tested_per_site=6,
            seed=2020,
            nodes_per_job=2,
            gpus_per_node=2,
        ),
        runtime=runtime_config,
        cost_function=CompoundCostFunction(),
    )


def describe(runtime: CampaignRuntime) -> None:
    for report in runtime.report.stages:
        line = f"  {report.name:16s} {report.status:9s} {report.duration_s * 1e3:8.1f} ms"
        if report.retries:
            line += f"  retries={report.retries}"
        print(line)


def main() -> None:
    print("=== Training the Coherent Fusion model (tiny workbench) ===")
    workbench = build_workbench("tiny")

    checkpoint_dir = tempfile.mkdtemp(prefix="campaign-checkpoints-")
    print(f"\ncheckpoints: {checkpoint_dir}")

    print("\n=== 1. Campaign killed right after the docking stage ===")
    killed = make_runtime(workbench, RuntimeConfig(checkpoint_dir=checkpoint_dir))
    killed.run(stop_after="docking")
    describe(killed)
    print(f"  checkpointed stages: {sorted(killed.checkpoints.completed_stages())}")

    print("\n=== 2. Resumed campaign: completed stages restore, the rest execute ===")
    resumed = make_runtime(workbench, RuntimeConfig(checkpoint_dir=checkpoint_dir))
    result = resumed.run()
    describe(resumed)
    summary = result.summary()
    print(f"  poses scored: {summary['num_poses_scored']:.0f}  "
          f"tested: {summary['num_tested']:.0f}  hit rate: {summary['hit_rate_33pct']:.1%}")

    print("\n=== 3. Fresh run under 30% injected faults (retry with backoff) ===")
    faulty_dir = tempfile.mkdtemp(prefix="campaign-faulty-")
    faulty = make_runtime(
        workbench,
        RuntimeConfig(
            checkpoint_dir=faulty_dir,
            fault_injector=FaultInjector.uniform(0.30, seed=7),
            retry=RetryPolicy(max_retries=20, backoff_s=0.001),
            modelled_schedule=True,
        ),
    )
    faulty_result = faulty.run()
    describe(faulty)
    fusion = faulty.report.stage("fusion_scoring")
    modelled = fusion.extra["modelled_schedule"]
    print(f"  fusion jobs: {modelled['jobs']:.0f}  attempts: {fusion.attempts}  "
          f"retries absorbed: {fusion.retries}")
    print(f"  modelled LSF makespan at paper scale: {modelled['makespan_s'] / 3600:.2f} h")

    identical = {
        (r.site_name, r.compound_id, r.pose_id): r.fusion_pk for r in result.database.records()
    } == {
        (r.site_name, r.compound_id, r.pose_id): r.fusion_pk for r in faulty_result.database.records()
    }
    print(f"\nfault-retried scores bit-identical to the clean run: {identical}")


if __name__ == "__main__":
    main()
