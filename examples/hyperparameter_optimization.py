"""Distributed, genetic hyper-parameter optimization with PB2 (paper §3.2-§3.3).

Runs a small Population-Based Bandits optimization of the SG-CNN over the
paper's Table 1 search space (restricted to the dimensions that matter at
toy scale), showing the exploit/explore events and the learned
hyper-parameter schedule, and compares the best configuration against the
paper's final Table 2 values.

Run:  python examples/hyperparameter_optimization.py
"""

from __future__ import annotations

from repro.eval.reports import format_table
from repro.experiments.common import build_workbench
from repro.hpo import PB2Scheduler, SearchSpace, TuneConfig, TuneRunner, Uniform, Choice
from repro.models import SGCNN, SGCNNConfig, Trainer, TrainerConfig
from repro.models.config import SGCNNConfig as PaperSGCNN


def main() -> None:
    workbench = build_workbench("tiny")

    space = SearchSpace()
    space.add(Uniform("learning_rate", 2e-4, 2e-2, log=True))   # Table 1 SG-CNN range
    space.add(Choice("batch_size", (4, 8, 12, 16)))
    space.add(Choice("covalent_k", (2, 3, 4)))
    space.add(Choice("noncovalent_k", (2, 3, 4)))

    def trainer_factory(config):
        model_config = SGCNNConfig.scaled_down()
        model_config.covalent_k = int(config["covalent_k"])
        model_config.noncovalent_k = int(config["noncovalent_k"])
        model = SGCNN(model_config, seed=0)
        return Trainer(
            model, workbench.train_samples, workbench.val_samples,
            TrainerConfig(batch_size=int(config["batch_size"]), learning_rate=float(config["learning_rate"]), seed=0),
        )

    scheduler = PB2Scheduler(space, quantile_fraction=0.5, seed=0)
    runner = TuneRunner(
        trainer_factory, space, scheduler,
        TuneConfig(population_size=4, max_epochs=6, perturbation_interval=2,
                   session_epoch_limit=3, seed=0),  # session limit emulates the LSF 12h wall clock
    )

    print("=== Running PB2 (population of 4, 6 epochs, perturbation every 2 epochs) ===")
    result = runner.run()
    print(f"sessions (LSF-style pause/resume): {result.sessions}")
    print(f"exploit/explore events: {len(result.exploit_events)}")
    for epoch, trial, donor in result.exploit_events:
        print(f"  epoch {epoch}: trial {trial} cloned trial {donor} and explored new hyper-parameters")

    print("\n=== Learned hyper-parameter schedule of the best trial ===")
    for epoch, score, config in result.best_trial.history:
        print(f"  epoch {epoch}: val MSE {score:6.2f}  lr={config['learning_rate']:.2e}  batch={config['batch_size']}")

    paper = PaperSGCNN.paper()
    rows = [
        ["learning_rate", f"{result.best_config['learning_rate']:.2e}", f"{paper.learning_rate:.2e}"],
        ["batch_size", result.best_config["batch_size"], paper.batch_size],
        ["covalent_k", result.best_config["covalent_k"], paper.covalent_k],
        ["noncovalent_k", result.best_config["noncovalent_k"], paper.noncovalent_k],
    ]
    print()
    print(format_table(
        ["hyper-parameter", "best found (toy PB2)", "paper Table 2"],
        rows,
        title=f"Best validation MSE: {result.best_score:.3f}",
    ))


if __name__ == "__main__":
    main()
