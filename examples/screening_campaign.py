"""End-to-end SARS-CoV-2 virtual screening campaign (paper §4-§5 at toy scale).

The pipeline run here is the paper's, stage for stage:

1. compound libraries (synthetic eMolecules / Enamine / ZINC decks);
2. ConveyorLC: ligand prep, Vina-style docking, MM/GBSA rescoring;
3. distributed Coherent Fusion scoring jobs (MPI-rank partitioning,
   allgather, HDF5-like output);
4. a compound cost function selecting candidates per binding site;
5. simulated experimental assays (FRET at 100 µM for Mpro, pseudo-virus /
   BLI at 10 µM for spike) and the retrospective hit-rate analysis.

Run:  python examples/screening_campaign.py
Expected runtime: a few minutes (it trains the fusion model first).
"""

from __future__ import annotations

from repro.eval.reports import format_table
from repro.experiments.common import build_workbench
from repro.screening import CampaignConfig, CompoundCostFunction, ScreeningCampaign


def main() -> None:
    print("=== Training the Coherent Fusion model (tiny workbench) ===")
    workbench = build_workbench("tiny")
    print(f"trained on {len(workbench.train_samples)} complexes; "
          f"coherent fusion best val MSE {workbench.histories['coherent_fusion'].best_val_loss:.2f}")

    print("\n=== Running the screening campaign ===")
    config = CampaignConfig(
        library_counts={"emolecules": 16, "enamine": 12, "zinc_world_approved": 8},
        poses_per_compound=3,
        compounds_tested_per_site=10,
        seed=2020,
    )
    campaign = ScreeningCampaign(
        model=workbench.coherent_fusion,
        featurizer=workbench.featurizer,
        config=config,
        cost_function=CompoundCostFunction(),
    ).run()

    summary = campaign.summary()
    print(f"poses scored: {summary['num_poses_scored']:.0f}  "
          f"compounds tested: {summary['num_tested']:.0f}  "
          f"hit rate (>33% inhibition): {summary['hit_rate_33pct']:.1%}")

    print("\n=== Scoring-job telemetry (Figure 3 / Table 7 structure) ===")
    for result in campaign.job_results[:4]:
        modelled = result.modelled
        print(f"  {result.job_name:22s} ranks={result.num_ranks:2d} poses={result.num_poses:4d} "
              f"eval={result.timings['evaluation']:.2f}s  "
              f"(paper-scale model: {modelled.poses_per_second:.0f} poses/s for 2M-pose jobs)")

    print("\n=== Top selected compounds per target ===")
    for site_name, selection in campaign.selections.items():
        rows = []
        for score in selection[:5]:
            inhibition = campaign.assays.inhibition_of(site_name, score.compound_id)
            rows.append([score.compound_id, score.fusion_pk, score.vina_score, inhibition])
        print(format_table(
            ["compound", "Fusion pK", "Vina score", "% inhibition"],
            rows,
            title=f"{site_name} (assay at {campaign.assays.for_site(site_name)[0].concentration_um:.0f} uM)"
            if campaign.assays.for_site(site_name) else site_name,
        ))
        print()


if __name__ == "__main__":
    main()
