"""Retrospective analysis of the screening campaign (paper §5.2-§5.3).

Connects computational predictions to the simulated experimental results:
per-target correlations of Vina / AMPL MM/GBSA / Coherent Fusion with
percent inhibition (Table 8), the >33 % inhibition binary classification
with precision/recall and Cohen's kappa (Figure 6), the predicted-affinity
vs inhibition scatter (Figure 5) and the top confirmed compounds
(Figure 7).

Run:  python examples/retrospective_analysis.py
Expected runtime: a few minutes.
"""

from __future__ import annotations

from repro.eval.reports import render_pr_summary
from repro.experiments import figure5, figure6, figure7, table8
from repro.experiments.common import build_workbench, run_campaign


def main() -> None:
    workbench = build_workbench("tiny")
    campaign = run_campaign(
        workbench,
        library_counts={"emolecules": 20, "enamine": 16, "zinc_world_approved": 8},
        compounds_tested_per_site=14,
        poses_per_compound=3,
        seed=2021,
    )
    print(f"campaign: {len(campaign.database)} poses scored, "
          f"{sum(len(v) for v in campaign.selections.values())} compounds tested experimentally, "
          f"hit rate {campaign.hit_rate():.1%} at >33% inhibition\n")

    print("=== Table 8: correlation with percent inhibition (>1% inhibitors) ===")
    rows = table8.run_table8(workbench, campaign)
    print(table8.render(rows))
    best = {}
    for row in rows:
        if row.n >= 3 and row.pearson == row.pearson:  # skip NaN
            current = best.get(row.target)
            if current is None or row.pearson > current[1]:
                best[row.target] = (row.method, row.pearson)
    for target, (method, value) in sorted(best.items()):
        print(f"  best method for {target}: {method} (Pearson {value:+.2f})")

    print("\n=== Figure 5: predicted affinity vs percent inhibition ===")
    for site_name, series in sorted(figure5.run_figure5(workbench, campaign).items()):
        print(f"  {site_name}: {series.num_points} active compounds at {series.concentration_um:.0f} uM")

    print("\n=== Figure 6: classification at the 33% inhibition threshold ===")
    result = figure6.run_figure6(workbench, campaign)
    for site_name, per_method in sorted(result.per_site.items()):
        positives, negatives = result.counts[site_name]
        print(f"\n{site_name}  ({positives} positives / {negatives} negatives)")
        if per_method:
            print(render_pr_summary(per_method))
        else:
            print("  too few positives at this scale for a P/R analysis")

    print("\n=== Figure 7: top experimentally confirmed compounds ===")
    print(figure7.render(figure7.run_figure7(workbench, campaign, sites=("protease1", "spike1"))))


if __name__ == "__main__":
    main()
