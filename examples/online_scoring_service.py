"""Online scoring service: sustained traffic against a fusion model.

Demonstrates the ``repro.serving`` subsystem: a ``ScoringService`` is
started over the trained Coherent Fusion model with two model replicas,
a dynamic micro-batcher and a content-addressed result cache.  A burst
of docked poses is scored request-by-request (online path), the same
traffic is replayed against the warm cache, admission control is pushed
until the service rejects with ``Overloaded``, and the latency /
throughput metrics are printed after each phase.

Run:  python examples/online_scoring_service.py
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.chem.complexes import ProteinLigandComplex
from repro.chem.protein import make_sarscov2_targets
from repro.datasets import build_screening_deck
from repro.docking import CDT1Receptor, CDT2Ligand, CDT3Docking
from repro.experiments.common import build_workbench
from repro.serving import Overloaded, ScoringService, ServingConfig


def print_snapshot(title: str, snap) -> None:
    print(f"--- {title} ---")
    print(f"  completed        : {snap.completed} requests ({snap.rejected} rejected)")
    print(f"  sustained rate   : {snap.requests_per_second:8.1f} requests/s")
    print(f"  latency p50/p99  : {snap.latency_p50_ms:6.2f} / {snap.latency_p99_ms:6.2f} ms")
    print(f"  batch occupancy  : {snap.batch_occupancy:6.2f} (mean size {snap.mean_batch_size:.1f})")
    print(f"  cache hit rate   : {snap.cache_hit_rate:6.2%}")


def main() -> None:
    workbench = build_workbench("tiny")
    site = make_sarscov2_targets(seed=1)["protease1"]

    print("=== Docking a compound deck to generate online traffic ===")
    deck = build_screening_deck({"emolecules": 16}, seed=3)
    receptors = CDT1Receptor().run([site])
    ligands = CDT2Ligand().run(deck.molecules, library="emolecules")
    database = CDT3Docking(num_poses=3, monte_carlo_steps=20, restarts=2, seed=0).run(receptors, ligands)
    complexes = [
        ProteinLigandComplex(site, r.pose, complex_id=r.compound_id, pose_id=r.pose_id)
        for r in database.records()
    ]
    print(f"docked {len(complexes)} poses to serve as requests")

    config = ServingConfig(max_batch_size=8, max_wait_s=0.01, num_replicas=2, queue_capacity=64)
    print(f"\n=== Cold pass: {len(complexes)} requests from 8 concurrent clients, {config.num_replicas} replicas ===")
    with ScoringService(model=workbench.coherent_fusion, featurizer=workbench.featurizer, config=config) as service:
        with ThreadPoolExecutor(max_workers=8) as clients:
            pending = list(clients.map(service.submit, complexes))
        responses = [p.result() for p in pending]
        print(f"first scores: {[round(r.score, 3) for r in responses[:4]]}")
        print(f"replica spread: {service.pool.completed_batches()} batches per replica")
        print_snapshot("cold metrics", service.snapshot())

        print("\n=== Warm pass: identical traffic, content-addressed cache ===")
        service.metrics.reset()
        warm = [service.submit(c).result() for c in complexes]
        assert all(r.cached for r in warm)
        print_snapshot("warm metrics", service.snapshot())

        print("\n=== Backpressure: flooding a tiny queue until Overloaded ===")
        service.metrics.reset()
        tiny = ScoringService(
            model=workbench.coherent_fusion,
            featurizer=workbench.featurizer,
            config=ServingConfig(max_batch_size=2, max_wait_s=0.05, num_replicas=1, queue_capacity=2,
                                 cache_enabled=False),
        ).start()
        def flood(complex_) -> int:
            try:
                tiny.submit(complex_)
                return 0
            except Overloaded:
                return 1

        with ThreadPoolExecutor(max_workers=8) as clients:
            rejected = sum(clients.map(flood, complexes))
        tiny.drain()
        tiny.close()
        print(f"tiny service rejected {rejected}/{len(complexes)} requests with Overloaded")

    print("\ndone: service drained and closed cleanly")


if __name__ == "__main__":
    main()
