"""Quickstart: train a binding-affinity model on the synthetic PDBbind dataset.

This mirrors the core supervised-learning task of the paper at toy scale:

1. generate a synthetic PDBbind-2019-like dataset (general / refined /
   core strata, quintile train/validation split);
2. featurize complexes into voxel grids (3D-CNN head) and spatial graphs
   (SG-CNN head);
3. train the SG-CNN and 3D-CNN heads and combine them with Late Fusion;
4. evaluate on the held-out core set with the paper's Table 6 metrics.

Run:  python examples/quickstart.py
Expected runtime: ~1-2 minutes on a laptop CPU.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import PDBbindConfig, generate_pdbbind
from repro.eval import regression_report
from repro.eval.reports import format_table
from repro.featurize import ComplexFeaturizer, GraphConfig, VoxelGridConfig
from repro.models import CNN3D, CNN3DConfig, LateFusion, SGCNN, SGCNNConfig, Trainer, TrainerConfig


def main() -> None:
    print("=== 1. Generating a synthetic PDBbind dataset ===")
    dataset = generate_pdbbind(
        PDBbindConfig(n_general=60, n_refined=30, n_core=16, n_families=10, n_core_families=3, seed=7)
    )
    print(f"general={len(dataset.general)}  refined={len(dataset.refined)}  core={len(dataset.core)}")
    for subset, stats in dataset.label_statistics().items():
        print(f"  {subset:8s} pK mean={stats['mean']:.2f} sd={stats['std']:.2f} range=[{stats['min']:.1f}, {stats['max']:.1f}]")

    print("\n=== 2. Featurizing (voxel grids + spatial graphs) ===")
    featurizer = ComplexFeaturizer(
        voxel_config=VoxelGridConfig(grid_dim=12, channel_set="reduced"),
        graph_config=GraphConfig(),  # paper Table 2 thresholds by default
        augment=True,
        seed=7,
    )
    train_entries, val_entries = dataset.train_val_split()
    train = dataset.featurize_entries(train_entries, featurizer, training=True)
    val = dataset.featurize_entries(val_entries, featurizer)
    core = dataset.featurize_entries(dataset.core, featurizer)
    print(f"train={len(train)}  val={len(val)}  core(held-out)={len(core)}")

    print("\n=== 3. Training the SG-CNN and 3D-CNN heads ===")
    sg_config = SGCNNConfig.scaled_down()
    sgcnn = SGCNN(sg_config, seed=0)
    sg_history = Trainer(
        sgcnn, train, val,
        TrainerConfig(epochs=12, batch_size=8, learning_rate=sg_config.learning_rate, seed=0),
    ).fit(log_fn=lambda e, tr, va: print(f"  SG-CNN  epoch {e:2d}  train MSE {tr:6.2f}  val MSE {va:6.2f}"))

    cnn_config = CNN3DConfig.scaled_down()
    cnn_config.grid_dim = 12
    cnn_config.in_channels = featurizer.voxelizer.config.num_channels
    cnn3d = CNN3D(cnn_config, seed=0)
    cnn_history = Trainer(
        cnn3d, train, val,
        TrainerConfig(epochs=10, batch_size=8, learning_rate=cnn_config.learning_rate, seed=0),
    ).fit(log_fn=lambda e, tr, va: print(f"  3D-CNN  epoch {e:2d}  train MSE {tr:6.2f}  val MSE {va:6.2f}"))

    print(f"\nbest val MSE: SG-CNN {sg_history.best_val_loss:.2f}, 3D-CNN {cnn_history.best_val_loss:.2f}")

    print("\n=== 4. Core-set evaluation (Table 6 metrics) ===")
    late_fusion = LateFusion(cnn3d, sgcnn)
    targets = np.array([s.target for s in core])
    rows = []
    for name, model in (("SG-CNN", sgcnn), ("3D-CNN", cnn3d), ("Late Fusion", late_fusion)):
        predictions = Trainer(model, core[:1], [], TrainerConfig(batch_size=8)).predict(core)
        report = regression_report(targets, predictions)
        rows.append([name, report["rmse"], report["mae"], report["r2"], report["pearson"], report["spearman"]])
    print(format_table(["model", "RMSE", "MAE", "R2", "Pearson", "Spearman"], rows,
                       title="Held-out core set (crystal structures)"))


if __name__ == "__main__":
    main()
