"""Tests for the SMILES dialect, the molecule generator and the prep pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chem.atom import Atom
from repro.chem.generator import GeneratorProfile, MoleculeGenerator
from repro.chem.molecule import Bond, Molecule
from repro.chem.prep import LigandPrepPipeline
from repro.chem.smiles import canonical_ranks, parse_smiles, to_smiles


def graphs_isomorphic(a: Molecule, b: Molecule) -> bool:
    """Cheap isomorphism check adequate for round-trip testing."""
    import networkx as nx

    ga, gb = a.to_graph(), b.to_graph()
    return nx.is_isomorphic(
        ga, gb, node_match=lambda x, y: x["element"] == y["element"],
        edge_match=lambda x, y: x["order"] == y["order"],
    )


class TestSmiles:
    def test_simple_chain(self):
        mol = Molecule([Atom("C"), Atom("C"), Atom("O")], [Bond(0, 1), Bond(1, 2, 2)])
        smiles = to_smiles(mol)
        parsed = parse_smiles(smiles)
        assert parsed.num_atoms == 3
        assert sorted(b.order for b in parsed.bonds) == [1, 2]

    def test_ring_roundtrip(self):
        atoms = [Atom("C") for _ in range(6)]
        bonds = [Bond(i, (i + 1) % 6) for i in range(6)]
        mol = Molecule(atoms, bonds)
        parsed = parse_smiles(to_smiles(mol))
        assert parsed.num_bonds == 6
        assert parsed.num_rings() == 1
        assert graphs_isomorphic(mol, parsed)

    def test_charged_and_bracket_atoms(self):
        mol = Molecule([Atom("N", formal_charge=1), Atom("C"), Atom("O", formal_charge=-1)], [Bond(0, 1), Bond(1, 2)])
        smiles = to_smiles(mol)
        assert "[N+]" in smiles and "[O-]" in smiles
        parsed = parse_smiles(smiles)
        assert parsed.net_charge() == 0

    def test_disconnected_salt(self):
        mol = Molecule([Atom("C"), Atom("C"), Atom("Na", formal_charge=1)], [Bond(0, 1)])
        smiles = to_smiles(mol)
        assert "." in smiles
        parsed = parse_smiles(smiles)
        assert len(parsed.connected_components()) == 2

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_smiles("C(C")
        with pytest.raises(ValueError):
            parse_smiles("C1CC")  # unclosed ring
        with pytest.raises(ValueError):
            parse_smiles("C$")

    def test_canonical_ranks_symmetry(self):
        # a symmetric molecule: both terminal carbons get the same rank
        mol = Molecule([Atom("C"), Atom("O"), Atom("C")], [Bond(0, 1), Bond(1, 2)])
        ranks = canonical_ranks(mol)
        assert ranks[0] == ranks[2]
        assert ranks[1] != ranks[0]

    def test_equivalent_graphs_same_string(self):
        mol1 = Molecule([Atom("C"), Atom("N"), Atom("C")], [Bond(0, 1), Bond(1, 2)])
        mol2 = Molecule([Atom("C"), Atom("C"), Atom("N")], [Bond(2, 0), Bond(2, 1)])
        assert to_smiles(mol1) == to_smiles(mol2)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_generated_molecules_roundtrip(self, seed):
        generator = MoleculeGenerator(GeneratorProfile(heavy_atoms_mean=16, heavy_atoms_sd=4), seed=seed, embed=False)
        mol = generator.generate()
        parsed = parse_smiles(to_smiles(mol))
        assert parsed.num_atoms == mol.num_atoms
        assert parsed.num_bonds == mol.num_bonds
        assert graphs_isomorphic(mol, parsed)


class TestGenerator:
    def test_sizes_respect_profile(self):
        profile = GeneratorProfile(heavy_atoms_mean=20, heavy_atoms_sd=3, heavy_atoms_min=10, heavy_atoms_max=30)
        generator = MoleculeGenerator(profile, seed=1, embed=False)
        sizes = [generator.generate().num_atoms for _ in range(20)]
        assert all(10 <= s <= 30 for s in sizes)
        assert 14 <= np.mean(sizes) <= 26

    def test_connected_drug_like_molecules(self):
        generator = MoleculeGenerator(seed=2)
        for mol in generator.generate_many(5):
            assert len(mol.connected_components()) == 1
            assert np.isfinite(mol.coordinates).all()
            # carbon-dominated composition
            assert sum(1 for a in mol.atoms if a.element == "C") >= 0.4 * mol.num_atoms

    def test_salts_and_metals_appear_at_configured_rate(self):
        profile = GeneratorProfile(salt_probability=1.0, metal_probability=0.0)
        generator = MoleculeGenerator(profile, seed=3, embed=False)
        mol = generator.generate()
        assert len(mol.connected_components()) == 2

    def test_determinism_with_seed(self):
        a = MoleculeGenerator(seed=9, embed=False).generate()
        b = MoleculeGenerator(seed=9, embed=False).generate()
        assert to_smiles(a) == to_smiles(b)


class TestPrepPipeline:
    def test_strip_salts_keeps_largest_component(self):
        mol = Molecule([Atom("C"), Atom("C"), Atom("C"), Atom("Cl", formal_charge=-1)], [Bond(0, 1), Bond(1, 2)])
        stripped, flag = LigandPrepPipeline.strip_salts(mol)
        assert flag and stripped.num_atoms == 3

    def test_metal_ligands_rejected(self):
        pipeline = LigandPrepPipeline(minimize=False)
        mol = Molecule([Atom("C"), Atom("N"), Atom("Zn")], [Bond(0, 1), Bond(1, 2)])
        assert pipeline.process(mol) is None
        assert pipeline.stats.rejected_metal == 1

    def test_protonation_rules(self):
        # an aliphatic amine nitrogen becomes positively charged at pH 7
        amine = Molecule([Atom("C"), Atom("N")], [Bond(0, 1)])
        protonated = LigandPrepPipeline.protonate(amine)
        assert protonated.atoms[1].formal_charge == 1
        # a carboxylate-like oxygen becomes negative
        acid = Molecule([Atom("C"), Atom("C"), Atom("O"), Atom("O")], [Bond(0, 1), Bond(1, 2, 2), Bond(1, 3)])
        deprotonated = LigandPrepPipeline.protonate(acid)
        charges = [a.formal_charge for a in deprotonated.atoms]
        assert -1 in charges

    def test_process_generates_coordinates_and_descriptors(self, molecules):
        pipeline = LigandPrepPipeline(minimize=True, seed=0)
        prepared = pipeline.process(molecules[0], library="lib", compound_id="cmp-1")
        assert prepared is not None
        assert prepared.compound_id == "cmp-1"
        assert prepared.smiles
        assert prepared.descriptors["molecular_weight"] > 0
        assert np.isfinite(prepared.molecule.coordinates).all()

    def test_output_formats(self, prepared_ligands):
        ligand = prepared_ligands[0]
        sdf = LigandPrepPipeline.to_sdf_text(ligand)
        assert "V2000" in sdf and sdf.rstrip().endswith("$$$$")
        pdbqt = LigandPrepPipeline.to_pdbqt_text(ligand)
        assert pdbqt.startswith("REMARK")
        assert "TORSDOF" in pdbqt
        assert len([l for l in pdbqt.splitlines() if l.startswith("ATOM")]) == ligand.molecule.num_atoms

    def test_stats_accumulate(self, molecules):
        pipeline = LigandPrepPipeline(minimize=False, seed=1)
        prepared = pipeline.process_many(molecules, library="x")
        assert pipeline.stats.input_count == len(molecules)
        assert pipeline.stats.prepared == len(prepared)
