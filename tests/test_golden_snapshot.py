"""End-to-end golden snapshot of a seeded mini-campaign's fusion scores.

The committed fixture (``tests/data/golden_fusion_scores.json``) pins the
Coherent Fusion scores of the first poses of the session mini-campaign.
The suite asserts the snapshot is reproduced *identically* through three
scoring routes:

* **direct** — scalar reference featurizer + the batched model entry
  point, one pose per batch;
* **engine-cached** — the vectorized ``FeaturePipeline``, scored cold
  and again fully cache-served;
* **serving-routed** — the online ``ScoringService`` with deterministic
  single-pose batches.

Identical means ``==`` on floats: any perturbation of featurization,
collation or forward-pass numerics fails this test.

Regenerating the fixture (only after an intentional numerical change):
``PYTHONPATH=src:tests python -c "import test_golden_snapshot as m; m.regenerate()"``
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.chem.complexes import ProteinLigandComplex
from repro.featurize.engine import FeaturePipeline
from repro.featurize.pipeline import ComplexFeaturizer
from repro.serving import ScoringService, ServingConfig

FIXTURE_PATH = Path(__file__).parent / "data" / "golden_fusion_scores.json"
NUM_POSES = 6


def campaign_complexes(campaign) -> list[ProteinLigandComplex]:
    """The snapshot's poses: the first records of the campaign's first site."""
    site_name = sorted(campaign.database.sites())[0]
    site = campaign.sites[site_name]
    records = [r for r in campaign.database.records() if r.site_name == site_name][:NUM_POSES]
    assert len(records) == NUM_POSES, "mini-campaign produced fewer poses than the snapshot needs"
    return [
        ProteinLigandComplex(site, r.pose, complex_id=r.compound_id, pose_id=r.pose_id)
        for r in records
    ]


def featurizer_configs(workbench):
    return workbench.featurizer.voxelizer.config, workbench.featurizer.graph_builder.config


def score_direct(workbench, complexes) -> list[float]:
    """Reference route: scalar featurizer, one pose per model batch."""
    voxel_config, graph_config = featurizer_configs(workbench)
    scalar = ComplexFeaturizer(voxel_config, graph_config)
    model = workbench.coherent_fusion
    return [float(model.predict_batch([scalar.featurize(c)])[0]) for c in complexes]


def score_engine(workbench, complexes) -> tuple[list[float], list[float]]:
    """Engine route: vectorized pipeline, cold pass then fully cached pass."""
    voxel_config, graph_config = featurizer_configs(workbench)
    engine = FeaturePipeline(voxel_config, graph_config)
    model = workbench.coherent_fusion
    cold = [float(model.predict_batch([s])[0]) for s in engine.featurize_many(complexes)]
    cached = [float(model.predict_batch([s])[0]) for s in engine.featurize_many(complexes)]
    stats = engine.stats()
    assert stats.hits >= len(complexes), "second pass should be fully cache-served"
    return cold, cached


def score_serving(workbench, complexes) -> list[float]:
    """Serving route: single-pose batches make scoring order-independent."""
    voxel_config, graph_config = featurizer_configs(workbench)
    config = ServingConfig(
        max_batch_size=1, num_replicas=1, queue_capacity=max(len(complexes), 8)
    )
    engine = FeaturePipeline(voxel_config, graph_config)
    with ScoringService(
        model=workbench.coherent_fusion, featurizer=engine, config=config
    ) as service:
        responses = service.score_many(complexes, timeout=120.0)
    return [float(r.score) for r in responses]


class TestGoldenSnapshot:
    def test_fixture_reproduced_via_all_routes(self, workbench, campaign):
        fixture = json.loads(FIXTURE_PATH.read_text())
        complexes = campaign_complexes(campaign)

        assert [c.complex_id for c in complexes] == [r["compound_id"] for r in fixture["poses"]]
        assert [c.pose_id for c in complexes] == [r["pose_id"] for r in fixture["poses"]]
        golden = [r["score"] for r in fixture["poses"]]

        direct = score_direct(workbench, complexes)
        cold, cached = score_engine(workbench, complexes)
        serving = score_serving(workbench, complexes)

        assert direct == golden, "direct route diverged from the committed snapshot"
        assert cold == golden, "engine route diverged from the committed snapshot"
        assert cached == golden, "cache-served features changed the scores"
        assert serving == golden, "serving route diverged from the committed snapshot"

    def test_fixture_metadata_matches_session_campaign(self, workbench, campaign):
        fixture = json.loads(FIXTURE_PATH.read_text())
        assert fixture["campaign_seed"] == 99
        assert fixture["workbench_scale"] == "tiny"
        assert fixture["site"] == sorted(campaign.database.sites())[0]
        assert fixture["grid_dim"] == workbench.featurizer.voxelizer.config.grid_dim

    def test_snapshot_scores_are_finite_pk_values(self):
        fixture = json.loads(FIXTURE_PATH.read_text())
        for row in fixture["poses"]:
            assert -5.0 < row["score"] < 20.0


def regenerate() -> None:  # pragma: no cover - maintenance helper
    """Rebuild the committed fixture after an intentional numerical change."""
    from repro.experiments.common import build_workbench, run_campaign

    workbench = build_workbench("tiny")
    campaign = run_campaign(
        workbench,
        library_counts={"emolecules": 8, "zinc_world_approved": 4},
        compounds_tested_per_site=6,
        poses_per_compound=2,
        seed=99,
    )
    complexes = campaign_complexes(campaign)
    scores = score_direct(workbench, complexes)
    fixture = {
        "description": "Coherent Fusion scores of the seeded mini-campaign's first poses",
        "campaign_seed": 99,
        "workbench_scale": "tiny",
        "site": sorted(campaign.database.sites())[0],
        "grid_dim": workbench.featurizer.voxelizer.config.grid_dim,
        "poses": [
            {"compound_id": c.complex_id, "pose_id": c.pose_id, "score": s}
            for c, s in zip(complexes, scores)
        ],
    }
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(fixture, indent=2) + "\n")
    print(f"wrote {FIXTURE_PATH} ({len(scores)} poses)")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
