"""Tests for the Vina scorer, pose generation, MM/GBSA, the AMPL surrogate and ConveyorLC."""

import numpy as np
import pytest

from repro.chem.complexes import InteractionModel, ProteinLigandComplex
from repro.docking.ampl import AMPLSurrogate
from repro.docking.conveyorlc import (
    CDT1Receptor,
    CDT2Ligand,
    CDT3Docking,
    CDT4Mmgbsa,
    ConveyorLC,
    DockingDatabase,
    DockingRecord,
)
from repro.docking.mmgbsa import MMGBSARescorer
from repro.docking.poses import MaximizePkScorer, PoseGenerator, place_ligand_randomly, rmsd
from repro.docking.vina import VinaScorer


class TestVinaScorer:
    def test_score_finite_and_deterministic(self, example_complex):
        vina = VinaScorer()
        s1, s2 = vina.score(example_complex), vina.score(example_complex)
        assert s1 == s2
        assert np.isfinite(s1)

    def test_predicted_pk_sign_convention(self, example_complex):
        vina = VinaScorer()
        assert vina.predicted_pk(example_complex) == pytest.approx(-vina.score(example_complex) / 1.364)

    def test_better_score_for_bound_pose(self, example_complex):
        vina = VinaScorer(noise_scale=0.0)
        far = example_complex.with_ligand(example_complex.ligand.translate([0, 0, 50.0]))
        assert vina.score(example_complex) < vina.score(far)

    def test_cost_model(self):
        assert VinaScorer.cost_seconds(100, nodes=1) == pytest.approx(10.0)
        assert VinaScorer.cost_seconds(100, nodes=2) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            VinaScorer.cost_seconds(10, nodes=0)


class TestMMGBSA:
    def test_rescoring_more_accurate_than_vina_on_average(self, tiny_pdbbind):
        """MM/GBSA (lower systematic error) should correlate at least as well as Vina with the latent pK."""
        vina, mmgbsa = VinaScorer(), MMGBSARescorer()
        model = InteractionModel()
        true, v, m = [], [], []
        for entry in tiny_pdbbind.entries:
            true.append(model.true_pk(entry.complex))
            v.append(vina.predicted_pk(entry.complex))
            m.append(mmgbsa.predicted_pk(entry.complex))
        corr_v = np.corrcoef(true, v)[0, 1]
        corr_m = np.corrcoef(true, m)[0, 1]
        assert np.isfinite(corr_v) and np.isfinite(corr_m)
        assert corr_m > 0.1  # MM/GBSA tracks the latent physics

    def test_cost_is_orders_of_magnitude_larger_than_vina(self):
        assert MMGBSARescorer.cost_seconds(10) > 100 * VinaScorer.cost_seconds(10)


class TestPoseGeneration:
    def test_place_ligand_randomly_inside_pocket(self, protease_site, prepared_ligands):
        ligand = prepared_ligands[0].molecule
        pose = place_ligand_randomly(protease_site, ligand, rng=np.random.default_rng(0))
        assert np.linalg.norm(pose.centroid() - protease_site.center) < protease_site.radius + 5.0

    def test_dock_returns_sorted_distinct_poses(self, protease_site, prepared_ligands):
        generator = PoseGenerator(VinaScorer(), num_poses=4, monte_carlo_steps=15, restarts=2, seed=1)
        poses = generator.dock(protease_site, prepared_ligands[0].molecule, complex_id="c0")
        assert 1 <= len(poses) <= 4
        scores = [p.score for p in poses]
        assert scores == sorted(scores)
        for a in poses:
            for b in poses:
                if a.pose_id != b.pose_id:
                    assert rmsd(a.complex.ligand, b.complex.ligand) >= generator.min_pose_separation

    def test_docking_improves_over_random_placement(self, protease_site, prepared_ligands):
        scorer = VinaScorer(noise_scale=0.0)
        ligand = prepared_ligands[1].molecule
        random_pose = place_ligand_randomly(protease_site, ligand, rng=np.random.default_rng(5))
        random_score = scorer.score(ProteinLigandComplex(protease_site, random_pose, "c"))
        generator = PoseGenerator(scorer, num_poses=1, monte_carlo_steps=30, restarts=2, seed=2)
        best = generator.dock(protease_site, ligand, complex_id="c")[0]
        assert best.score <= random_score

    def test_rmsd_to_reference_recorded(self, protease_site, prepared_ligands):
        ligand = prepared_ligands[0].molecule
        generator = PoseGenerator(VinaScorer(), num_poses=2, monte_carlo_steps=10, restarts=1, seed=3)
        reference = place_ligand_randomly(protease_site, ligand, rng=np.random.default_rng(9))
        poses = generator.dock(protease_site, ligand, complex_id="c", reference=reference)
        assert all(np.isfinite(p.rmsd_to_reference) for p in poses)

    def test_maximize_pk_scorer_adapter(self, example_complex, interaction_model):
        adapter = MaximizePkScorer(interaction_model)
        assert adapter.score(example_complex) == pytest.approx(-interaction_model.true_pk(example_complex))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PoseGenerator(VinaScorer(), num_poses=0)


class TestAMPLSurrogate:
    def test_fit_predict_correlates_with_targets(self, molecules):
        mmgbsa = MMGBSARescorer()
        # build synthetic targets from descriptors to guarantee learnability
        from repro.chem.descriptors import descriptor_vector

        targets = np.array([descriptor_vector(m)[0] * -0.01 - 5.0 for m in molecules])
        surrogate = AMPLSurrogate(target="protease1", alpha=0.1).fit(molecules, targets)
        predictions = surrogate.predict_many(molecules)
        assert np.corrcoef(predictions, targets)[0, 1] > 0.9
        assert isinstance(surrogate.predict(molecules[0]), float)
        importances = surrogate.feature_importances()
        assert "molecular_weight" in importances

    def test_fit_validation(self, molecules):
        with pytest.raises(ValueError):
            AMPLSurrogate().fit(molecules[:2], np.zeros(2))
        with pytest.raises(ValueError):
            AMPLSurrogate().fit(molecules, np.zeros(2))
        with pytest.raises(RuntimeError):
            AMPLSurrogate().predict(molecules[0])
        with pytest.raises(ValueError):
            AMPLSurrogate(alpha=0.0)


class TestDockingDatabase:
    def _record(self, site="s", compound="c", pose=0, vina=-5.0, pose_mol=None):
        return DockingRecord(site_name=site, compound_id=compound, pose_id=pose, vina_score=vina, pose=pose_mol)

    def test_add_query_best(self, prepared_ligands):
        mol = prepared_ligands[0].molecule
        db = DockingDatabase()
        db.add(self._record(pose=0, vina=-5.0, pose_mol=mol))
        db.add(self._record(pose=1, vina=-7.0, pose_mol=mol))
        db.add(self._record(compound="d", pose=0, vina=-2.0, pose_mol=mol))
        assert len(db) == 3
        assert db.compounds("s") == ["c", "d"]
        assert db.best_pose("s", "c", by="vina").pose_id == 1
        assert db.best_pose("s", "c", by="mmgbsa") is None
        record = db.best_pose("s", "c", by="vina")
        record.fusion_pk = 8.0
        assert db.best_pose("s", "c", by="fusion").pose_id == 1
        with pytest.raises(ValueError):
            db.best_pose("s", "c", by="unknown")

    def test_merge(self, prepared_ligands):
        mol = prepared_ligands[0].molecule
        a, b = DockingDatabase(), DockingDatabase()
        a.add(self._record(pose=0, pose_mol=mol))
        b.add(self._record(pose=1, pose_mol=mol))
        a.merge(b)
        assert len(a) == 2


class TestConveyorLC:
    def test_full_pipeline(self, sarscov2_sites, molecules):
        sites = [sarscov2_sites["spike1"]]
        conveyor = ConveyorLC(
            docking=CDT3Docking(num_poses=2, monte_carlo_steps=8, restarts=1, seed=0),
            mmgbsa=CDT4Mmgbsa(max_poses=2, subset_fraction=1.0),
        )
        database = conveyor.run(sites, molecules[:3], library="test")
        assert database.sites() == ["spike1"]
        assert len(database.compounds("spike1")) >= 2
        # every rescored record has a finite MM/GBSA score
        rescored = [r for r in database if np.isfinite(r.mmgbsa_score)]
        assert len(rescored) > 0
        assert conveyor.modelled_cost_seconds > 0

    def test_receptor_stage_validation(self):
        from repro.chem.protein import BindingSite, PocketFamily

        empty = BindingSite(name="empty", target="t", atoms=[], family=PocketFamily(1))
        with pytest.raises(ValueError):
            CDT1Receptor().run([empty])

    def test_ligand_stage_uses_prep(self, molecules):
        stage = CDT2Ligand()
        prepared = stage.run(molecules[:2], library="lib")
        assert len(prepared) <= 2

    def test_mmgbsa_subset_fraction_validation(self):
        with pytest.raises(ValueError):
            CDT4Mmgbsa(subset_fraction=0.0)
