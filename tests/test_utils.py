"""Tests for repro.utils (rng, timer, serialization, validation)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import derive_seed, ensure_rng, spawn_rng
from repro.utils.serialization import load_npz_dict, save_npz_dict
from repro.utils.timer import Timer, WallClock
from repro.utils.validation import check_in_range, check_positive, check_probability, check_shape


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_derive_seed_in_range(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2**63

    def test_spawn_rng_reproducible_streams(self):
        a = spawn_rng(5, "stream").normal(size=4)
        b = spawn_rng(5, "stream").normal(size=4)
        c = spawn_rng(5, "other").normal(size=4)
        np.testing.assert_allclose(a, b)
        assert not np.allclose(a, c)

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen
        assert isinstance(ensure_rng(3), np.random.Generator)


class TestTimer:
    def test_sections_accumulate(self):
        timer = Timer()
        with timer.section("a"):
            pass
        timer.add("a", 1.0)
        timer.add("b", 2.0)
        assert timer.sections["a"] >= 1.0
        assert timer.total() >= 3.0
        assert set(timer.as_dict()) == {"a", "b"}

    def test_wall_clock_advance(self):
        clock = WallClock()
        clock.advance(10.0, "step")
        clock.advance(5.0)
        assert clock.now == 15.0
        assert clock.history == [(10.0, "step")]

    def test_wall_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            WallClock().advance(-1.0)


class TestSerialization:
    def test_roundtrip_with_meta(self, tmp_path):
        data = {"a/b": np.arange(5.0), "c": np.ones((2, 3))}
        path = tmp_path / "store.npz"
        save_npz_dict(path, data, meta={"note": "hello", "n": 3})
        loaded, meta = load_npz_dict(path)
        np.testing.assert_allclose(loaded["a/b"], np.arange(5.0))
        np.testing.assert_allclose(loaded["c"], np.ones((2, 3)))
        assert meta == {"note": "hello", "n": 3}

    def test_roundtrip_without_meta(self, tmp_path):
        path = tmp_path / "plain"
        save_npz_dict(path, {"x": np.array([1.0])})
        loaded, meta = load_npz_dict(path)
        assert meta == {}
        assert loaded["x"][0] == 1.0


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.0) == 2.0
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_range(self):
        assert check_in_range("x", 3, 1, 5) == 3
        with pytest.raises(ValueError):
            check_in_range("x", 9, 1, 5)

    def test_check_shape(self):
        array = np.zeros((3, 4))
        out = check_shape("a", array, (3, None))
        assert out.shape == (3, 4)
        with pytest.raises(ValueError):
            check_shape("a", array, (4, None))
        with pytest.raises(ValueError):
            check_shape("a", array, (3,))
