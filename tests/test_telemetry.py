"""The telemetry subsystem: tracer, histogram, registry, run record.

Three layers of guarantees are pinned here:

* **histogram properties** (hypothesis): the streaming histogram's
  quantiles stay within the documented ``growth``-factor bound of an
  exact ``np.percentile`` nearest-rank oracle, and merging is exact —
  associative and commutative in every observable — for any split of a
  stream across shards;
* **tracer semantics**: per-thread nesting, explicit cross-thread
  parents, phase accounting with ancestor shadowing, Chrome trace-event
  export structure, and the null tracer's absolute zero-output contract;
* **non-interference** (tier-1 golden): a streamed screen produces
  bit-identical top-K ids/scores and summary statistics with telemetry
  fully enabled and fully disabled — instrumentation only observes.
"""

from __future__ import annotations

import json
import math
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chem.protein import make_sarscov2_targets
from repro.datasets.libraries import build_screening_deck
from repro.screening.stream import StreamConfig, StreamingScreen
from repro.serving.metrics import ServingMetrics
from repro.telemetry import (
    MetricsRegistry,
    NULL_TRACER,
    StreamingHistogram,
    Telemetry,
    Tracer,
    activate,
    build_run_record,
    current,
    stage_entry,
    validate_run_record,
    worker_occupancy,
    write_run_record,
)
from repro.telemetry.spans import PHASES, phase_totals_of
from repro.utils.rng import derive_seed
from repro.utils.timer import Timer


# --------------------------------------------------------------------------- #
# tracer
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_nesting_links_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id
        # spans close inner-first
        assert [r.name for r in tracer.records()] == ["inner", "middle", "outer"]

    def test_counters_and_durations(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.add("items", 3)
            span.add("items", 2)
            span.set("batch", 7)
        record = tracer.records()[0]
        assert record.counters == {"items": 5.0, "batch": 7.0}
        assert record.duration_s >= 0.0

    def test_add_on_current_span(self):
        tracer = Tracer()
        tracer.add("orphan")  # no open span: must not raise
        with tracer.span("work"):
            tracer.add("hits")
            tracer.add("hits", 2)
        assert tracer.records()[0].counters == {"hits": 3.0}

    def test_unknown_phase_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="unknown phase"):
            tracer.span("x", phase="cleanup")

    def test_threads_nest_independently(self):
        tracer = Tracer()
        num_threads = 4

        def work(index: int) -> None:
            with tracer.span(f"outer-{index}"):
                with tracer.span(f"inner-{index}"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer) == 2 * num_threads
        by_name = {r.name: r for r in tracer.records()}
        for index in range(num_threads):
            outer, inner = by_name[f"outer-{index}"], by_name[f"inner-{index}"]
            assert outer.parent_id is None
            assert inner.parent_id == outer.span_id
            assert inner.thread_id == outer.thread_id

    def test_explicit_cross_thread_parent(self):
        tracer = Tracer()
        with tracer.span("run") as run_span:
            done = []

            def worker() -> None:
                with tracer.span("shard", parent=run_span):
                    pass
                done.append(True)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["shard"].parent_id == by_name["run"].span_id
        assert by_name["shard"].thread_id != by_name["run"].thread_id

    def test_phase_totals_shadowing(self):
        tracer = Tracer()
        with tracer.span("eval", phase="evaluation", stage="s1"):
            with tracer.span("nested-eval", phase="evaluation", stage="s1"):
                pass
        with tracer.span("out", phase="output", stage="s2"):
            pass
        totals = tracer.phase_totals()
        # the nested same-stage evaluation span is shadowed: counted once
        outer = next(r for r in tracer.records() if r.name == "eval")
        assert totals["evaluation"] == pytest.approx(outer.duration_s)
        assert set(totals) == {"evaluation", "output"}
        assert tracer.phase_totals(stage="s2") == {"output": totals["output"]}
        assert phase_totals_of([]) == {}

    def test_chrome_trace_structure(self, tmp_path):
        tracer = Tracer()
        with tracer.span("stage", stage="docking"):
            with tracer.span("kernel", phase="evaluation") as span:
                span.set("poses", 8)
        path = tracer.export_chrome_trace(str(tmp_path / "trace.json"))
        with open(path) as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert metadata and metadata[0]["name"] == "thread_name"
        assert {e["name"] for e in complete} == {"stage", "kernel"}
        kernel = next(e for e in complete if e["name"] == "kernel")
        stage = next(e for e in complete if e["name"] == "stage")
        assert kernel["args"]["parent_id"] == stage["args"]["span_id"]
        assert kernel["args"]["poses"] == 8
        assert kernel["args"]["phase"] == "evaluation"
        assert kernel["ts"] >= stage["ts"]
        assert kernel["dur"] <= stage["dur"]


class TestNullTracer:
    def test_records_nothing(self, tmp_path):
        with NULL_TRACER.span("x", phase="startup", stage="s") as span:
            span.add("k")
            span.set("k", 2)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.phase_totals() == {}
        path = NULL_TRACER.export_chrome_trace(str(tmp_path / "empty.json"))
        with open(path) as handle:
            assert json.load(handle)["traceEvents"] == []

    def test_shared_singleton_handle(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestActivation:
    def test_default_is_disabled(self):
        assert current().enabled is False

    def test_activate_restores_previous(self):
        bundle = Telemetry(enabled=True)
        inner = Telemetry(enabled=True)
        assert current() is not bundle
        with activate(bundle):
            assert current() is bundle
            with activate(inner):
                assert current() is inner
            assert current() is bundle
        assert current().enabled is False

    def test_worker_threads_see_active_bundle(self):
        bundle = Telemetry(enabled=True)
        seen = []
        with activate(bundle):
            thread = threading.Thread(target=lambda: seen.append(current()))
            thread.start()
            thread.join()
        assert seen == [bundle]


# --------------------------------------------------------------------------- #
# streaming histogram: property suite against an exact oracle
# --------------------------------------------------------------------------- #
GROWTH = 1.05
MIN_VALUE = 1e-6


def make_histogram() -> StreamingHistogram:
    return StreamingHistogram(min_value=MIN_VALUE, max_value=1e4, growth=GROWTH)


def nearest_rank(values: list[float], q: float) -> float:
    """The oracle: the ceil(q*n)-th smallest observation."""
    ordered = sorted(values)
    rank = max(int(math.ceil(q * len(ordered))), 1)
    return ordered[rank - 1]


values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=5e3, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


@settings(max_examples=60, deadline=None)
@given(values=values_strategy, q=st.sampled_from([0.0, 0.25, 0.5, 0.9, 0.99, 1.0]))
def test_quantile_error_bound(values, q):
    histogram = make_histogram()
    histogram.observe_many(values)
    estimate = histogram.quantile(q)
    truth = nearest_rank(values, q)
    # documented bound: t <= e <= t*growth above the floor, t <= e <= floor below
    assert estimate >= truth or math.isclose(estimate, truth, rel_tol=1e-9)
    ceiling = max(truth * GROWTH, MIN_VALUE)
    assert estimate <= ceiling or math.isclose(estimate, ceiling, rel_tol=1e-9)
    # oracle agreement with numpy's inverted_cdf for strictly positive q
    if q > 0:
        assert truth == float(np.percentile(np.array(values), q * 100, method="inverted_cdf"))


def assert_same_observables(a: StreamingHistogram, b: StreamingHistogram) -> None:
    assert np.array_equal(a.bucket_counts(), b.bucket_counts())
    assert a.count == b.count
    assert a.total == b.total  # ExactSum: bit-equal, not approximately
    assert (a.minimum == b.minimum) or (math.isnan(a.minimum) and math.isnan(b.minimum))
    assert (a.maximum == b.maximum) or (math.isnan(a.maximum) and math.isnan(b.maximum))
    for q in (0.0, 0.5, 0.9, 0.99, 1.0):
        qa, qb = a.quantile(q), b.quantile(q)
        assert (qa == qb) or (math.isnan(qa) and math.isnan(qb))


@settings(max_examples=40, deadline=None)
@given(
    values=values_strategy,
    splits=st.lists(st.integers(min_value=0, max_value=200), min_size=0, max_size=4),
)
def test_merge_equals_concatenation_for_any_split(values, splits):
    """Any split of a stream across shards merges back to the same histogram."""
    cuts = sorted(min(s, len(values)) for s in splits)
    pieces, last = [], 0
    for cut in cuts + [len(values)]:
        pieces.append(values[last:cut])
        last = cut
    merged = make_histogram()
    for piece in pieces:
        shard = make_histogram()
        shard.observe_many(piece)
        merged.merge(shard)
    direct = make_histogram()
    direct.observe_many(values)
    assert_same_observables(merged, direct)


@settings(max_examples=30, deadline=None)
@given(a=values_strategy, b=values_strategy, c=values_strategy)
def test_merge_associative_and_commutative(a, b, c):
    def observed(values):
        histogram = make_histogram()
        histogram.observe_many(values)
        return histogram

    ab_c = observed(a).merge(observed(b)).merge(observed(c))
    a_bc = observed(a).merge(observed(b).merge(observed(c)))
    assert_same_observables(ab_c, a_bc)
    ba = observed(b).merge(observed(a))
    ab = observed(a).merge(observed(b))
    assert_same_observables(ab, ba)


class TestHistogramEdges:
    def test_rejects_bad_observations(self):
        histogram = make_histogram()
        for bad in (float("nan"), -1.0, float("inf")):
            with pytest.raises(ValueError):
                histogram.observe(bad)

    def test_empty_quantiles_are_nan(self):
        histogram = make_histogram()
        assert math.isnan(histogram.quantile(0.5))
        assert math.isnan(histogram.mean)

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError):
            make_histogram().quantile(1.5)

    def test_incompatible_merge_rejected(self):
        with pytest.raises(ValueError, match="bucket configurations"):
            make_histogram().merge(StreamingHistogram(min_value=1e-3))

    def test_no_truncation_ever(self):
        """The regression the reservoir had: late observations must count."""
        histogram = make_histogram()
        histogram.observe_many([0.001] * 1000)
        histogram.observe_many([0.1] * 1000)
        assert histogram.count == 2000
        assert histogram.quantile(0.99) >= 0.1
        assert histogram.quantile(0.5) <= 0.001 * GROWTH

    def test_reset(self):
        histogram = make_histogram()
        histogram.observe(1.0)
        histogram.reset()
        assert histogram.count == 0
        assert not histogram.bucket_counts().any()


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_counter_monotonic(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(2.5)
        gauge.add(0.5)
        assert gauge.value == 3.0

    def test_snapshot_shape_and_probe(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.gauge("load").set(0.5)
        registry.histogram("lat").observe(0.01)
        registry.register_probe("cache", lambda: {"hits": 7})
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"jobs": 3}
        assert snapshot["gauges"] == {"load": 0.5}
        assert snapshot["histograms"]["lat"]["count"] == 1.0
        assert snapshot["probes"] == {"cache": {"hits": 7}}

    def test_reset_spares_probes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        registry.register_probe("p", lambda: {"x": 1})
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 0}
        assert snapshot["histograms"]["h"]["count"] == 0.0
        assert snapshot["probes"] == {"p": {"x": 1}}


# --------------------------------------------------------------------------- #
# run record
# --------------------------------------------------------------------------- #
class TestRunRecord:
    def test_stage_entry_phases_sum_to_duration(self):
        entry = stage_entry("docking", "executed", 10.0, {"startup": 1.0, "evaluation": 6.5})
        phases = entry["phases"]
        assert phases["output"] == 0.0
        assert phases["other"] == pytest.approx(2.5)
        assert sum(phases.values()) == pytest.approx(entry["duration_s"], rel=1e-9)

    def test_stage_entry_never_negative_other(self):
        entry = stage_entry("s", "executed", 1.0, {"evaluation": 2.0})
        assert entry["phases"]["other"] == 0.0

    def test_valid_record_roundtrips(self, tmp_path):
        record = build_run_record(
            "campaign",
            duration_s=1.5,
            stages=[stage_entry("library", "executed", 0.5, {"startup": 0.5})],
            metrics={"counters": {"x": np.int64(3)}},
            workers=worker_occupancy({0: 0.4, 1: 0.2}, 1.5, steals=1),
            trace={"num_spans": 12},
            faults=["node_failure@lib"],
        )
        validate_run_record(record)
        path = write_run_record(record, str(tmp_path / "run.json"))
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["kind"] == "campaign"
        assert loaded["metrics"]["counters"]["x"] == 3  # numpy coerced
        assert loaded["workers"]["occupancy"][0]["utilization"] == pytest.approx(0.4 / 1.5)
        validate_run_record(loaded)

    def test_invalid_records_rejected_with_paths(self):
        record = build_run_record("campaign", duration_s=1.0, stages=[])
        record.pop("faults")
        with pytest.raises(ValueError, match=r"\$: missing required key 'faults'"):
            validate_run_record(record)
        bad_stage = build_run_record(
            "campaign", duration_s=1.0, stages=[stage_entry("s", "executed", 1.0)]
        )
        bad_stage["stages"][0]["status"] = "exploded"
        with pytest.raises(ValueError, match=r"stages\[0\].status"):
            validate_run_record(bad_stage)
        wrong_type = build_run_record("campaign", duration_s=1.0, stages=[])
        wrong_type["duration_s"] = "fast"
        with pytest.raises(ValueError, match="expected number"):
            validate_run_record(wrong_type)


# --------------------------------------------------------------------------- #
# timer
# --------------------------------------------------------------------------- #
class TestTimer:
    def test_sections_accumulate(self):
        timer = Timer()
        with timer.section("startup"):
            pass
        with timer.section("startup"):
            pass
        assert set(timer.sections) == {"startup"}
        assert timer.total() == timer.sections["startup"] >= 0.0

    def test_thread_safe_accumulation(self):
        timer = Timer()
        per_thread, num_threads = 500, 8

        def work() -> None:
            for _ in range(per_thread):
                timer.add("evaluation", 1.0)

        threads = [threading.Thread(target=work) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # integer-valued floats add exactly: any lost update would show
        assert timer.sections["evaluation"] == float(per_thread * num_threads)

    def test_sections_emit_phase_spans(self):
        tracer = Tracer()
        timer = Timer(tracer=tracer, stage="fusion_scoring")
        with timer.section("evaluation"):
            pass
        with timer.section("collate"):
            pass
        records = {r.name: r for r in tracer.records()}
        assert records["evaluation"].phase == "evaluation"
        assert records["evaluation"].stage == "fusion_scoring"
        assert records["collate"].phase is None  # not a Table 7 phase name
        assert set(PHASES) == {"startup", "evaluation", "output"}

    def test_uses_active_bundle_by_default(self):
        bundle = Telemetry(enabled=True)
        with activate(bundle):
            with Timer().section("output"):
                pass
        assert [r.name for r in bundle.tracer.records()] == ["output"]


# --------------------------------------------------------------------------- #
# serving metrics satellites
# --------------------------------------------------------------------------- #
class TestServingMetrics:
    def test_percentiles_see_late_traffic(self):
        """The reservoir-truncation regression: late latencies must count."""
        metrics = ServingMetrics(max_batch_size=8)
        for _ in range(1000):
            metrics.record_submission(cache_hit=False)
            metrics.record_completion(0.001)
        for _ in range(1000):
            metrics.record_submission(cache_hit=False)
            metrics.record_completion(0.1)
        snap = metrics.snapshot()
        assert snap.completed == 2000
        assert snap.latency_p99_ms >= 100.0 * 0.99  # dominated by the slow tail
        assert snap.latency_p50_ms <= 1.0 * 1.1
        assert snap.latency_p99_ms >= snap.latency_p50_ms >= 0.0

    def test_ledger_closes(self):
        metrics = ServingMetrics()
        for _ in range(5):
            metrics.record_submission(cache_hit=False)
        for _ in range(3):
            metrics.record_completion(0.01)
        for _ in range(2):
            metrics.record_failure()
        snap = metrics.snapshot()
        assert snap.submitted == snap.completed + snap.failed == 5

    def test_burst_vs_lifetime_rates(self):
        import time as time_module

        metrics = ServingMetrics()
        for _ in range(50):
            metrics.record_submission(cache_hit=False)
            metrics.record_completion(0.001)
        time_module.sleep(0.05)  # idle after the burst
        snap = metrics.snapshot()
        # burst window froze at the last completion; lifetime kept ticking
        assert snap.lifetime_s > snap.elapsed_s
        assert snap.requests_per_second > snap.requests_per_second_lifetime
        assert snap.requests_per_second_lifetime == pytest.approx(
            snap.completed / snap.lifetime_s
        )

    def test_shared_registry_absorbs_serving_metrics(self):
        registry = MetricsRegistry()
        metrics = ServingMetrics(max_batch_size=4, registry=registry)
        metrics.record_submission(cache_hit=True)
        metrics.record_completion(0.01)
        metrics.record_batch(4)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["serving.submitted"] == 1
        assert snapshot["histograms"]["serving.latency_s"]["count"] == 1.0
        assert snapshot["histograms"]["serving.batch_size"]["max"] == 4.0

    def test_empty_snapshot_is_zeroed(self):
        snap = ServingMetrics().snapshot()
        assert snap.latency_p50_ms == snap.latency_p99_ms == 0.0
        assert snap.mean_batch_size == 0.0
        assert snap.requests_per_second == 0.0


# --------------------------------------------------------------------------- #
# golden non-interference: bit-identity with telemetry on vs off
# --------------------------------------------------------------------------- #
STREAM_SEED = 41
STREAM_SITES = ("protease1", "protease2")


@pytest.fixture(scope="module")
def telemetry_stream_inputs():
    sites = make_sarscov2_targets(seed=derive_seed(STREAM_SEED, "targets"))
    sites = {name: sites[name] for name in STREAM_SITES}
    deck = build_screening_deck({"emolecules": 5, "zinc_world_approved": 4}, seed=STREAM_SEED)
    return sites, deck


def run_traced_stream(workbench, sites, deck, telemetry):
    config = StreamConfig(
        shard_size=4,
        workers=2,
        top_k=5,
        fusion_batch_size=1,
        poses_per_compound=2,
        docking_mc_steps=8,
        docking_restarts=1,
        seed=STREAM_SEED,
    )
    engine = StreamingScreen(
        workbench.coherent_fusion, workbench.featurizer, sites, config, telemetry=telemetry
    )
    return engine, engine.run(deck.molecules)


def test_streamed_results_bit_identical_with_telemetry_on_and_off(
    workbench, telemetry_stream_inputs, tmp_path
):
    sites, deck = telemetry_stream_inputs
    _, baseline = run_traced_stream(workbench, sites, deck, Telemetry.disabled())
    traced_engine, traced = run_traced_stream(workbench, sites, deck, Telemetry(enabled=True))

    for site_name in sites:
        base_ids, base_scores = baseline.topk_arrays(site_name)
        trace_ids, trace_scores = traced.topk_arrays(site_name)
        assert np.array_equal(base_ids, trace_ids)
        assert np.array_equal(base_scores, trace_scores)  # bit-for-bit
        assert np.array_equal(
            baseline.stats[site_name].as_array(), traced.stats[site_name].as_array()
        )
    assert baseline.num_compounds == traced.num_compounds

    # the traced run actually observed the work...
    telemetry = traced_engine.telemetry
    assert len(telemetry.tracer) > 0
    names = [r.name for r in telemetry.tracer.records()]
    assert "streaming-screen" in names
    assert any(name.startswith("stream-shard-") for name in names)
    assert "mc-dock" in names
    counters = telemetry.snapshot()["counters"]
    assert counters["stream.shards_executed"] == traced.shards_executed
    assert counters["stream.compounds"] == traced.num_compounds
    assert counters["docking.compounds"] > 0

    # ...with stage -> shard -> kernel nesting surviving the thread hop
    records = {r.span_id: r for r in telemetry.tracer.records()}
    run_record_span = next(r for r in records.values() if r.name == "streaming-screen")
    shard = next(r for r in records.values() if r.name.startswith("stream-shard-"))
    assert shard.parent_id == run_record_span.span_id
    dock = next(r for r in records.values() if r.name == "mc-dock")
    ancestor = dock.parent_id
    seen = set()
    while ancestor is not None and ancestor not in seen:
        seen.add(ancestor)
        ancestor = records[ancestor].parent_id
    assert shard.span_id in seen or dock.parent_id == shard.span_id

    # exported trace loads as Chrome trace-event JSON
    path = telemetry.export_chrome_trace(str(tmp_path / "stream_trace.json"))
    with open(path) as handle:
        document = json.load(handle)
    assert any(e["ph"] == "X" for e in document["traceEvents"])

    # run record validates and its phases sum to the stage wall time
    record = traced_engine.run_record()
    validate_run_record(record)
    stage = record["stages"][0]
    assert stage["name"] == "streamed_screen"
    assert sum(stage["phases"].values()) == pytest.approx(stage["duration_s"], rel=1e-6)
    assert record["workers"]["count"] >= 1
    assert record["trace"]["num_spans"] == len(telemetry.tracer)

    # the null run left its (null) tracer empty
    assert traced.duration_s > 0.0


def test_run_record_requires_a_run(workbench, telemetry_stream_inputs):
    sites, _deck = telemetry_stream_inputs
    engine = StreamingScreen(
        workbench.coherent_fusion,
        workbench.featurizer,
        sites,
        StreamConfig(shard_size=4, seed=STREAM_SEED),
    )
    with pytest.raises(RuntimeError, match="requires a completed run"):
        engine.run_record()
