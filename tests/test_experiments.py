"""Integration tests: the experiment drivers regenerate every table/figure artefact."""

import numpy as np
import pytest

from repro.experiments import ablations, figure2, figure4, figure5, figure6, figure7, table6, table7, table8, tables2to5
from repro.experiments.common import PAPER_TABLE6, build_workbench


class TestWorkbench:
    def test_workbench_contents(self, workbench):
        assert len(workbench.train_samples) > 0
        assert len(workbench.core_samples) == len(workbench.dataset.core)
        assert set(workbench.models()) == {"Mid-level Fusion", "Late Fusion", "Coherent Fusion", "3D-CNN", "SG-CNN"}
        assert set(workbench.histories) == {"cnn3d", "sgcnn", "mid_fusion", "coherent_fusion"}
        for history in workbench.histories.values():
            assert history.epochs_run >= 1
            assert np.isfinite(history.val_losses).all()

    def test_workbench_cached(self, workbench):
        again = build_workbench("tiny")
        assert again is workbench


class TestTable6:
    def test_rows_and_metrics(self, workbench):
        rows = table6.run_table6(workbench)
        assert set(PAPER_TABLE6) - {"Pafnucy", "KDeep"} <= set(rows)
        for metrics in rows.values():
            assert set(metrics) == {"rmse", "mae", "r2", "pearson", "spearman"}
            assert metrics["rmse"] >= metrics["mae"] >= 0.0
        claims = table6.qualitative_claims(rows)
        assert set(claims) >= {"coherent_best_rmse", "late_beats_mid", "fusion_beats_heads"}
        text = table6.render(rows)
        assert "Coherent Fusion" in text and "paper RMSE" in text


class TestFigure2:
    def test_docked_core_set_analysis(self, workbench):
        result = figure2.run_figure2(workbench, poses_per_compound=3, rmsd_filter=10.0)
        assert result.num_compounds > 0
        assert set(result.correlations) == {"vina", "mmgbsa", "coherent_fusion"}
        for value in result.correlations.values():
            assert -1.0 <= value <= 1.0
        assert result.paper_correlations["coherent_fusion"] == pytest.approx(0.745)
        claims = figure2.qualitative_claims(result)
        assert "fusion_beats_vina" in claims


class TestTable7AndFigure4:
    def test_table7(self):
        rows = table7.run_table7()
        claims = table7.qualitative_claims(rows)
        assert claims["peak_over_100x_single"]
        assert claims["vina_speedup_2_to_3x"]
        assert claims["mmgbsa_speedup_over_300x"]
        assert claims["single_job_about_5_hours"]
        assert "Table 7" in table7.render(rows)

    def test_figure4_modelled(self):
        result = figure4.run_figure4(measure=False)
        claims = figure4.qualitative_claims(result)
        assert all(claims.values()), claims
        assert result.failure_rates[8] == pytest.approx(0.20)

    def test_figure4_measured_scaling(self, workbench):
        result = figure4.run_figure4(workbench, measure=True, measured_poses=8)
        assert result.measured
        for batch, rows in result.measured.items():
            assert len(rows) == 3
            assert all(t > 0 for _r, t in rows)


class TestCampaignAnalyses:
    def test_figure5_series(self, workbench, campaign):
        series = figure5.run_figure5(workbench, campaign)
        assert set(series) == set(campaign.selections)
        claims = figure5.qualitative_claims(series)
        assert claims["all_four_targets_present"]
        assert claims["protease_at_100um"]
        assert claims["spike_at_10um"]
        for s in series.values():
            assert len(s.predicted_pk) == len(s.percent_inhibition) == s.num_points

    def test_table8_rows(self, workbench, campaign):
        rows = table8.run_table8(workbench, campaign)
        methods = {r.method for r in rows}
        targets = {r.target for r in rows}
        assert methods == {"Vina", "AMPL MM/GBSA", "Coherent Fusion"}
        assert targets == set(campaign.selections)
        text = table8.render(rows)
        assert "Coherent Fusion" in text
        claims = table8.qualitative_claims(rows)
        assert "correlations_are_low" in claims

    def test_figure6_classification(self, workbench, campaign):
        result = figure6.run_figure6(workbench, campaign)
        assert result.threshold == 33.0
        assert set(result.counts) == set(campaign.selections)
        stats = figure6.hit_statistics(campaign)
        assert stats["num_tested"] == len(campaign.assays.results)
        assert 0.0 <= stats["hit_rate"] <= 1.0

    def test_figure7_top_compounds(self, workbench, campaign):
        compounds = figure7.run_figure7(workbench, campaign, sites=tuple(campaign.selections)[:2], top_per_site=2)
        claims = figure7.qualitative_claims(compounds)
        assert claims["has_compounds"]
        text = figure7.render(compounds)
        assert "Figure 7" in text


class TestHPOAndAblations:
    def test_table1_summary(self):
        summary = tables2to5.table1_search_space_summary()
        assert set(summary) == {"3D-CNN", "SG-CNN", "Fusion"}
        assert "learning_rate" in summary["Fusion"]
        assert summary["Fusion"]["optimizer"].startswith("choice")

    def test_scaled_down_sgcnn_hpo(self, workbench):
        outcome = tables2to5.optimize_sgcnn(workbench, population=2, epochs=2, interval=1, seed=0)
        assert np.isfinite(outcome.best_score)
        assert "learning_rate" in outcome.best_config
        assert outcome.paper_config["learning_rate"] == pytest.approx(2.66e-3)

    def test_quintile_vs_random_split_ablation(self, workbench):
        result = ablations.quintile_vs_random_split(workbench)
        assert result["quintile_bins_covered"] >= result["random_bins_covered"]
        assert result["quintile_min_bin_coverage"] >= 0.0

    def test_rotation_invariance_probe(self, workbench):
        delta = ablations.rotation_invariance_probe(workbench, num_samples=3)
        assert np.isfinite(delta) and delta >= 0.0

    def test_pretrained_vs_scratch_ablation(self, workbench):
        result = ablations.pretrained_vs_scratch(workbench, epochs=1)
        assert np.isfinite(result.variant_loss) and np.isfinite(result.baseline_loss)
        assert result.name == "pretrained_vs_scratch"
