"""Autograd correctness tests: every operation is checked against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


def numerical_gradient(fn, value, eps=1e-6):
    """Central finite-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(value)
    flat = value.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(value)
        flat[i] = original - eps
        down = fn(value)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(op, shape, seed=0, tol=1e-5, positive=False):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    x = Tensor(data.copy(), requires_grad=True)
    out = op(x)
    loss = out.sum() if out.size > 1 else out
    loss.backward()
    numeric = numerical_gradient(lambda arr: float(op(Tensor(arr)).sum().data), data.copy())
    np.testing.assert_allclose(x.grad, numeric, atol=tol, rtol=1e-4)


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "name,op,positive",
        [
            ("exp", lambda x: x.exp(), False),
            ("log", lambda x: x.log(), True),
            ("sqrt", lambda x: x.sqrt(), True),
            ("tanh", lambda x: x.tanh(), False),
            ("sigmoid", lambda x: x.sigmoid(), False),
            ("relu", lambda x: x.relu(), False),
            ("leaky_relu", lambda x: x.leaky_relu(0.1), False),
            ("selu", lambda x: x.selu(), False),
            ("abs", lambda x: x.abs(), True),
            ("pow", lambda x: x**3.0, False),
            ("neg", lambda x: -x, False),
        ],
    )
    def test_unary_ops(self, name, op, positive):
        check_gradient(op, (4, 3), positive=positive)

    def test_add_mul_broadcast(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = (a * b + b).sum()
        out.backward()
        assert a.grad.shape == (4, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(a.grad, np.broadcast_to(b.data, (4, 3)))
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0) + 4.0)

    def test_division_gradient(self):
        check_gradient(lambda x: x / 2.0 + 1.0 / (x + 3.0), (3, 3))

    def test_clip_gradient_zero_outside(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestMatmulAndShapes:
    def test_matmul_gradients(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)))

    def test_reshape_transpose_roundtrip(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        y = x.reshape(4, 3).transpose()
        assert y.shape == (3, 4)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_getitem_gradient(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_cat_and_stack(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((2, 2), 2.0), requires_grad=True)
        cat = Tensor.cat([a, b], axis=1)
        assert cat.shape == (2, 4)
        cat.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        stacked = Tensor.stack([a, b], axis=0)
        assert stacked.shape == (2, 2, 2)

    def test_pad_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        padded = x.pad(((1, 1), (0, 2)))
        assert padded.shape == (4, 4)
        padded.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 2)))


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 1), False)])
    def test_sum_mean(self, axis, keepdims):
        check_gradient(lambda x: x.sum(axis=axis, keepdims=keepdims), (3, 4))
        check_gradient(lambda x: x.mean(axis=axis, keepdims=keepdims), (3, 4))

    def test_max_gradient_goes_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_var(self):
        x = Tensor(np.array([1.0, 2.0, 3.0, 4.0]), requires_grad=True)
        assert abs(x.var().item() - 1.25) < 1e-12


class TestGraphMechanics:
    def test_grad_accumulates_through_shared_node(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = y + y  # y used twice
        z.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_no_grad_disables_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_chain_rule_random_shapes(self, n, m):
        rng = np.random.default_rng(n * 10 + m)
        x = Tensor(rng.normal(size=(n, m)), requires_grad=True)
        out = ((x * 2.0).tanh() + x.sigmoid()).mean()
        out.backward()
        assert x.grad.shape == (n, m)
        assert np.isfinite(x.grad).all()
