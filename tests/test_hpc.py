"""Tests for the simulated HPC substrate: cluster, scheduler, MPI, Horovod, faults, performance, storage."""

import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hpc.cluster import LASSEN_NODE, SimulatedCluster
from repro.hpc.faults import FaultInjector
from repro.hpc.h5store import H5Store
from repro.hpc.horovod import HorovodContext
from repro.hpc.mpi import (
    CollectiveError,
    LocalCommunicator,
    RankContext,
    RankLostError,
    run_spmd,
    run_spmd_process,
)
from repro.hpc.performance import FusionThroughputModel, ScorerCostModel
from repro.hpc.scheduler import Job, JobScheduler, JobState, SchedulerConfig
from repro.utils.timer import WallClock


# Rank programs for the process-backed SPMD tests: module level, so the
# spawned workers can unpickle them by reference.
def _spmd_allgather_ranks(ctx):
    return ctx.allgather(ctx.rank, tag="ranks")


def _spmd_kill_rank_one(ctx):
    if ctx.rank == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return ctx.allgather(ctx.rank, tag="ranks")


def _spmd_raise_rank_one(ctx):
    if ctx.rank == 1:
        raise ValueError("rank payload exploded")
    return ctx.allgather(ctx.rank, tag="ranks")


class TestCluster:
    def test_lassen_node_spec(self):
        assert LASSEN_NODE.cpu_cores == 44
        assert LASSEN_NODE.gpus_per_node == 4
        assert LASSEN_NODE.gpu.memory_gb == 16.0

    def test_allocation_lifecycle(self):
        cluster = SimulatedCluster(num_nodes=8)
        allocation = cluster.allocate("job1", 4)
        assert allocation.num_nodes == 4
        assert cluster.free_nodes == 4
        assert cluster.utilization() == 0.5
        with pytest.raises(RuntimeError):
            cluster.allocate("job2", 6)
        with pytest.raises(ValueError):
            cluster.allocate("job1", 1)
        cluster.release("job1")
        assert cluster.free_nodes == 8
        cluster.release("job1")  # idempotent

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            SimulatedCluster(num_nodes=0)
        with pytest.raises(ValueError):
            SimulatedCluster(4).allocate("j", 0)


class TestScheduler:
    def test_jobs_queue_and_complete(self):
        cluster = SimulatedCluster(num_nodes=4)
        scheduler = JobScheduler(cluster, SchedulerConfig(walltime_limit_seconds=10_000))
        for i in range(5):
            scheduler.submit(Job(name=f"j{i}", num_nodes=2, duration_seconds=100))
        scheduler.run()
        assert all(state is JobState.COMPLETED for state in scheduler.states().values())
        # only two 2-node jobs fit at once -> at least three waves of 100 s
        assert scheduler.makespan() >= 300.0
        assert cluster.free_nodes == 4

    def test_walltime_timeout_and_requeue(self):
        cluster = SimulatedCluster(num_nodes=2)
        scheduler = JobScheduler(cluster, SchedulerConfig(walltime_limit_seconds=100))
        job = scheduler.submit(Job(name="long", num_nodes=1, duration_seconds=250, max_retries=5))
        scheduler.run()
        assert job.state is JobState.COMPLETED
        assert job.attempts == 3  # 100 + 100 + 50

    def test_fault_injection_and_retry(self):
        cluster = SimulatedCluster(num_nodes=8)
        injector = FaultInjector(failure_rates={8: 1.0}, seed=1)
        scheduler = JobScheduler(cluster, SchedulerConfig(), injector)
        job = scheduler.submit(Job(name="fragile", num_nodes=8, duration_seconds=10, max_retries=2))
        scheduler.run()
        # always fails: retries exhausted
        assert job.state is JobState.FAILED
        assert job.attempts == 3

    def test_payload_runs_on_completion(self):
        done = []
        cluster = SimulatedCluster(num_nodes=1)
        scheduler = JobScheduler(cluster)
        scheduler.submit(Job(name="p", num_nodes=1, duration_seconds=5, payload=lambda job: done.append(job.name)))
        scheduler.run()
        assert done == ["p"]

    def test_submission_validation(self):
        scheduler = JobScheduler(SimulatedCluster(2))
        scheduler.submit(Job(name="a", num_nodes=1, duration_seconds=1))
        with pytest.raises(ValueError):
            scheduler.submit(Job(name="a", num_nodes=1, duration_seconds=1))
        with pytest.raises(ValueError):
            scheduler.submit(Job(name="b", num_nodes=5, duration_seconds=1))
        with pytest.raises(ValueError):
            Job(name="c", num_nodes=0, duration_seconds=1)

    def test_priority_ordering(self):
        cluster = SimulatedCluster(num_nodes=1)
        clock = WallClock()
        scheduler = JobScheduler(cluster, clock=clock)
        low = scheduler.submit(Job(name="low", num_nodes=1, duration_seconds=10, priority=0))
        high = scheduler.submit(Job(name="high", num_nodes=1, duration_seconds=10, priority=5))
        scheduler.run()
        assert high.start_time <= low.start_time


class TestMPI:
    def test_collectives(self):
        def program(ctx: RankContext):
            gathered = ctx.allgather(ctx.rank)
            total = ctx.comm.allreduce_sum(ctx.rank, ctx.rank + 1.0)
            chunk = ctx.scatter([i * 10 for i in range(ctx.size)] if ctx.rank == 0 else None)
            broadcast = ctx.bcast({"v": 42} if ctx.rank == 2 else None, root=2)
            root_only = ctx.gather(ctx.rank * 2, root=1)
            return gathered, total, chunk, broadcast["v"], root_only

        results = run_spmd(program, 4)
        for rank, (gathered, total, chunk, bval, root_only) in enumerate(results):
            assert gathered == [0, 1, 2, 3]
            assert total == pytest.approx(10.0)
            assert chunk == rank * 10
            assert bval == 42
            if rank == 1:
                assert root_only == [0, 2, 4, 6]
            else:
                assert root_only is None

    def test_point_to_point(self):
        def program(ctx: RankContext):
            if ctx.rank == 0:
                ctx.send({"payload": 7}, dest=1)
                return None
            if ctx.rank == 1:
                return ctx.recv(source=0)["payload"]
            return None

        results = run_spmd(program, 2)
        assert results[1] == 7

    def test_failed_collective_raises_on_every_rank_and_stays_usable(self):
        """Regression: a raising combine used to leave its partial bucket in
        the collective buffer (so the next same-tag collective saw a full
        bucket prematurely) and raised on one rank only, deadlocking the
        rest at the barrier until timeout.  Now every rank raises the same
        descriptive CollectiveError and the communicator stays usable."""

        def program(ctx: RankContext):
            # wrong-length scatter list: combine raises on the closing rank
            with pytest.raises(CollectiveError, match="collective 'scatter' failed") as info:
                ctx.scatter([0, 1] if ctx.rank == 0 else None)
            assert "one element per rank" in str(info.value.__cause__)
            # same tag, correct payload: the cleared bucket and reusable
            # barrier make the retry succeed
            chunk = ctx.scatter([i * 10 for i in range(ctx.size)] if ctx.rank == 0 else None)
            gathered = ctx.allgather(chunk)
            return chunk, gathered

        results = run_spmd(program, 3)
        for rank, (chunk, gathered) in enumerate(results):
            assert chunk == rank * 10
            assert gathered == [0, 10, 20]

    def test_recv_timeout_names_endpoints_and_tag(self):
        """Regression: a starved recv used to surface as a bare queue.Empty
        with no hint of which endpoint pair starved."""
        comm = LocalCommunicator(2)
        with pytest.raises(TimeoutError, match=r"rank 0 to rank 1 \(tag=5\) within 0.01s"):
            comm.recv(source=0, dest=1, tag=5, timeout=0.01)

    def test_sequential_mode_without_collectives(self):
        results = run_spmd(lambda ctx: ctx.rank**2, 4, use_threads=False)
        assert results == [0, 1, 4, 9]

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalCommunicator(0)
        comm = LocalCommunicator(2)
        with pytest.raises(ValueError):
            comm.send(1, source=0, dest=5)


class TestHorovod:
    def test_rank_topology_and_broadcast(self, workbench):
        model = workbench.sgcnn

        def program(ctx: RankContext):
            hvd = HorovodContext(ctx, gpus_per_node=2)
            hvd.broadcast_parameters(model, root_rank=0)
            mean = hvd.allreduce_mean(float(ctx.rank))
            return hvd.rank(), hvd.local_rank(), hvd.node_index(), mean

        results = run_spmd(program, 4)
        assert [r[1] for r in results] == [0, 1, 0, 1]
        assert [r[2] for r in results] == [0, 0, 1, 1]
        assert all(r[3] == pytest.approx(1.5) for r in results)

    def test_invalid_gpus_per_node(self):
        comm = LocalCommunicator(1)
        with pytest.raises(ValueError):
            HorovodContext(RankContext(comm, 0), gpus_per_node=0)


class TestFaults:
    def test_failure_rates_match_paper_shape(self):
        injector = FaultInjector(seed=0)
        assert injector.failure_probability(1) == pytest.approx(0.02)
        assert injector.failure_probability(8) == pytest.approx(0.20)
        assert injector.failure_probability(4) < injector.failure_probability(8)
        # interpolation between known points
        assert 0.03 < injector.failure_probability(6) < 0.20
        assert injector.failure_probability(16) == pytest.approx(0.20)

    def test_deterministic_and_disabled(self):
        injector = FaultInjector(seed=3)
        a = injector.check("job", 8, attempt=0)
        b = FaultInjector(seed=3).check("job", 8, attempt=0)
        assert (a is None) == (b is None)
        disabled = FaultInjector(enabled=False)
        assert disabled.check("job", 8) is None

    def test_statistical_rate(self):
        injector = FaultInjector(seed=5)
        failures = sum(1 for i in range(500) if injector.check(f"job{i}", 8) is not None)
        assert 0.12 <= failures / 500 <= 0.30

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            FaultInjector(failure_rates={4: 1.5})


class TestPerformanceModel:
    def test_table7_shape(self):
        model = FusionThroughputModel()
        single = model.estimate()
        assert single.startup_minutes == pytest.approx(20.0)
        assert 250 <= single.evaluation_minutes <= 310
        assert 4.5 <= single.total_hours <= 6.0
        assert 90 <= single.poses_per_second <= 130
        peak = model.peak_estimate()
        assert peak.poses_per_second > 100 * single.poses_per_second
        assert peak.compounds_per_hour > 1e6

    def test_speedups(self):
        model = FusionThroughputModel()
        assert 2.0 <= model.speedup_vs_vina() <= 3.5
        assert model.speedup_vs_mmgbsa() >= 300
        costs = ScorerCostModel()
        assert costs.mmgbsa_seconds(10) > costs.vina_seconds(10)

    def test_memory_model_limits_batch(self):
        model = FusionThroughputModel()
        assert model.max_batch_size() == 56
        with pytest.raises(ValueError):
            model.rank_rate(100)
        with pytest.raises(ValueError):
            model.rank_rate(0)

    def test_strong_scaling_monotone_with_diminishing_returns(self):
        model = FusionThroughputModel()
        times = [model.estimate(num_nodes=n).total_minutes for n in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)
        speedup_1_2 = times[0] / times[1]
        speedup_4_8 = times[2] / times[3]
        assert speedup_4_8 < speedup_1_2 < 2.0

    def test_batch_size_effect_is_small(self):
        model = FusionThroughputModel()
        t12 = model.estimate(batch_size_per_rank=12).total_minutes
        t56 = model.estimate(batch_size_per_rank=56).total_minutes
        assert 0 < t12 - t56 < 30

    def test_gpu_underutilized(self):
        model = FusionThroughputModel()
        assert model.gpu_utilization(56) < 0.6
        assert model.tflops(66) > 7000


class TestH5Store:
    def test_write_read_groups(self):
        store = H5Store()
        store.write("dock/protease1/job0/fusion_pk", np.arange(4.0))
        store.write("dock/protease1/job0/compound_ids", np.array(["a", "b", "c", "d"]))
        store.write_attr("dock/protease1/job0", "startup", 20.0)
        assert "dock/protease1/job0/fusion_pk" in store
        assert store.groups("dock") == ["protease1"]
        assert store.attrs("dock/protease1/job0")["startup"] == 20.0
        assert len(list(store.datasets_under("dock/protease1"))) == 2
        with pytest.raises(KeyError):
            store.read("nope")
        with pytest.raises(ValueError):
            store.write("", np.zeros(1))

    def test_save_load_roundtrip(self, tmp_path):
        store = H5Store()
        store.write("a/b", np.linspace(0, 1, 5))
        store.write("a/ids", np.array(["x", "yy", "zzz"]))
        store.write_attr("a", "note", "hello")
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = H5Store.load(path)
        np.testing.assert_allclose(loaded.read("a/b"), np.linspace(0, 1, 5))
        assert list(loaded.read("a/ids")) == ["x", "yy", "zzz"]
        assert loaded.attrs("a")["note"] == "hello"

    def test_merge(self):
        a, b = H5Store(), H5Store()
        a.write("x", np.zeros(2))
        b.write("y", np.ones(2))
        a.merge(b)
        assert len(a) == 2

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_arbitrary_arrays(self, values):
        import tempfile, os

        store = H5Store()
        store.write("data/values", np.array(values))
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "s.npz")
            store.save(path)
            loaded = H5Store.load(path)
            np.testing.assert_allclose(loaded.read("data/values"), np.array(values), rtol=1e-6, atol=1e-6)


class TestBarrierTimeoutPlumbing:
    def test_communicator_accepts_and_validates_timeout(self):
        comm = LocalCommunicator(2, barrier_timeout=0.5)
        assert comm.barrier_timeout == 0.5
        with pytest.raises(ValueError, match="barrier_timeout"):
            LocalCommunicator(2, barrier_timeout=0.0)
        with pytest.raises(ValueError, match="barrier_timeout"):
            LocalCommunicator(2, barrier_timeout=-1.0)

    def test_run_spmd_plumbs_short_timeout_to_barriers(self):
        # rank 1 shows up a full second late: with the default 120 s
        # timeout this test would hang, with the plumbed 0.2 s it breaks
        # the barrier almost immediately
        def program(ctx):
            if ctx.rank == 1:
                time.sleep(1.0)
            ctx.barrier()
            return ctx.rank

        started = time.perf_counter()
        with pytest.raises(threading.BrokenBarrierError):
            run_spmd(program, 2, barrier_timeout=0.2)
        assert time.perf_counter() - started < 10.0


class TestProcessSpmdFaults:
    def test_happy_path_allgathers_across_processes(self):
        results = run_spmd_process(_spmd_allgather_ranks, 2, timeout=120.0)
        assert results == [[0, 1], [0, 1]]

    def test_killed_rank_raises_rank_lost_error(self):
        # a SIGKILL'd rank breaks the pool; the caller gets a descriptive
        # RankLostError promptly instead of starving until the timeout
        started = time.perf_counter()
        with pytest.raises(RankLostError, match="was lost during an SPMD step"):
            run_spmd_process(_spmd_kill_rank_one, 2, timeout=120.0)
        assert time.perf_counter() - started < 60.0

    def test_raising_rank_poisons_survivors_fast(self):
        with pytest.raises(RankLostError, match="ValueError: rank payload exploded"):
            run_spmd_process(_spmd_raise_rank_one, 2, timeout=120.0)

    def test_rank_lost_error_pickles_with_fields(self):
        error = RankLostError(3, 16, "worker process died (BrokenProcessPool)")
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.rank, clone.size, clone.reason) == (3, 16, error.reason)
        assert "rank 3 of 16" in str(clone)

    def test_size_validation(self):
        with pytest.raises(ValueError, match="positive"):
            run_spmd_process(_spmd_allgather_ranks, 0)
