"""Shared fixtures for the test suite.

The expensive fixtures (synthetic PDBbind data, trained model workbench,
screening campaign) are session-scoped and built at the smallest useful
scale so the full suite stays fast while still exercising every stage of
the pipeline end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem.complexes import InteractionModel, ProteinLigandComplex
from repro.chem.generator import GeneratorProfile, MoleculeGenerator
from repro.chem.prep import LigandPrepPipeline
from repro.chem.protein import make_sarscov2_targets
from repro.datasets.pdbbind import PDBbindConfig, generate_pdbbind
from repro.experiments.common import build_workbench, run_campaign


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def molecules():
    """A handful of generated drug-like molecules with 3-D coordinates."""
    generator = MoleculeGenerator(GeneratorProfile(), seed=7)
    return generator.generate_many(6, prefix="testmol")


@pytest.fixture(scope="session")
def prepared_ligands(molecules):
    pipeline = LigandPrepPipeline(minimize=False, seed=3)
    return pipeline.process_many(molecules, library="tests")


@pytest.fixture(scope="session")
def sarscov2_sites():
    return make_sarscov2_targets(seed=2020)


@pytest.fixture(scope="session")
def protease_site(sarscov2_sites):
    return sarscov2_sites["protease1"]


@pytest.fixture(scope="session")
def example_complex(protease_site, prepared_ligands):
    ligand = prepared_ligands[0].molecule
    ligand = ligand.translate(-ligand.centroid() + np.array([0.0, 0.0, -2.0]))
    return ProteinLigandComplex(protease_site, ligand, complex_id="testcomplex", pose_id=0)


@pytest.fixture(scope="session")
def pose_complexes(protease_site, prepared_ligands):
    """Several distinct poses in one site, for the featurization-engine tests."""
    complexes = []
    for index, prepared in enumerate(prepared_ligands):
        ligand = prepared.molecule
        offset = np.array([0.4 * index - 1.0, 0.3 * (index % 3) - 0.3, -2.0 + 0.5 * index])
        ligand = ligand.translate(-ligand.centroid() + offset)
        complexes.append(
            ProteinLigandComplex(protease_site, ligand, complex_id=f"pose{index}", pose_id=index)
        )
    return complexes


@pytest.fixture(scope="session")
def interaction_model():
    return InteractionModel()


@pytest.fixture(scope="session")
def tiny_pdbbind():
    """A very small synthetic PDBbind dataset."""
    config = PDBbindConfig(
        n_general=16, n_refined=8, n_core=6, n_families=6, n_core_families=2,
        pose_search_steps=15, pose_search_restarts=1, seed=11,
    )
    return generate_pdbbind(config)


@pytest.fixture(scope="session")
def workbench():
    """Tiny trained workbench shared by the model/experiment integration tests."""
    return build_workbench("tiny")


@pytest.fixture(scope="session")
def campaign(workbench):
    """A very small end-to-end screening campaign."""
    return run_campaign(
        workbench,
        library_counts={"emolecules": 8, "zinc_world_approved": 4},
        compounds_tested_per_site=6,
        poses_per_compound=2,
        seed=99,
    )


@pytest.fixture()
def checkpoint_dir(tmp_path):
    """Per-test directory for the runtime's H5Store-backed stage checkpoints."""
    path = tmp_path / "checkpoints"
    path.mkdir()
    return path


@pytest.fixture()
def checkpoint_store(checkpoint_dir):
    """A disk-backed CheckpointStore rooted in a fresh tmp directory."""
    from repro.runtime import CheckpointStore

    return CheckpointStore(checkpoint_dir)
