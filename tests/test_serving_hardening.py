"""Hardening pass over repro.serving: batcher invariants and concurrency.

The micro-batcher sits between admission control and the replica pool,
so its invariants — never drop, never duplicate, never reorder across
flushes, never exceed ``max_batch_size`` — are what make the service's
"accepted work always completes exactly once" contract possible.  The
property-based tests drive it with randomized arrival/drain schedules;
the threaded tests hammer the batcher and the full ``ScoringService``
from many clients at once and check the metrics ledger closes
(``submitted == completed + failed``).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chem.complexes import ProteinLigandComplex
from repro.serving import MicroBatcher, Overloaded, ScoringService, ServingConfig


# --------------------------------------------------------------------- #
# property-based micro-batcher invariants
# --------------------------------------------------------------------- #
@given(
    num_items=st.integers(min_value=0, max_value=60),
    max_batch=st.integers(min_value=1, max_value=8),
    extra_capacity=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_batcher_never_drops_duplicates_or_reorders(num_items, max_batch, extra_capacity):
    """Any arrival/drain schedule yields exactly the enqueued sequence."""
    batcher = MicroBatcher(max_batch_size=max_batch, max_wait_s=0.0, capacity=max_batch + extra_capacity)
    enqueued: list = []
    drained: list = []
    for index in range(num_items):
        item = ("req", index)
        if not batcher.put(item):
            # a refusal may only happen at capacity: that is the
            # admission-control contract the service relies on
            assert batcher.pending() == batcher.capacity
            batch = batcher.next_batch()
            assert 1 <= len(batch.items) <= max_batch
            drained.extend(batch.items)
            assert batcher.put(item)
        enqueued.append(item)
    batcher.close()
    while (batch := batcher.next_batch()) is not None:
        assert len(batch.items) <= max_batch
        drained.extend(batch.items)
    assert drained == enqueued  # no drops, no duplicates, order across flushes


@given(
    prefill=st.integers(min_value=1, max_value=16),
    max_batch=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=40, deadline=None)
def test_batcher_size_trigger_never_exceeds_max_batch_size(prefill, max_batch):
    """However many items wait, a batch never exceeds ``max_batch_size``."""
    batcher = MicroBatcher(max_batch_size=max_batch, max_wait_s=0.0, capacity=32)
    for index in range(prefill):
        assert batcher.put(index)
    batch = batcher.next_batch()
    assert len(batch.items) == min(prefill, max_batch)
    assert list(batch.items) == list(range(len(batch.items)))


def test_batcher_max_wait_flushes_underfull_batch():
    """An under-full batch closes once the head item waited ``max_wait_s``."""
    batcher = MicroBatcher(max_batch_size=8, max_wait_s=0.02, capacity=16)
    for index in range(3):
        batcher.put(index)
    batch = batcher.next_batch()
    assert list(batch.items) == [0, 1, 2]
    assert batch.oldest_wait_s >= 0.02  # deadline-triggered close, not size-triggered


def test_batcher_threaded_producers_preserve_per_producer_order():
    """Concurrent producers: the drain interleaves, but each producer's
    items come out exactly once and in their submission order."""
    num_producers, per_producer = 4, 120
    batcher = MicroBatcher(max_batch_size=5, max_wait_s=0.001, capacity=16)

    def produce(producer_id: int) -> None:
        for index in range(per_producer):
            while not batcher.put((producer_id, index)):
                time.sleep(0.0002)  # backpressure: retry until space frees

    threads = [threading.Thread(target=produce, args=(p,)) for p in range(num_producers)]
    for thread in threads:
        thread.start()
    consumed: list[tuple[int, int]] = []
    total = num_producers * per_producer
    while len(consumed) < total:
        batch = batcher.next_batch()
        assert len(batch.items) <= 5
        consumed.extend(batch.items)
    for thread in threads:
        thread.join()
    batcher.close()
    assert batcher.next_batch() is None
    assert len(consumed) == total
    for producer_id in range(num_producers):
        mine = [index for pid, index in consumed if pid == producer_id]
        assert mine == list(range(per_producer))


# --------------------------------------------------------------------- #
# ScoringService under concurrent hammering
# --------------------------------------------------------------------- #
class _CountingBackend:
    """Fast deterministic backend; optionally fails every ``fail_every``-th batch."""

    name = "counting-stub"

    def __init__(self, delay_s: float = 0.002, fail_every: int = 0) -> None:
        self.delay_s = delay_s
        self.fail_every = fail_every
        self.batches = 0
        self._lock = threading.Lock()

    def fingerprint(self) -> str:
        return f"counting-stub-{self.fail_every}"

    def score_batch(self, batch: dict) -> np.ndarray:
        with self._lock:
            self.batches += 1
            batch_index = self.batches
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail_every and batch_index % self.fail_every == 0:
            raise RuntimeError(f"injected backend failure on batch {batch_index}")
        # deterministic per-request scores so cache hits are checkable
        return np.array([float(len(str(i))) for i in batch["ids"]], dtype=np.float64)


@pytest.fixture(scope="module")
def stress_traffic(campaign):
    site_name = campaign.database.sites()[0]
    site = campaign.sites[site_name]
    records = [r for r in campaign.database.records() if r.site_name == site_name][:6]
    assert records
    return [
        ProteinLigandComplex(site, r.pose, complex_id=r.compound_id, pose_id=r.pose_id)
        for r in records
    ]


def test_concurrent_stress_metrics_ledger_closes(workbench, stress_traffic):
    """Many clients, small queue: every request is either rejected at
    admission or completes; submitted == completed + failed exactly."""
    config = ServingConfig(
        max_batch_size=2, max_wait_s=0.001, num_replicas=2, queue_capacity=4, cache_enabled=True
    )
    service = ScoringService(
        backend=_CountingBackend(delay_s=0.002), featurizer=workbench.featurizer, config=config
    ).start()
    accepted = []
    rejections = 0
    scores: dict[str, set[float]] = {}
    lock = threading.Lock()

    def client(worker: int) -> None:
        nonlocal rejections
        for round_ in range(25):
            complex_ = stress_traffic[(worker + round_) % len(stress_traffic)]
            try:
                handle = service.submit(complex_)
            except Overloaded:
                with lock:
                    rejections += 1
                time.sleep(0.001)
                continue
            response = handle.result(timeout=60.0)
            with lock:
                accepted.append(response)
                scores.setdefault(f"{response.complex_id}/{response.pose_id}", set()).add(response.score)

    workers = [threading.Thread(target=client, args=(w,)) for w in range(8)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    assert service.drain(timeout=60.0)
    snap = service.snapshot()
    service.close()

    assert snap.rejected == rejections
    assert snap.submitted == len(accepted)
    # the admission ledger closes: nothing admitted is ever lost
    assert snap.submitted == snap.completed + snap.failed
    assert snap.failed == 0
    assert snap.cache_hits + snap.cache_misses == snap.submitted
    assert snap.cache_hits > 0  # six unique poses hammered 200 times must hit
    # identical content key -> identical score, cached or not
    assert all(len(values) == 1 for values in scores.values())


class _ExplodingFeaturizer:
    """Delegating featurizer that fails for one marked complex id."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def featurize(self, complex_):
        if complex_.complex_id == "boom":
            raise ValueError("malformed molecule")
        return self.inner.featurize(complex_)


def test_featurization_failure_keeps_metrics_ledger_closed(workbench, stress_traffic):
    """A request whose featurization raises is counted as failed, so
    submitted == completed + failed even on the admission error path."""
    good = stress_traffic[0]
    bad = ProteinLigandComplex(good.site, good.ligand, complex_id="boom", pose_id=99)
    config = ServingConfig(max_batch_size=2, num_replicas=1, queue_capacity=8, cache_enabled=False)
    with ScoringService(
        backend=_CountingBackend(delay_s=0.0),
        featurizer=_ExplodingFeaturizer(workbench.featurizer),
        config=config,
    ) as service:
        with pytest.raises(ValueError, match="malformed molecule"):
            service.submit(bad)
        service.submit(good).result(timeout=30.0)
        with pytest.raises(ValueError, match="malformed molecule"):
            service.score_many([good, bad, good])
        assert service.drain(timeout=30.0)
        snap = service.snapshot()
    # bulk path: the first 'good' was counted but never dispatched, the
    # 'boom' raised mid-featurization, the trailing 'good' never ran
    assert snap.failed == 3
    assert snap.submitted == snap.completed + snap.failed


def test_concurrent_stress_with_failing_batches(workbench, stress_traffic):
    """Backend failures propagate to exactly the affected callers and are
    counted in ``failed``; the ledger still closes."""
    config = ServingConfig(
        max_batch_size=2, max_wait_s=0.001, num_replicas=2, queue_capacity=16, cache_enabled=False
    )
    service = ScoringService(
        backend=_CountingBackend(delay_s=0.001, fail_every=3),
        featurizer=workbench.featurizer,
        config=config,
    ).start()
    outcomes = {"ok": 0, "failed": 0, "rejected": 0}
    lock = threading.Lock()

    def client(worker: int) -> None:
        for round_ in range(20):
            complex_ = stress_traffic[(worker + round_) % len(stress_traffic)]
            try:
                handle = service.submit(complex_)
            except Overloaded:
                with lock:
                    outcomes["rejected"] += 1
                continue
            try:
                handle.result(timeout=60.0)
                with lock:
                    outcomes["ok"] += 1
            except RuntimeError as error:
                assert "injected backend failure" in str(error)
                with lock:
                    outcomes["failed"] += 1

    workers = [threading.Thread(target=client, args=(w,)) for w in range(6)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    assert service.drain(timeout=60.0)
    snap = service.snapshot()
    service.close()

    assert outcomes["failed"] > 0
    assert snap.failed == outcomes["failed"]
    assert snap.completed == outcomes["ok"]
    assert snap.rejected == outcomes["rejected"]
    assert snap.submitted == snap.completed + snap.failed


# --------------------------------------------------------------------- #
# chaos: replica death, circuit breakers, drain diagnostics
# --------------------------------------------------------------------- #
class _RestartableFlakyBackend:
    """Thread backend that fails every batch until restarted via close/start.

    Models a wedged replica: the circuit breaker's restart hook is the
    only way it comes back.  ``heal_after_restarts`` controls how many
    restarts it takes — with 2, the first half-open probe still fails,
    so the breaker must *reopen* before the replica finally recovers.
    """

    name = "flaky-restartable"

    def __init__(self, heal_after_restarts: int = 1) -> None:
        self.heal_after_restarts = heal_after_restarts
        self.restarts = 0
        self.wedged = True
        self._lock = threading.Lock()

    def fingerprint(self) -> str:
        return "flaky-restartable"

    def start(self) -> None:
        with self._lock:
            self.restarts += 1
            if self.restarts >= self.heal_after_restarts:
                self.wedged = False

    def close(self) -> None:
        pass

    def score_batch(self, batch: dict) -> np.ndarray:
        with self._lock:
            if self.wedged:
                raise RuntimeError("replica wedged")
        return np.zeros(len(batch["ids"]), dtype=np.float64)


def test_replica_worker_kill_under_load_ledger_closes(workbench, stress_traffic):
    """SIGKILL the only process replica's worker mid-load: supervision
    respawns it and re-scores the lost batch, so every admitted request
    completes, the ledger closes with zero failures, and the respawn is
    visible in the shared registry."""
    import os
    import signal

    from repro.telemetry import MetricsRegistry

    registry = MetricsRegistry()
    config = ServingConfig(
        max_batch_size=2, max_wait_s=0.001, num_replicas=1,
        queue_capacity=32, cache_enabled=False, backend="process",
    )
    service = ScoringService(
        model=workbench.coherent_fusion, featurizer=workbench.featurizer,
        config=config, registry=registry,
    ).start()
    try:
        # warm the worker with one scored request, then kill it
        service.submit(stress_traffic[0]).result(timeout=120.0)
        backend = service.pool._replicas[0].backend
        pids = backend.worker_pids()
        assert pids, "process replica should have a live worker"
        for pid in pids:
            os.kill(pid, signal.SIGKILL)
        handles = [service.submit(c) for c in stress_traffic]
        responses = [h.result(timeout=120.0) for h in handles]
        assert len(responses) == len(stress_traffic)
        assert service.drain(timeout=120.0)
        snap = service.snapshot()
    finally:
        service.close()
    assert snap.submitted == snap.completed + snap.failed
    assert snap.failed == 0
    assert registry.snapshot()["counters"].get("supervision.respawns", 0) >= 1


def test_breaker_opens_restarts_and_reopens_on_failed_probe(workbench, stress_traffic):
    """Consecutive batch failures open the replica's breaker and trigger a
    backend restart; the first half-open probe still fails, so the breaker
    reopens (a second restart) before the replica heals — and the metrics
    ledger closes across the whole episode."""
    from repro.telemetry import MetricsRegistry

    registry = MetricsRegistry()
    # start #1 is the pool's own startup; the breaker-triggered restarts
    # are #2 (first open) and #3 (reopen after the failed probe) — only
    # the third brings the replica back
    backend = _RestartableFlakyBackend(heal_after_restarts=3)
    config = ServingConfig(
        max_batch_size=4, num_replicas=1, queue_capacity=16, cache_enabled=False,
        breaker_threshold=2, breaker_reset_s=0.05,
    )
    service = ScoringService(
        backend=backend, featurizer=workbench.featurizer, config=config, registry=registry
    ).start()
    failures = 0
    successes = 0
    try:
        deadline = time.perf_counter() + 60.0
        while successes < 3 and time.perf_counter() < deadline:
            try:
                service.submit(stress_traffic[successes % len(stress_traffic)]).result(timeout=60.0)
                successes += 1
            except RuntimeError as error:
                assert "replica wedged" in str(error)
                failures += 1
                time.sleep(0.06)  # let the open breaker reach its probe window
        assert service.drain(timeout=60.0)
        snap = service.snapshot()
    finally:
        service.close()
    assert successes >= 3
    assert failures >= 3  # threshold failures to open, plus the failed probe
    assert backend.restarts >= 3  # startup, open -> restart, reopen -> restart again
    counters = registry.snapshot()["counters"]
    assert counters.get("supervision.breaker_opened", 0) >= 2
    assert snap.submitted == snap.completed + snap.failed
    assert snap.failed == failures


def test_drain_timeout_names_pending_request_ids(workbench, stress_traffic):
    """A timed-out drain returns a falsy DrainResult naming exactly the
    admitted-but-incomplete request ids, then drains clean once the
    stalled batch is released."""
    release = threading.Event()

    class _StalledBackend:
        name = "stalled"

        def fingerprint(self):
            return "stalled"

        def score_batch(self, batch):
            release.wait(timeout=60.0)
            return np.zeros(len(batch["ids"]), dtype=np.float64)

    config = ServingConfig(
        max_batch_size=8, max_wait_s=0.001, num_replicas=1,
        queue_capacity=8, cache_enabled=False,
    )
    service = ScoringService(
        backend=_StalledBackend(), featurizer=workbench.featurizer, config=config
    ).start()
    try:
        handles = [service.submit(c) for c in stress_traffic[:2]]
        expected_ids = {h.request.request_id for h in handles}
        stuck = service.drain(timeout=0.1)
        assert not stuck
        assert set(stuck.pending) == expected_ids
        assert "pending" in repr(stuck)
        release.set()
        drained = service.drain(timeout=60.0)
        assert drained and drained.pending == ()
        for handle in handles:
            handle.result(timeout=60.0)
    finally:
        release.set()
        service.close()


def test_replica_pool_routes_around_open_breaker():
    """With one replica's breaker open, dispatch prefers the healthy
    replica; when every breaker is open, the soonest-to-probe replica is
    chosen instead of failing the request."""
    from repro.serving import ReplicaPool

    class _StubBackend:
        def __init__(self, tag):
            self.name = tag

        def fingerprint(self):
            return self.name

        def score_batch(self, batch):  # pragma: no cover - never dispatched
            return np.zeros(0)

    pool = ReplicaPool(
        [_StubBackend("a"), _StubBackend("b")],
        dispatch="round_robin",
        breaker_threshold=1,
        breaker_reset_s=30.0,
    )
    assert pool.breaker_states() == ["closed", "closed"]
    pool.record_result(0, ok=False)  # threshold 1: opens immediately
    assert pool.breaker_states()[0] == "open"
    # round-robin now cycles over the healthy candidate only
    assert [pool._pick().index for _ in range(4)] == [1, 1, 1, 1]
    pool.record_result(1, ok=False)
    assert pool.breaker_states() == ["open", "open"]
    # all open: fall back to whichever replica can probe soonest
    assert pool._pick().index in (0, 1)
    pool.record_result(0, ok=True)
    assert pool.breaker_states()[0] == "closed"
    assert pool._pick().index == 0
