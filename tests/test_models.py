"""Tests for the 3D-CNN, SG-CNN, Fusion variants and the training loop."""

from dataclasses import replace

import numpy as np
import pytest

from repro.featurize.pipeline import collate_complexes
from repro.models.cnn3d import CNN3D
from repro.models.config import CNN3DConfig, CoherentFusionConfig, MidFusionConfig, SGCNNConfig
from repro.models.fusion import CoherentFusion, LateFusion, MidFusion
from repro.models.sgcnn import SGCNN
from repro.models.train import Trainer, TrainerConfig, TrainingHistory
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def samples(workbench):
    return workbench.train_samples[:12]


def small_cnn_config(workbench):
    config = CNN3DConfig.scaled_down()
    config.grid_dim = workbench.scale.grid_dim
    config.in_channels = workbench.featurizer.voxelizer.config.num_channels
    return config


class TestCNN3D:
    def test_forward_shapes_and_latent(self, workbench, samples):
        model = CNN3D(small_cnn_config(workbench), seed=1)
        batch = collate_complexes(samples[:4])
        out = model(batch)
        assert out.shape == (4,)
        latent = model.latent(batch)
        assert latent.shape == (4, model.latent_dim)

    def test_paper_config_structure(self):
        config = CNN3DConfig.paper()
        assert config.conv_filters_1 == 32 and config.conv_filters_2 == 64
        assert config.residual_option_2 and not config.residual_option_1
        assert config.learning_rate == pytest.approx(4.9e-5)

    def test_residual_and_batchnorm_options(self, workbench, samples):
        config = small_cnn_config(workbench)
        config.residual_option_1 = True
        config.batch_norm = True
        model = CNN3D(config, seed=2)
        batch = collate_complexes(samples[:2])
        assert model(batch).shape == (2,)

    def test_grid_too_small_raises(self):
        config = CNN3DConfig.scaled_down()
        config.grid_dim = 4
        with pytest.raises(ValueError):
            CNN3D(config)

    def test_calibration_shifts_output(self, workbench, samples):
        model = CNN3D(small_cnn_config(workbench), seed=3)
        batch = collate_complexes(samples[:3])
        model.eval()
        with no_grad():
            before = model(batch).numpy()
            model.calibrate_output(6.0, 2.0)
            after = model(batch).numpy()
        assert not np.allclose(before, after)
        assert abs(after.mean() - 6.0) < 6.0

    def test_gradients_reach_every_parameter(self, workbench, samples):
        model = CNN3D(small_cnn_config(workbench), seed=4)
        model.train()
        batch = collate_complexes(samples[:2])
        loss = (model(batch) * 1.0).sum()
        loss.backward()
        grads = [p.grad is not None for _n, p in model.named_parameters()]
        assert sum(grads) >= len(grads) - 1  # dropout may zero a path but parameters still receive grads


class TestSGCNN:
    def test_forward_and_latent(self, workbench, samples):
        model = SGCNN(SGCNNConfig.scaled_down(), seed=1)
        batch = collate_complexes(samples[:5])
        out = model(batch)
        assert out.shape == (5,)
        assert model.latent(batch).shape == (5, model.latent_dim)

    def test_paper_config_values(self):
        config = SGCNNConfig.paper()
        assert config.covalent_k == 6 and config.noncovalent_k == 3
        assert config.noncovalent_threshold == pytest.approx(5.22)
        assert config.noncovalent_gather_width == 128 and config.covalent_gather_width == 24

    def test_dense_layer_sizing_rule(self):
        model = SGCNN(SGCNNConfig(noncovalent_gather_width=96, covalent_gather_width=24, hidden_dim=16), seed=0)
        assert model.fc1.out_features == 64  # 96 / 1.5
        assert model.fc2.out_features == 32  # then / 2

    def test_permutation_invariance_of_batch_order(self, workbench, samples):
        model = SGCNN(SGCNNConfig.scaled_down(), seed=2)
        model.eval()
        with no_grad():
            forward = model(collate_complexes(samples[:3])).numpy()
            backward = model(collate_complexes(list(reversed(samples[:3])))).numpy()
        np.testing.assert_allclose(forward, backward[::-1], atol=1e-8)


class TestFusionModels:
    def test_late_fusion_is_mean_of_heads(self, workbench, samples):
        batch = collate_complexes(samples[:3])
        late = LateFusion(workbench.cnn3d, workbench.sgcnn)
        late.eval()
        with no_grad():
            combined = late(batch).numpy()
            head_a = workbench.cnn3d(batch).numpy()
            head_b = workbench.sgcnn(batch).numpy()
        np.testing.assert_allclose(combined, (head_a + head_b) / 2.0, atol=1e-10)

    def test_mid_fusion_freezes_heads(self, workbench, samples):
        mid = MidFusion(workbench.cnn3d, workbench.sgcnn, MidFusionConfig.scaled_down(), seed=1)
        trainable = mid.trainable_parameters()
        head_params = set(id(p) for p in workbench.cnn3d.parameters()) | set(id(p) for p in workbench.sgcnn.parameters())
        assert all(id(p) not in head_params for p in trainable)
        # training mid fusion must not move head weights
        before = workbench.cnn3d.conv1.weight.data.copy()
        trainer = Trainer(mid, samples, samples[:4], TrainerConfig(epochs=1, batch_size=4, learning_rate=1e-3))
        trainer.fit()
        np.testing.assert_allclose(workbench.cnn3d.conv1.weight.data, before)

    def test_coherent_fusion_updates_heads(self, workbench, samples):
        coherent = CoherentFusion(
            CNN3D(small_cnn_config(workbench), seed=5), SGCNN(SGCNNConfig.scaled_down(), seed=5),
            CoherentFusionConfig.scaled_down(), seed=5,
        )
        before = coherent.cnn3d.conv1.weight.data.copy()
        trainer = Trainer(coherent, samples, samples[:4], TrainerConfig(epochs=1, batch_size=4, learning_rate=1e-3))
        trainer.fit()
        assert not np.allclose(coherent.cnn3d.conv1.weight.data, before)

    def test_config_coherence_validation(self, workbench):
        cnn = CNN3D(small_cnn_config(workbench), seed=0)
        sg = SGCNN(SGCNNConfig.scaled_down(), seed=0)
        bad_mid = MidFusionConfig()
        bad_mid.coherent = True
        with pytest.raises(ValueError):
            MidFusion(cnn, sg, bad_mid)
        bad_coherent = CoherentFusionConfig()
        bad_coherent.coherent = False
        with pytest.raises(ValueError):
            CoherentFusion(cnn, sg, bad_coherent)

    def test_paper_fusion_configs(self):
        mid, coherent = MidFusionConfig.paper(), CoherentFusionConfig.paper()
        assert mid.num_fusion_layers == 5 and coherent.num_fusion_layers == 4
        assert mid.residual_fusion_layers and not coherent.residual_fusion_layers
        assert coherent.batch_size == 48 and mid.batch_size == 1
        assert coherent.pretrained

    def test_from_pretrained_uses_head_weights(self, workbench):
        coherent = CoherentFusion.from_pretrained(workbench.cnn3d, workbench.sgcnn, CoherentFusionConfig.scaled_down())
        np.testing.assert_allclose(coherent.cnn3d.conv1.weight.data, workbench.cnn3d.conv1.weight.data)


class TestTrainer:
    def test_training_reduces_loss(self, workbench, samples):
        model = SGCNN(SGCNNConfig.scaled_down(), seed=9)
        trainer = Trainer(model, samples, samples, TrainerConfig(epochs=6, batch_size=4, learning_rate=3e-3, seed=0))
        history = trainer.fit()
        assert history.epochs_run == 6
        assert history.val_losses[-1] <= history.val_losses[0] * 1.2
        assert history.best_epoch >= 0

    def test_predict_shape_and_eval_mode(self, workbench, samples):
        trainer = Trainer(workbench.sgcnn, samples, [], TrainerConfig(batch_size=4))
        predictions = trainer.predict(samples)
        assert predictions.shape == (len(samples),)
        assert np.isfinite(predictions).all()

    def test_validate_empty_returns_nan(self, workbench, samples):
        trainer = Trainer(workbench.sgcnn, samples, [], TrainerConfig(batch_size=4))
        assert np.isnan(trainer.validate())

    def test_set_hyperparameters(self, workbench, samples):
        trainer = Trainer(workbench.sgcnn, samples, [], TrainerConfig(batch_size=4, learning_rate=1e-3))
        trainer.set_hyperparameters(learning_rate=5e-4, batch_size=2)
        assert trainer.optimizer.lr == pytest.approx(5e-4)
        assert trainer.config.batch_size == 2
        with pytest.raises(ValueError):
            trainer.set_hyperparameters(learning_rate=-1)
        with pytest.raises(ValueError):
            trainer.set_hyperparameters(batch_size=0)

    def test_requires_training_samples(self, workbench):
        with pytest.raises(ValueError):
            Trainer(workbench.sgcnn, [], [], TrainerConfig())

    def test_gradient_clipping_bounds_norm(self, workbench, samples):
        model = SGCNN(SGCNNConfig.scaled_down(), seed=11)
        trainer = Trainer(model, samples[:4], [], TrainerConfig(epochs=1, batch_size=2, learning_rate=10.0, grad_clip=1.0))
        trainer.fit()  # with an absurd learning rate, clipping keeps weights finite
        assert all(np.isfinite(p.data).all() for p in model.parameters())

    def test_validate_masks_non_finite_targets(self, workbench, samples):
        trainer = Trainer(workbench.sgcnn, samples, [], TrainerConfig(batch_size=4))
        finite = trainer.validate(samples[:4])
        poisoned = [replace(s, target=float("nan")) for s in samples[:2]] + list(samples[2:4])
        assert trainer.validate(poisoned) == pytest.approx(trainer.validate(samples[2:4]))
        assert np.isfinite(finite)
        all_nan = [replace(s, target=float("nan")) for s in samples[:3]]
        assert np.isnan(trainer.validate(all_nan))

    def test_history_best_epoch_with_nan_val_losses(self):
        history = TrainingHistory(train_losses=[1.0, 0.5], val_losses=[float("nan"), 0.7])
        assert history.best_epoch == 1
        assert history.best_val_loss == pytest.approx(0.7)
        all_nan = TrainingHistory(train_losses=[1.0, 0.5], val_losses=[float("nan")] * 2)
        assert all_nan.best_epoch == -1
        assert np.isnan(all_nan.best_val_loss)
        empty = TrainingHistory()
        assert empty.best_epoch == -1
        assert np.isnan(empty.best_val_loss)
