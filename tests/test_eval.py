"""Tests for metrics, binary classification framing, correlation analyses and report rendering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as scipy_stats

from repro.eval.classification import classify_by_threshold, evaluate_scores
from repro.eval.correlation import best_method_per_target, correlation_table, per_target_correlations
from repro.eval.metrics import (
    average_precision,
    best_f1_score,
    cohens_kappa,
    f1_score,
    mae,
    pearson_r,
    precision_recall_curve,
    r2_score,
    random_classifier_precision,
    regression_report,
    rmse,
    spearman_r,
)
from repro.eval.reports import format_table, render_pr_summary, render_series


class TestRegressionMetrics:
    def test_known_values(self):
        y = np.array([1.0, 2.0, 3.0])
        p = np.array([1.0, 2.0, 5.0])
        assert rmse(y, p) == pytest.approx(np.sqrt(4 / 3))
        assert mae(y, p) == pytest.approx(2 / 3)
        assert r2_score(y, y) == 1.0
        assert pearson_r(y, p) == pytest.approx(scipy_stats.pearsonr(y, p)[0])
        assert spearman_r(y, p) == pytest.approx(1.0)

    def test_perfect_and_constant_predictions(self):
        y = np.arange(10.0)
        assert rmse(y, y) == 0.0
        assert pearson_r(y, np.zeros(10)) == 0.0
        assert spearman_r(np.zeros(10), y) == 0.0
        assert r2_score(np.zeros(10), np.zeros(10)) == 1.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            rmse([1, 2], [1])
        with pytest.raises(ValueError):
            mae([], [])

    def test_regression_report_keys(self):
        report = regression_report(np.arange(5.0), np.arange(5.0) + 1)
        assert set(report) == {"rmse", "mae", "r2", "pearson", "spearman"}

    @given(st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=2, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_rmse_at_least_mae(self, values):
        y = np.array(values)
        p = np.zeros_like(y)
        assert rmse(y, p) >= mae(y, p) - 1e-12
        assert rmse(y, p) >= 0


class TestClassificationMetrics:
    def test_f1_and_kappa_known_values(self):
        labels = np.array([1, 1, 0, 0], dtype=bool)
        predictions = np.array([1, 0, 0, 0], dtype=bool)
        assert f1_score(labels, predictions) == pytest.approx(2 / 3)
        assert cohens_kappa(labels, labels) == 1.0
        assert cohens_kappa(labels, ~labels) < 0.0
        assert f1_score(labels, np.zeros(4, dtype=bool)) == 0.0

    def test_precision_recall_curve_monotone_recall(self):
        rng = np.random.default_rng(0)
        labels = rng.random(50) < 0.3
        scores = labels * 1.0 + rng.normal(scale=0.5, size=50)
        precision, recall, thresholds = precision_recall_curve(labels, scores)
        assert np.all(np.diff(recall) >= -1e-12)
        assert recall[-1] == pytest.approx(1.0)
        assert len(precision) == len(recall) == len(thresholds)
        assert np.all((precision >= 0) & (precision <= 1))

    def test_perfect_scores_give_f1_one(self):
        labels = np.array([0, 0, 1, 1], dtype=bool)
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        f1, threshold = best_f1_score(labels, scores)
        assert f1 == 1.0
        assert average_precision(labels, scores) == pytest.approx(1.0)

    def test_random_classifier_precision(self):
        labels = np.array([1, 0, 0, 0], dtype=bool)
        assert random_classifier_precision(labels) == 0.25

    def test_kappa_of_random_guessing_near_zero(self):
        rng = np.random.default_rng(1)
        labels = rng.random(4000) < 0.3
        predictions = rng.random(4000) < 0.3
        assert abs(cohens_kappa(labels, predictions)) < 0.05

    def test_classify_by_threshold_excluded_middle(self):
        values = np.array([3.0, 5.5, 7.0, 9.0])
        labels, kept = classify_by_threshold(values, positive_threshold=8.0, negative_threshold=6.0)
        assert list(kept) == [0, 1, 3]
        assert list(labels) == [False, False, True]
        labels2, kept2 = classify_by_threshold(values, positive_threshold=6.0)
        assert len(kept2) == 4
        with pytest.raises(ValueError):
            classify_by_threshold(values, 5.0, 6.0)

    def test_evaluate_scores_summary(self):
        labels = np.array([1, 1, 0, 0, 0], dtype=bool)
        scores = np.array([0.9, 0.4, 0.5, 0.2, 0.1])
        result = evaluate_scores("demo", labels, scores)
        assert result.num_positive == 2 and result.num_negative == 3
        assert 0.0 <= result.f1 <= 1.0
        assert result.random_precision == pytest.approx(0.4)
        summary = result.summary()
        assert set(summary) >= {"f1", "average_precision", "kappa"}


class TestCorrelationAnalyses:
    def test_per_target_correlations_and_filter(self):
        observations = {"t1": np.array([0.5, 10.0, 40.0, 80.0]), "t2": np.array([0.0, 0.0, 50.0, 90.0])}
        predictions = {
            "m1": {"t1": np.array([1.0, 2.0, 3.0, 4.0]), "t2": np.array([4.0, 3.0, 2.0, 1.0])},
            "m2": {"t1": np.array([4.0, 3.0, 2.0, 1.0]), "t2": np.array([1.0, 2.0, 3.0, 4.0])},
        }
        rows = per_target_correlations(predictions, observations, min_observation=1.0)
        table = correlation_table(rows)
        assert table[("m1", "t1")]["n"] == 3  # the 0.5 observation was filtered
        assert table[("m1", "t1")]["pearson"] > 0
        assert table[("m2", "t1")]["pearson"] < 0
        best = best_method_per_target(rows)
        assert best["t1"] == "m1"
        assert best["t2"] == "m2"

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            per_target_correlations({"m": {"t": np.array([1.0, 2.0])}}, {"t": np.array([1.0])})
        with pytest.raises(KeyError):
            per_target_correlations({"m": {"t": np.array([1.0])}}, {})

    def test_too_few_points_gives_nan(self):
        rows = per_target_correlations({"m": {"t": np.array([1.0, 2.0])}}, {"t": np.array([0.0, 0.5])}, min_observation=1.0)
        assert np.isnan(rows[0].pearson)


class TestReports:
    def test_format_table_alignment_and_nan(self):
        text = format_table(["a", "bb"], [["x", 1.23456], ["yy", float("nan")]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text and "-" in lines[-1]

    def test_render_pr_summary(self):
        labels = np.array([1, 0, 1, 0], dtype=bool)
        scores = np.array([0.9, 0.1, 0.8, 0.3])
        result = evaluate_scores("fusion", labels, scores)
        text = render_pr_summary({"fusion": result}, title="Figure 2")
        assert "fusion" in text and "Figure 2" in text

    def test_render_series(self):
        text = render_series("scaling", [1, 2, 4], [100.0, 60.0, 40.0], "nodes", "minutes")
        assert "scaling" in text and len(text.splitlines()) == 4
