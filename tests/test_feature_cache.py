"""Hypothesis property tests for the content-addressed feature cache.

Three invariant families:

* the hit/miss ledger closes — every lookup is accounted for as exactly
  one hit or one miss, under arbitrary operation sequences;
* LRU eviction — the cache never exceeds capacity and evicts in exact
  least-recently-used order (checked against a reference model);
* serving equivalence — features served from the cache are identical to
  freshly computed ones, even after evictions forced recomputation.
"""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.featurize.cache import (
    FeatureCache,
    entry_nbytes,
    feature_key,
    featurizer_config_digest,
)
from repro.featurize.engine import FeaturePipeline
from repro.featurize.graph import GraphConfig
from repro.featurize.voxelize import VoxelGridConfig

KEY_UNIVERSE = [f"key{i}" for i in range(12)]

#: an operation is ("get" | "put", key index)
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["get", "put"]), st.integers(0, len(KEY_UNIVERSE) - 1)),
    max_size=120,
)


def payload_for(index: int) -> tuple:
    voxel = np.full((1, 2, 2, 2), float(index))
    graph = {"node_features": np.full((1, 3), float(index))}
    return voxel, graph


class LruModel:
    """Reference LRU implementation the real cache is checked against."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: OrderedDict[str, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str):
        if key in self.entries:
            self.entries.move_to_end(key)
            self.hits += 1
            return self.entries[key]
        self.misses += 1
        return None

    def put(self, key: str, value: int) -> None:
        if key in self.entries:
            self.entries.move_to_end(key)
        self.entries[key] = value
        while len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
            self.evictions += 1


class TestCacheLedgerProperties:
    @given(ops=ops_strategy, capacity=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_ledger_closes_and_matches_reference_model(self, ops, capacity):
        cache = FeatureCache(capacity)
        model = LruModel(capacity)
        for op, key_index in ops:
            key = KEY_UNIVERSE[key_index]
            if op == "get":
                entry = cache.get(key)
                expected = model.get(key)
                assert (entry is None) == (expected is None)
                if entry is not None:
                    assert float(entry[0][0, 0, 0, 0]) == float(expected)
            else:
                cache.put(key, *payload_for(key_index))
                model.put(key, key_index)
            # LRU bound holds after *every* operation, not just at the end
            assert len(cache) <= capacity

        stats = cache.stats()
        assert stats.ledger_closed
        assert stats.lookups == sum(1 for op, _ in ops if op == "get")
        assert stats.hits == model.hits
        assert stats.misses == model.misses
        assert stats.evictions == model.evictions
        assert stats.size == len(model.entries)
        # identical keys survive, in identical LRU-to-MRU order
        assert [k for k, _ in cache.items()] == list(model.entries)

    @given(indices=st.lists(st.integers(0, len(KEY_UNIVERSE) - 1), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_eviction_never_exceeds_capacity(self, indices):
        capacity = 3
        cache = FeatureCache(capacity)
        for index in indices:
            cache.put(KEY_UNIVERSE[index], *payload_for(index))
            assert len(cache) <= capacity
        stats = cache.stats()
        distinct = len(set(indices))
        assert stats.size == min(distinct, capacity)
        if indices:
            # the most recently inserted key is always resident
            assert KEY_UNIVERSE[indices[-1]] in cache

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FeatureCache(0)
        with pytest.raises(ValueError):
            FeatureCache(4, max_bytes=0)

    def test_hit_rate_and_clear(self):
        cache = FeatureCache(2)
        cache.put("a", *payload_for(0))
        assert cache.get("a") is not None
        assert cache.get("b") is None
        stats = cache.stats()
        assert stats.hit_rate == pytest.approx(0.5)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().bytes == 0
        # counters survive a clear; the ledger still closes
        assert cache.stats().ledger_closed


class TestByteBudget:
    """Entries are full float64 tensors; the byte budget is what bounds RSS."""

    def test_entry_nbytes_counts_all_payload_tensors(self, pose_complexes):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        sample = engine.featurize(pose_complexes[0])
        expected = (
            sample.voxel.nbytes
            + sample.graph["node_features"].nbytes
            + sample.graph["adjacency"]["covalent"].nbytes
            + sample.graph["adjacency"]["noncovalent"].nbytes
            + sample.graph["ligand_mask"].nbytes
        )
        assert entry_nbytes(sample.voxel, sample.graph) == expected
        assert engine.stats().bytes == expected

    @given(indices=st.lists(st.integers(0, len(KEY_UNIVERSE) - 1), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_byte_budget_enforced_after_every_put(self, indices):
        per_entry = entry_nbytes(*payload_for(0))
        budget = 3 * per_entry
        cache = FeatureCache(capacity=100, max_bytes=budget)
        for index in indices:
            cache.put(KEY_UNIVERSE[index], *payload_for(index))
            stats = cache.stats()
            assert stats.bytes <= budget
            assert stats.size <= 3
            assert stats.bytes == stats.size * per_entry
            # the most recent entry is always resident
            assert KEY_UNIVERSE[index] in cache

    def test_single_oversized_entry_stays_resident(self):
        per_entry = entry_nbytes(*payload_for(0))
        cache = FeatureCache(capacity=8, max_bytes=per_entry // 2)
        cache.put("big", *payload_for(1))
        assert "big" in cache and len(cache) == 1
        cache.put("other", *payload_for(2))  # evicts down to the newest entry
        assert "other" in cache and len(cache) == 1

    def test_refreshing_a_key_does_not_leak_bytes(self):
        cache = FeatureCache(capacity=4, max_bytes=None)
        per_entry = entry_nbytes(*payload_for(0))
        for _ in range(5):
            cache.put("a", *payload_for(0))
        assert cache.stats().bytes == per_entry

    def test_pipeline_byte_budget_bounds_memory(self, pose_complexes):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        one_entry = entry_nbytes(
            engine.featurize(pose_complexes[0]).voxel, engine.featurize(pose_complexes[0]).graph
        )
        tiny = FeaturePipeline(VoxelGridConfig(grid_dim=8), cache_max_bytes=2 * one_entry)
        tiny.featurize_many(pose_complexes)
        stats = tiny.stats()
        assert stats.bytes <= 2 * one_entry
        assert stats.evictions >= len(pose_complexes) - 2


class TestCacheServedFeatureEquivalence:
    @given(picks=st.lists(st.integers(0, 5), min_size=1, max_size=12))
    @settings(max_examples=12, deadline=None)
    def test_cache_served_equals_fresh(self, picks, pose_complexes):
        cached = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        fresh = FeaturePipeline(VoxelGridConfig(grid_dim=8), cache_enabled=False)
        for index in picks:
            complex_ = pose_complexes[index % len(pose_complexes)]
            a = cached.featurize(complex_)
            b = fresh.featurize(complex_)
            assert np.array_equal(a.voxel, b.voxel)
            assert np.array_equal(a.graph["node_features"], b.graph["node_features"])
            for edge_type in ("covalent", "noncovalent"):
                assert np.array_equal(
                    a.graph["adjacency"][edge_type], b.graph["adjacency"][edge_type]
                )
        stats = cached.stats()
        assert stats.ledger_closed
        assert stats.lookups == len(picks)

    @given(picks=st.lists(st.integers(0, 5), min_size=4, max_size=16))
    @settings(max_examples=8, deadline=None)
    def test_equivalence_survives_evictions(self, picks, pose_complexes):
        # capacity 2 forces constant eviction and recomputation
        tiny = FeaturePipeline(VoxelGridConfig(grid_dim=8), cache_capacity=2)
        fresh = FeaturePipeline(VoxelGridConfig(grid_dim=8), cache_enabled=False)
        for index in picks:
            complex_ = pose_complexes[index % len(pose_complexes)]
            a = tiny.featurize(complex_)
            b = fresh.featurize(complex_)
            assert np.array_equal(a.voxel, b.voxel)
            assert len(tiny.cache) <= 2
        assert tiny.stats().ledger_closed


class TestFeatureKeys:
    def test_key_depends_on_pose_site_and_config(self, pose_complexes):
        digest_a = featurizer_config_digest(VoxelGridConfig(grid_dim=8), GraphConfig())
        digest_b = featurizer_config_digest(VoxelGridConfig(grid_dim=16), GraphConfig())
        digest_c = featurizer_config_digest(VoxelGridConfig(grid_dim=8), GraphConfig(pocket_shell=4.0))
        assert len({digest_a, digest_b, digest_c}) == 3

        first, second = pose_complexes[0], pose_complexes[1]
        assert feature_key(first, digest_a) != feature_key(second, digest_a)
        assert feature_key(first, digest_a) != feature_key(first, digest_b)
        # deterministic: same inputs, same key
        assert feature_key(first, digest_a) == feature_key(first, digest_a)

    def test_pose_id_changes_key(self, pose_complexes):
        digest = featurizer_config_digest(VoxelGridConfig(grid_dim=8), GraphConfig())
        original = pose_complexes[0]
        other_pose = original.with_ligand(original.ligand, pose_id=original.pose_id + 1)
        assert feature_key(original, digest) != feature_key(other_pose, digest)
