"""Crash supervision: SupervisedTaskPool, quarantine, breakers, kill faults.

The expensive chaos paths (real SIGKILL'd spawn workers) run against
real :class:`ProcessTaskPool` generations; the pure supervision logic
(respawn exhaustion, degrade-to-thread, deadlines) runs against an
in-process scriptable pool so the state machine is tested exhaustively
without paying a process spawn per case.
"""

from __future__ import annotations

import pickle
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.hpc.faults import FaultInjector, ProcessKillFault
from repro.parallel import (
    PoolClosedError,
    ProcessTaskPool,
    RespawnExhausted,
    SupervisedTaskPool,
    SupervisionConfig,
    TaskFailure,
    TaskQuarantined,
    current_task_attempt,
)
from repro.parallel.pool import _AttemptedTask
from repro.telemetry import MetricsRegistry


class _EchoPayload:
    """Doubles integers; optionally kills its own worker via a fault."""

    def __init__(self, killer: ProcessKillFault | None = None) -> None:
        self.killer = killer

    def run_task(self, task):
        if self.killer is not None:
            self.killer.check(f"task-{task}")
        return task * 2


class _AttemptReporterPayload:
    """Returns the worker-side attempt number for a task."""

    def run_task(self, task):
        return (task, current_task_attempt())


class _ManualPool:
    """Scriptable in-process stand-in for ProcessTaskPool."""

    def __init__(self, on_submit=None):
        self.on_submit = on_submit
        self.closed = False
        self.broken = False
        self.warmed = 0

    def submit(self, task):
        inner = task.task if isinstance(task, _AttemptedTask) else task
        future: Future = Future()
        if self.on_submit is None:
            future.set_result(inner)
            return future
        try:
            outcome = self.on_submit(self, inner)
        except BaseException as error:  # noqa: BLE001 - scripted failures
            future.set_exception(error)
            return future
        if outcome is _NEVER:
            return future  # deliberately left pending (hung worker)
        future.set_result(outcome)
        return future

    def warm(self, wait=False):
        self.warmed += 1

    def close(self):
        self.closed = True

    def is_broken(self):
        return self.broken


_NEVER = object()


def _echo_supervised(registry=None, **config):
    return SupervisedTaskPool(
        _EchoPayload(),
        max_workers=1,
        config=SupervisionConfig(**config),
        registry=registry,
        pool_factory=_ManualPool,
    )


# ---------------------------------------------------------------------- #
class TestSupervisionLogic:
    """State-machine tests against the scriptable pool (no spawns)."""

    def test_results_pass_through_unchanged(self):
        registry = MetricsRegistry()
        with _echo_supervised(registry) as pool:
            assert [pool.run(i) for i in range(5)] == list(range(5))
        snap = registry.snapshot()["counters"]
        assert snap["supervision.respawns"] == 0
        assert snap["supervision.quarantined"] == 0

    def test_task_exceptions_propagate_without_retry(self):
        calls = []

        def explode(pool, task):
            calls.append(task)
            raise ValueError(f"bad task {task}")

        registry = MetricsRegistry()
        supervised = SupervisedTaskPool(
            _EchoPayload(),
            registry=registry,
            pool_factory=lambda: _ManualPool(explode),
        )
        with supervised:
            with pytest.raises(ValueError, match="bad task 7"):
                supervised.run(7)
        assert calls == [7]  # exactly one execution: exceptions never retry
        assert registry.snapshot()["counters"]["supervision.respawns"] == 0

    def test_crash_respawns_and_redispatches(self):
        generations = []

        def factory():
            if not generations:
                pool = _ManualPool(_crash_once)
            else:
                pool = _ManualPool()  # healthy echo
            generations.append(pool)
            return pool

        def _crash_once(pool, task):
            pool.broken = True
            raise BrokenProcessPool("worker died")

        registry = MetricsRegistry()
        supervised = SupervisedTaskPool(
            _EchoPayload(),
            config=SupervisionConfig(respawn_backoff_s=0.0),
            registry=registry,
            pool_factory=factory,
        )
        with supervised:
            assert supervised.run(11) == 11
        assert len(generations) == 2
        assert generations[0].closed  # dead generation was torn down
        counters = registry.snapshot()["counters"]
        assert counters["supervision.respawns"] == 1
        assert counters["supervision.redispatches"] == 1

    def test_poison_task_quarantined_as_taskfailure(self):
        def always_crash(pool, task):
            pool.broken = True
            raise BrokenProcessPool("worker died")

        registry = MetricsRegistry()
        supervised = SupervisedTaskPool(
            _EchoPayload(),
            config=SupervisionConfig(max_task_retries=2, respawn_backoff_s=0.0),
            registry=registry,
            pool_factory=lambda: _ManualPool(always_crash),
        )
        with supervised:
            failure = supervised.run("poison")
        assert isinstance(failure, TaskFailure)
        assert failure.task == "poison"
        assert failure.attempts == 2
        assert failure.kind == "crash"
        with pytest.raises(TaskQuarantined, match="quarantined"):
            raise failure.to_exception()
        assert registry.snapshot()["counters"]["supervision.quarantined"] == 1

    def test_deadline_fails_future_without_teardown(self):
        def hang_on_slow(pool, task):
            return _NEVER if task == "slow" else task

        registry = MetricsRegistry()
        supervised = SupervisedTaskPool(
            _EchoPayload(),
            registry=registry,
            pool_factory=lambda: _ManualPool(hang_on_slow),
        )
        with supervised:
            with pytest.raises(TimeoutError, match="deadline"):
                supervised.run("slow", deadline_s=0.1)
            # healthy tasks keep flowing through the same generation
            assert supervised.run("quick") == "quick"
        counters = registry.snapshot()["counters"]
        assert counters["supervision.deadline_timeouts"] == 1
        assert counters["supervision.respawns"] == 0

    def test_degrade_to_thread_when_respawn_keeps_failing(self):
        state = {"factory_calls": 0}

        def factory():
            state["factory_calls"] += 1
            if state["factory_calls"] == 1:
                return _ManualPool(_crash)
            raise OSError("spawn exhausted")

        def _crash(pool, task):
            pool.broken = True
            raise BrokenProcessPool("worker died")

        registry = MetricsRegistry()
        supervised = SupervisedTaskPool(
            _EchoPayload(),
            max_workers=2,
            config=SupervisionConfig(
                respawn_backoff_s=0.0,
                max_respawn_failures=2,
                degrade_to_thread=True,
            ),
            registry=registry,
            pool_factory=factory,
        )
        with supervised:
            # first task rides the crash -> respawn-fails -> degrade path
            assert supervised.run(21) == 42
            # later submits go straight to the degraded thread pool
            assert supervised.run(4) == 8
        counters = registry.snapshot()["counters"]
        assert counters["supervision.degraded"] == 1
        assert state["factory_calls"] == 1 + 2  # initial + 2 failed respawns

    def test_respawn_exhaustion_without_degrade_fails_tasks(self):
        state = {"factory_calls": 0}

        def factory():
            state["factory_calls"] += 1
            if state["factory_calls"] == 1:
                return _ManualPool(_crash)
            raise OSError("spawn exhausted")

        def _crash(pool, task):
            pool.broken = True
            raise BrokenProcessPool("worker died")

        supervised = SupervisedTaskPool(
            _EchoPayload(),
            config=SupervisionConfig(
                respawn_backoff_s=0.0, max_respawn_failures=2, degrade_to_thread=False
            ),
            pool_factory=factory,
        )
        with supervised:
            with pytest.raises(RespawnExhausted, match="2 consecutive"):
                supervised.run(1)

    def test_submit_after_close_raises_pool_closed_error(self):
        supervised = _echo_supervised()
        supervised.close()
        supervised.close()  # idempotent
        with pytest.raises(PoolClosedError, match="closed") as excinfo:
            supervised.submit(1)
        assert "SupervisedTaskPool" in str(excinfo.value)
        assert "_EchoPayload" in str(excinfo.value)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_task_retries"):
            SupervisionConfig(max_task_retries=0)
        with pytest.raises(ValueError, match="task_deadline_s"):
            SupervisionConfig(task_deadline_s=0.0)
        with pytest.raises(ValueError, match="respawn_backoff_factor"):
            SupervisionConfig(respawn_backoff_factor=0.5)


# ---------------------------------------------------------------------- #
class TestRealProcessCrashes:
    """Chaos paths against real spawned workers (SIGKILL via ProcessKillFault)."""

    def test_kill_then_transparent_respawn(self):
        killer = ProcessKillFault(names=frozenset({"task-3"}), at_attempt=1)
        registry = MetricsRegistry()
        supervised = SupervisedTaskPool(
            _EchoPayload(killer),
            max_workers=1,
            config=SupervisionConfig(respawn_backoff_s=0.0),
            registry=registry,
        )
        with supervised:
            futures = [supervised.submit(i) for i in range(5)]
            assert [f.result(timeout=120) for f in futures] == [0, 2, 4, 6, 8]
        counters = registry.snapshot()["counters"]
        assert counters["supervision.respawns"] >= 1
        assert counters["supervision.quarantined"] == 0
        histogram = registry.snapshot()["histograms"]["supervision.respawn_s"]
        assert histogram["count"] >= 1

    def test_poison_task_surfaces_exactly_one_taskfailure(self):
        killer = ProcessKillFault(names=frozenset({"task-2"}), at_attempt=0)
        registry = MetricsRegistry()
        supervised = SupervisedTaskPool(
            _EchoPayload(killer),
            max_workers=1,
            config=SupervisionConfig(max_task_retries=2, respawn_backoff_s=0.0),
            registry=registry,
        )
        with supervised:
            results = [supervised.run(i) for i in range(4)]
        failures = [r for r in results if isinstance(r, TaskFailure)]
        assert len(failures) == 1
        assert failures[0].task == 2
        assert failures[0].attempts == 2
        clean = [r for r in results if not isinstance(r, TaskFailure)]
        assert clean == [0, 2, 6]
        assert registry.snapshot()["counters"]["supervision.quarantined"] == 1

    def test_worker_side_attempt_numbers(self):
        supervised = SupervisedTaskPool(_AttemptReporterPayload(), max_workers=1)
        with supervised:
            assert supervised.run("x") == ("x", 1)
        assert current_task_attempt() is None  # coordinator side stays inert

    def test_worker_pids_visible_after_warm(self):
        with SupervisedTaskPool(_EchoPayload(), max_workers=1) as supervised:
            supervised.warm(wait=True)
            pids = supervised.worker_pids()
            assert len(pids) == 1
            assert all(isinstance(pid, int) for pid in pids)


# ---------------------------------------------------------------------- #
class TestPoolClosedError:
    def test_plain_pool_names_pool_and_payload(self):
        pool = ProcessTaskPool(_EchoPayload(), max_workers=1)
        pool.close()
        with pytest.raises(PoolClosedError, match="closed") as excinfo:
            pool.submit(1)
        message = str(excinfo.value)
        assert "ProcessTaskPool" in message
        assert "_EchoPayload" in message
        with pytest.raises(PoolClosedError):
            pool.run(1)

    def test_pool_closed_error_pickles(self):
        error = PoolClosedError("ProcessTaskPool", "_EchoPayload")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, PoolClosedError)
        assert str(clone) == str(error)


# ---------------------------------------------------------------------- #
class TestProcessKillFault:
    def test_inert_outside_worker_processes(self):
        killer = ProcessKillFault(names=frozenset({"here"}), at_attempt=1)
        killer.check("here")  # would SIGKILL the test process if not guarded
        assert current_task_attempt() is None

    def test_plan_process_kills_is_seeded_and_recorded(self):
        candidates = [f"shard-{i}" for i in range(10)]
        first = FaultInjector(seed=7).plan_process_kills(candidates, count=2)
        second = FaultInjector(seed=7).plan_process_kills(candidates, count=2)
        assert first.names == second.names
        assert len(first.names) == 2
        third = FaultInjector(seed=8).plan_process_kills(candidates, count=2)
        assert first.names != third.names  # seed moves the draw

        injector = FaultInjector(seed=7)
        injector.plan_process_kills(candidates, count=2)
        assert [e.mode for e in injector.injected] == ["process_kill", "process_kill"]
        assert {e.job_name for e in injector.injected} == set(first.names)

    def test_disabled_injector_plans_nothing(self):
        injector = FaultInjector(seed=7, enabled=False)
        fault = injector.plan_process_kills(["a", "b"], count=1)
        assert fault.names == frozenset()
        assert injector.injected == []

    def test_fault_pickles(self):
        fault = ProcessKillFault(names=frozenset({"a"}), at_attempt=2)
        clone = pickle.loads(pickle.dumps(fault))
        assert clone == fault


# ---------------------------------------------------------------------- #
class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def test_full_cycle_closed_open_halfopen_closed(self):
        from repro.parallel import CircuitBreaker

        clock = _FakeClock()
        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            name="replica-0",
            failure_threshold=3,
            reset_timeout_s=10.0,
            registry=registry,
            clock=clock,
        )
        assert breaker.state == "closed"
        # a success resets the consecutive-failure streak
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third consecutive: trips open
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.seconds_until_probe() == pytest.approx(10.0)

        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.peek_allow()
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe in flight
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

        snap = registry.snapshot()
        assert snap["counters"]["supervision.breaker_opened"] == 1
        assert snap["gauges"]["supervision.breaker_open_s"] == pytest.approx(10.0)

    def test_half_open_probe_failure_reopens(self):
        from repro.parallel import CircuitBreaker

        clock = _FakeClock()
        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, registry=registry, clock=clock
        )
        assert breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.record_failure()  # probe failed: reopen for a full window
        assert breaker.state == "open"
        assert not breaker.allow()
        assert registry.snapshot()["counters"]["supervision.breaker_opened"] == 2

    def test_validation(self):
        from repro.parallel import CircuitBreaker

        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout_s"):
            CircuitBreaker(reset_timeout_s=0.0)
