"""Tests for splits, the synthetic PDBbind dataset, compound libraries and assays."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.assays import (
    ASSAY_CONCENTRATIONS_UM,
    InhibitionAssay,
    make_assay_panel,
    simulate_campaign_assays,
)
from repro.datasets.libraries import LIBRARY_PROFILES, TOTAL_LIBRARY_SIZE, build_screening_deck
from repro.datasets.pdbbind import PDBbindConfig, generate_pdbbind
from repro.datasets.splits import coverage_by_bin, quintile_split, random_split
from repro.featurize.pipeline import ComplexFeaturizer
from repro.featurize.voxelize import VoxelGridConfig


class TestSplits:
    def test_quintile_split_partitions(self):
        values = np.linspace(0, 10, 100)
        train, val = quintile_split(values, val_fraction=0.1, rng=0)
        assert len(train) + len(val) == 100
        assert len(np.intersect1d(train, val)) == 0
        assert 5 <= len(val) <= 20

    def test_quintile_split_covers_every_bin(self):
        values = np.concatenate([np.full(20, v) + np.random.default_rng(0).normal(scale=0.01, size=20) for v in range(5)])
        _train, val = quintile_split(values, val_fraction=0.1, rng=1)
        coverage = coverage_by_bin(values, val)
        assert np.all(coverage > 0)

    def test_random_split_shapes(self):
        train, val = random_split(50, 0.2, rng=2)
        assert len(val) == 10 and len(train) == 40

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            quintile_split(np.arange(10.0), val_fraction=0.0)
        with pytest.raises(ValueError):
            random_split(10, 1.5)
        with pytest.raises(ValueError):
            quintile_split(np.zeros((3, 3)))

    @given(
        st.lists(st.floats(min_value=0, max_value=12, allow_nan=False), min_size=10, max_size=80),
        st.floats(min_value=0.05, max_value=0.4),
    )
    @settings(max_examples=30, deadline=None)
    def test_quintile_split_properties(self, values, fraction):
        values = np.array(values)
        train, val = quintile_split(values, val_fraction=fraction, rng=3)
        assert len(train) + len(val) == len(values)
        assert len(set(train.tolist()) & set(val.tolist())) == 0
        assert len(val) >= 1


class TestPDBbind:
    def test_subset_sizes_and_filters(self, tiny_pdbbind):
        assert len(tiny_pdbbind.general) == 16
        assert len(tiny_pdbbind.refined) == 8
        assert len(tiny_pdbbind.core) == 6
        for entry in tiny_pdbbind.refined + tiny_pdbbind.core:
            assert entry.ligand_mw <= 1000.0
            assert entry.measurement in ("Ki", "Kd")
            assert entry.resolution < 2.5
        for entry in tiny_pdbbind.entries:
            assert 0.0 <= entry.experimental_pk <= 14.0
            assert 0.0 <= entry.true_pk <= 14.0

    def test_core_uses_heldout_families(self, tiny_pdbbind):
        core_families = {e.family_id for e in tiny_pdbbind.core}
        train_families = {e.family_id for e in tiny_pdbbind.general + tiny_pdbbind.refined}
        assert core_families.isdisjoint(train_families)

    def test_train_val_split_covers_strata(self, tiny_pdbbind):
        train, val = tiny_pdbbind.train_val_split(val_fraction=0.2, rng=0)
        assert len(train) + len(val) == len(tiny_pdbbind.general) + len(tiny_pdbbind.refined)
        assert all(e.subset in ("general", "refined") for e in train + val)
        assert len(val) >= 2

    def test_label_statistics(self, tiny_pdbbind):
        stats = tiny_pdbbind.label_statistics()
        assert set(stats) == {"general", "refined", "core"}
        assert stats["general"]["count"] == 16

    def test_featurize_entries(self, tiny_pdbbind):
        featurizer = ComplexFeaturizer(VoxelGridConfig(grid_dim=10))
        samples = tiny_pdbbind.featurize_entries(tiny_pdbbind.core[:3], featurizer)
        assert len(samples) == 3
        assert samples[0].target == pytest.approx(tiny_pdbbind.core[0].experimental_pk)

    def test_invalid_family_configuration(self):
        with pytest.raises(ValueError):
            generate_pdbbind(PDBbindConfig(n_general=2, n_refined=1, n_core=1, n_families=3, n_core_families=3))

    def test_generation_is_deterministic(self):
        config = PDBbindConfig(n_general=4, n_refined=2, n_core=2, n_families=4, n_core_families=1,
                               pose_search_steps=5, pose_search_restarts=1, seed=5)
        a = generate_pdbbind(config)
        b = generate_pdbbind(config)
        assert [e.experimental_pk for e in a.entries] == [e.experimental_pk for e in b.entries]


class TestLibraries:
    def test_profiles_exist_and_total_size(self):
        assert set(LIBRARY_PROFILES) == {"zinc_world_approved", "chembl", "emolecules", "enamine"}
        assert TOTAL_LIBRARY_SIZE > 400_000_000

    def test_deck_generation_and_ids(self):
        deck = build_screening_deck({"emolecules": 4, "enamine": 3}, seed=1)
        assert len(deck) == 7
        assert len(deck.by_library("emolecules")) == 4
        assert all(m.name.startswith("EMOL-") for m in deck.by_library("emolecules"))
        assert all(m.name.startswith("ENAM-") for m in deck.by_library("enamine"))

    def test_unknown_library_raises(self):
        with pytest.raises(KeyError):
            build_screening_deck({"pubchem": 3})

    def test_library_generation_reproducible(self):
        a = LIBRARY_PROFILES["chembl"].generate(2, seed=4)
        b = LIBRARY_PROFILES["chembl"].generate(2, seed=4)
        assert a[0].num_atoms == b[0].num_atoms


class TestAssays:
    def test_occupancy_monotone_in_affinity(self, protease_site):
        assay = InhibitionAssay(protease_site, concentration_um=100.0, seed=1)
        occupancies = [assay.occupancy(pk) for pk in (3.0, 5.0, 7.0, 9.0)]
        assert occupancies == sorted(occupancies)
        assert 0.0 <= occupancies[0] <= occupancies[-1] <= 1.0

    def test_measurements_bounded_and_deterministic(self, protease_site):
        assay = InhibitionAssay(protease_site, concentration_um=100.0, seed=2)
        r1 = assay.measure_pk("cmp-1", 8.0)
        r2 = assay.measure_pk("cmp-1", 8.0)
        assert r1.percent_inhibition == r2.percent_inhibition
        assert 0.0 <= r1.percent_inhibition <= 100.0

    def test_biology_penalty_decouples_structure(self, protease_site):
        assay = InhibitionAssay(protease_site, concentration_um=100.0, biology_penalty_mean=3.0, seed=3)
        strong_predictions = [assay.measure_pk(f"c{i}", 9.0).percent_inhibition for i in range(40)]
        # despite uniformly strong structural affinity, many compounds are inactive
        assert sum(1 for v in strong_predictions if v < 33.0) > 5

    def test_panel_concentrations(self, sarscov2_sites):
        panel = make_assay_panel(sarscov2_sites, seed=5)
        assert panel["protease1"].concentration_um == ASSAY_CONCENTRATIONS_UM["protease1"] == 100.0
        assert panel["spike1"].concentration_um == 10.0

    def test_simulate_campaign_assays(self, sarscov2_sites):
        panel = make_assay_panel(sarscov2_sites, seed=6)
        table = simulate_campaign_assays(panel, {"protease1": [("a", 7.0), ("b", 4.0)], "spike1": [("c", 8.0)]})
        assert len(table.results) == 3
        assert table.inhibition_of("protease1", "a") is not None
        assert table.inhibition_of("protease1", "zzz") is None
        assert 0.0 <= table.hit_rate(33.0) <= 1.0
        with pytest.raises(KeyError):
            simulate_campaign_assays(panel, {"unknown_site": []})

    def test_invalid_concentration(self, protease_site):
        with pytest.raises(ValueError):
            InhibitionAssay(protease_site, concentration_um=0.0)
