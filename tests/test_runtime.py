"""Tests for the fault-tolerant campaign runtime (repro.runtime).

The mini-campaign here is deliberately tiny (one library, two poses per
compound) so that kill/resume scenarios can afford several full runs;
bitwise equality assertions are exact (``==`` on floats), because the
runtime's contract is bit-identical results across facade, checkpointed,
resumed and fault-retried executions of the same seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hpc.faults import FaultInjector
from repro.runtime import (
    CheckpointStore,
    JobRunner,
    RetryPolicy,
    RuntimeConfig,
    CampaignRuntime,
    Stage,
    StageFailure,
    StageGraph,
    StageJob,
    StageJobError,
    checkpoint_key,
)
from repro.screening.costfunction import CompoundCostFunction
from repro.screening.pipeline import CampaignConfig, ScreeningCampaign


def mini_config(**overrides) -> CampaignConfig:
    base = dict(
        library_counts={"emolecules": 5},
        poses_per_compound=2,
        compounds_tested_per_site=3,
        seed=13,
        nodes_per_job=2,
        gpus_per_node=2,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def make_runtime(workbench, runtime_config: RuntimeConfig | None = None, **config_overrides) -> CampaignRuntime:
    return CampaignRuntime(
        model=workbench.coherent_fusion,
        featurizer=workbench.featurizer,
        campaign=mini_config(**config_overrides),
        runtime=runtime_config,
        cost_function=CompoundCostFunction(),
        interaction_model=workbench.interaction_model,
    )


def fusion_map(result) -> dict[tuple[str, str, int], float]:
    return {(r.site_name, r.compound_id, r.pose_id): r.fusion_pk for r in result.database.records()}


def selection_map(result) -> dict[str, list[str]]:
    return {site: [score.compound_id for score in scores] for site, scores in result.selections.items()}


@pytest.fixture(scope="module")
def baseline(workbench):
    """The uninterrupted mini-campaign through the plain facade."""
    campaign = ScreeningCampaign(
        model=workbench.coherent_fusion,
        featurizer=workbench.featurizer,
        config=mini_config(),
        cost_function=CompoundCostFunction(),
        interaction_model=workbench.interaction_model,
    )
    return campaign.run()


# --------------------------------------------------------------------- #
# stage graph
# --------------------------------------------------------------------- #
class TestStageGraph:
    def test_rejects_duplicates_and_undeclared_deps(self):
        with pytest.raises(ValueError, match="duplicate"):
            StageGraph([Stage("a", ("x",)), Stage("a", ("y",))])
        with pytest.raises(ValueError, match="not declared"):
            StageGraph([Stage("a", ("x",), deps=("missing",))])
        with pytest.raises(ValueError):
            Stage("a", provides=())

    def test_downstream_closure(self):
        graph = StageGraph(
            [
                Stage("a", ("x",)),
                Stage("b", ("y",), deps=("a",)),
                Stage("c", ("z",), deps=("b",)),
                Stage("d", ("w",)),
            ]
        )
        assert graph.downstream_of("a") == ["b", "c"]
        assert graph.downstream_of("d") == []
        with pytest.raises(KeyError):
            graph.downstream_of("nope")


# --------------------------------------------------------------------- #
# checkpoint store
# --------------------------------------------------------------------- #
class TestCheckpointStore:
    def test_roundtrip_and_stale_key_miss(self, checkpoint_store):
        payload = {"array": np.arange(5.0), "mapping": {("c1", 0): 7.25}}
        checkpoint_store.save("docking", "key-a", payload)
        restored = checkpoint_store.load("docking", "key-a")
        assert restored["mapping"] == payload["mapping"]
        np.testing.assert_array_equal(restored["array"], payload["array"])
        # a different content key means the checkpoint is stale: miss
        assert checkpoint_store.load("docking", "key-b") is None
        assert checkpoint_store.load("never-saved", "key-a") is None
        assert checkpoint_store.completed_stages() == {"docking": "key-a"}

    def test_corrupt_file_is_a_miss(self, checkpoint_dir):
        store = CheckpointStore(checkpoint_dir)
        store.save("library", "key", {"v": 1})
        (checkpoint_dir / "library.npz").write_bytes(b"not an npz container")
        assert store.load("library", "key") is None

    def test_discard_and_clear(self, checkpoint_store):
        checkpoint_store.save("a", "k1", 1)
        checkpoint_store.save("b", "k2", 2)
        checkpoint_store.discard("a")
        assert checkpoint_store.load("a", "k1") is None
        checkpoint_store.clear()
        assert checkpoint_store.completed_stages() == {}

    def test_in_memory_mode(self):
        store = CheckpointStore(directory=None)
        store.save("s", "k", {"x": 3})
        assert store.load("s", "k") == {"x": 3}
        assert store.load("s", "other") is None
        assert store.completed_stages() == {"s": "k"}

    def test_checkpoint_key_sensitivity(self):
        key = checkpoint_key("docking", {"seed": 1}, ["dep1"])
        assert key == checkpoint_key("docking", {"seed": 1}, ["dep1"])
        assert key != checkpoint_key("docking", {"seed": 2}, ["dep1"])
        assert key != checkpoint_key("docking", {"seed": 1}, ["dep2"])
        assert key != checkpoint_key("mmgbsa", {"seed": 1}, ["dep1"])


# --------------------------------------------------------------------- #
# job runner
# --------------------------------------------------------------------- #
class TestJobRunner:
    def test_results_in_submission_order(self):
        import time as _time

        def make(value, delay):
            def fn():
                _time.sleep(delay)
                return value

            return fn

        runner = JobRunner(max_workers=4)
        jobs = [StageJob(name=f"j{i}", fn=make(i, 0.02 * (3 - i))) for i in range(4)]
        assert runner.run_all(jobs) == [0, 1, 2, 3]
        assert runner.total_retries == 0

    def test_retries_then_exhaustion(self):
        always = FaultInjector.uniform(1.0, seed=1)
        runner = JobRunner(max_workers=1, fault_injector=always, retry=RetryPolicy(max_retries=2))
        with pytest.raises(StageJobError) as excinfo:
            runner.run_all([StageJob(name="doomed", fn=lambda: "never")])
        assert excinfo.value.attempts == 3  # 1 try + 2 retries
        assert runner.attempts["doomed"] == 3

    def test_transient_faults_recovered(self):
        flaky = FaultInjector.uniform(0.6, seed=4)
        runner = JobRunner(max_workers=2, fault_injector=flaky, retry=RetryPolicy(max_retries=20))
        results = runner.run_all([StageJob(name=f"job{i}", fn=lambda i=i: i * 10) for i in range(6)])
        assert results == [0, 10, 20, 30, 40, 50]
        assert runner.total_attempts >= 6

    def test_retry_policy_backoff_schedule(self):
        policy = RetryPolicy(max_retries=3, backoff_s=0.1, backoff_factor=2.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(3) == pytest.approx(0.4)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            JobRunner(max_workers=0)


# --------------------------------------------------------------------- #
# campaign runtime: parity, resume, kill, faults
# --------------------------------------------------------------------- #
class TestCampaignRuntime:
    def test_cold_run_matches_facade_bitwise(self, workbench, baseline, checkpoint_dir):
        runtime = make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir)))
        result = runtime.run()
        assert runtime.report.executed_stages() == runtime.stages.names()
        assert fusion_map(result) == fusion_map(baseline)
        assert result.structural_pk == baseline.structural_pk
        assert selection_map(result) == selection_map(baseline)
        assert result.summary() == baseline.summary()

    def test_resume_restores_every_stage(self, workbench, baseline, checkpoint_dir):
        make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir))).run()
        resumed = make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir)))
        result = resumed.run()
        assert resumed.report.restored_stages() == resumed.stages.names()
        assert resumed.report.executed_stages() == []
        assert all(count == 0 for count in resumed.execution_counts.values())
        assert fusion_map(result) == fusion_map(baseline)
        assert result.structural_pk == baseline.structural_pk

    def test_kill_after_docking_then_resume(self, workbench, baseline, checkpoint_dir):
        """Acceptance: a campaign killed after docking resumes, skips completed
        stages (stage counters prove it) and yields bit-identical results."""
        killed = make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir)))
        assert killed.run(stop_after="docking") is None
        assert killed.report.executed_stages() == ["library", "ligand_prep", "docking"]
        assert sorted(killed.checkpoints.completed_stages()) == ["docking", "library", "ligand_prep"]

        resumed = make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir)))
        result = resumed.run()
        assert resumed.report.restored_stages() == ["library", "ligand_prep", "docking"]
        assert resumed.report.executed_stages() == ["mmgbsa", "fusion_scoring", "cost_function", "assays"]
        # completed stages were not re-executed
        for name in ("library", "ligand_prep", "docking"):
            assert resumed.execution_counts[name] == 0
        assert fusion_map(result) == fusion_map(baseline)
        assert result.structural_pk == baseline.structural_pk
        assert selection_map(result) == selection_map(baseline)
        assert result.summary() == baseline.summary()

    def test_fault_exhaustion_kills_then_resume_skips_completed(self, workbench, baseline, checkpoint_dir):
        """FaultInjector-driven kill: fusion jobs keep faulting until the
        retry budget runs out, the campaign dies, and a re-run resumes from
        the checkpoints without re-executing the physics stages."""
        lethal = RuntimeConfig(
            checkpoint_dir=str(checkpoint_dir),
            fault_injector=FaultInjector.uniform(1.0, seed=5),
            retry=RetryPolicy(max_retries=1),
        )
        dying = make_runtime(workbench, lethal)
        with pytest.raises(StageFailure) as excinfo:
            dying.run()
        assert excinfo.value.stage == "fusion_scoring"
        assert sorted(dying.checkpoints.completed_stages()) == ["docking", "library", "ligand_prep", "mmgbsa"]
        # the failed stage's fault diagnostics survive the failure
        failed_report = dying.report.stage("fusion_scoring")
        assert failed_report.retries > 0
        assert failed_report.faults

        resumed = make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir)))
        result = resumed.run()
        assert resumed.report.restored_stages() == ["library", "ligand_prep", "docking", "mmgbsa"]
        assert resumed.report.executed_stages() == ["fusion_scoring", "cost_function", "assays"]
        assert resumed.execution_counts["docking"] == 0
        assert resumed.execution_counts["fusion_scoring"] == 1
        assert fusion_map(result) == fusion_map(baseline)

    def test_transient_faults_retry_with_identical_results(self, workbench, baseline, checkpoint_dir):
        flaky = RuntimeConfig(
            checkpoint_dir=str(checkpoint_dir),
            fault_injector=FaultInjector.uniform(0.5, seed=11),
            retry=RetryPolicy(max_retries=12),
            modelled_schedule=True,
        )
        runtime = make_runtime(workbench, flaky)
        result = runtime.run()
        report = runtime.report.stage("fusion_scoring")
        assert report.retries > 0
        assert len(report.faults) == report.retries  # every logged fault cost exactly one retry
        assert report.attempts - report.retries == 4  # one scoring job per site succeeded
        # faults only cost retries, never results
        assert fusion_map(result) == fusion_map(baseline)
        # the LSF projection shares the fault draws, so its simulated
        # requeue pattern matches the attempts the runner just made
        modelled = report.extra["modelled_schedule"]
        assert modelled["attempts"] == report.attempts
        assert modelled["completed"] == modelled["jobs"]
        assert modelled["makespan_s"] > 0

    def test_model_swap_invalidates_fusion_and_downstream_only(self, workbench, checkpoint_dir):
        make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir))).run()
        swapped = CampaignRuntime(
            model=workbench.mid_fusion,  # different weights -> different fingerprint
            featurizer=workbench.featurizer,
            campaign=mini_config(),
            runtime=RuntimeConfig(checkpoint_dir=str(checkpoint_dir)),
            cost_function=CompoundCostFunction(),
            interaction_model=workbench.interaction_model,
        )
        swapped.run()
        assert swapped.report.restored_stages() == ["library", "ligand_prep", "docking", "mmgbsa"]
        assert swapped.report.executed_stages() == ["fusion_scoring", "cost_function", "assays"]

    def test_featurizer_change_invalidates_fusion_checkpoint(self, workbench, checkpoint_dir):
        from repro.featurize.graph import GraphConfig
        from repro.featurize.pipeline import ComplexFeaturizer
        from repro.featurize.voxelize import VoxelGridConfig

        make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir))).run()
        refeaturized = CampaignRuntime(
            model=workbench.coherent_fusion,
            featurizer=ComplexFeaturizer(  # different grid -> different model inputs
                voxel_config=VoxelGridConfig(grid_dim=12, resolution=1.5, channel_set="reduced"),
                graph_config=GraphConfig(),
                augment=True,
                seed=workbench.scale.seed,
            ),
            campaign=mini_config(),
            runtime=RuntimeConfig(checkpoint_dir=str(checkpoint_dir)),
            cost_function=CompoundCostFunction(),
            interaction_model=workbench.interaction_model,
        )
        refeaturized.run()
        assert "fusion_scoring" in refeaturized.report.executed_stages()
        assert "docking" in refeaturized.report.restored_stages()

    def test_restored_payload_missing_artifact_reexecutes(self, workbench, checkpoint_dir):
        runtime = make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir)))
        # forge a checkpoint under the correct key but without 'deck'
        runtime.checkpoints.save("library", runtime.stage_key("library"), {"sites": {}})
        assert runtime.run(stop_after="library") is None
        # the stale payload was discarded and the stage executed fresh
        assert runtime.report.executed_stages() == ["library"]
        assert runtime.execution_counts["library"] == 1

    def test_seed_change_invalidates_everything(self, workbench, checkpoint_dir):
        make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir))).run()
        reseeded = make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir)), seed=14)
        reseeded.run()
        assert reseeded.report.restored_stages() == []
        assert reseeded.report.executed_stages() == reseeded.stages.names()

    def test_stage_body_error_wrapped_and_report_preserved(self, workbench):
        runtime = make_runtime(workbench)
        # a stage body raising a generic error (simulating e.g. bad metadata)
        runtime._stage_library = lambda context, report, use_threads: (_ for _ in ()).throw(
            KeyError("bad metadata")
        )
        with pytest.raises(StageFailure) as excinfo:
            runtime.run()
        assert excinfo.value.stage == "library"
        assert runtime.report.stage("library").status == "executed"  # report survives the failure

    def test_executed_payload_missing_artifact_fails_with_report(self, workbench):
        runtime = make_runtime(workbench)
        runtime._stage_library = lambda context, report, use_threads: {"sites": {}}  # no 'deck'
        with pytest.raises(StageFailure, match="missing artifacts"):
            runtime.run()
        assert runtime.report.stage("library").status == "executed"

    def test_invalid_configuration_rejected(self, workbench):
        with pytest.raises(ValueError, match="executor"):
            make_runtime(workbench, RuntimeConfig(executor="quantum"))
        runtime = make_runtime(workbench)
        with pytest.raises(KeyError):
            runtime.run(stop_after="not-a-stage")


# --------------------------------------------------------------------- #
# golden determinism snapshot
# --------------------------------------------------------------------- #
def test_golden_determinism_across_direct_serving_and_resumed(workbench, baseline, checkpoint_dir):
    """Fixed-seed summary snapshot is identical across the direct path, the
    serving-routed path and a runtime run resumed from checkpoints."""
    serving_result = make_runtime(workbench, use_serving=True).run()

    make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir))).run(stop_after="mmgbsa")
    resumed_result = make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir))).run()

    golden = baseline.summary()
    assert serving_result.summary() == golden
    assert resumed_result.summary() == golden
    # the snapshot holds because selection itself is identical
    assert selection_map(serving_result) == selection_map(baseline)
    assert selection_map(resumed_result) == selection_map(baseline)
    # serving and batch agree to floating-point associativity on raw scores
    base_scores = fusion_map(baseline)
    for key, score in fusion_map(serving_result).items():
        assert score == pytest.approx(base_scores[key], rel=1e-9, abs=1e-9)
    # the resumed run is bitwise identical, not merely approximately equal
    assert fusion_map(resumed_result) == base_scores
