"""Tests for conv3d / pooling / batch norm / dropout and their gradients."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def finite_diff(fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(array)
        flat[i] = orig - eps
        down = fn(array)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


class TestConv3d:
    def test_output_shape_with_padding(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 5, 5, 5)))
        w = Tensor(np.random.default_rng(1).normal(size=(4, 3, 3, 3, 3)))
        out = F.conv3d(x, w, padding=1)
        assert out.shape == (2, 4, 5, 5, 5)
        out_valid = F.conv3d(x, w, padding=0)
        assert out_valid.shape == (2, 4, 3, 3, 3)

    def test_matches_manual_convolution(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 1, 4, 4, 4))
        w = rng.normal(size=(1, 1, 3, 3, 3))
        out = F.conv3d(Tensor(x), Tensor(w)).numpy()
        manual = np.zeros((2, 2, 2))
        for i in range(2):
            for j in range(2):
                for k in range(2):
                    manual[i, j, k] = np.sum(x[0, 0, i : i + 3, j : j + 3, k : k + 3] * w[0, 0])
        np.testing.assert_allclose(out[0, 0], manual, atol=1e-10)

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(3)
        x_data = rng.normal(size=(1, 2, 4, 4, 4))
        w_data = rng.normal(size=(2, 2, 3, 3, 3))
        b_data = rng.normal(size=(2,))
        x, w, b = Tensor(x_data.copy(), requires_grad=True), Tensor(w_data.copy(), requires_grad=True), Tensor(b_data.copy(), requires_grad=True)
        out = F.conv3d(x, w, b, padding=1)
        (out * out).sum().backward()

        def loss_wrt(which):
            def fn(arr):
                xs = {"x": x_data, "w": w_data, "b": b_data}
                xs[which] = arr
                val = F.conv3d(Tensor(xs["x"]), Tensor(xs["w"]), Tensor(xs["b"]), padding=1)
                return float((val * val).sum().data)
            return fn

        np.testing.assert_allclose(w.grad, finite_diff(loss_wrt("w"), w_data.copy()), atol=1e-4, rtol=1e-4)
        np.testing.assert_allclose(b.grad, finite_diff(loss_wrt("b"), b_data.copy()), atol=1e-4, rtol=1e-4)
        np.testing.assert_allclose(x.grad, finite_diff(loss_wrt("x"), x_data.copy()), atol=1e-4, rtol=1e-4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv3d(Tensor(np.zeros((1, 3, 4, 4, 4))), Tensor(np.zeros((2, 4, 3, 3, 3))))

    def test_kernel_too_large_raises(self):
        with pytest.raises(ValueError):
            F.conv3d(Tensor(np.zeros((1, 1, 2, 2, 2))), Tensor(np.zeros((1, 1, 5, 5, 5))))


class TestPooling:
    def test_max_pool_shape_and_values(self):
        x = np.arange(64.0).reshape(1, 1, 4, 4, 4)
        out = F.max_pool3d(Tensor(x), 2)
        assert out.shape == (1, 1, 2, 2, 2)
        assert out.numpy().max() == 63.0

    def test_max_pool_gradient_routes_to_max(self):
        x = Tensor(np.arange(8.0).reshape(1, 1, 2, 2, 2), requires_grad=True)
        F.max_pool3d(x, 2).sum().backward()
        expected = np.zeros((1, 1, 2, 2, 2))
        expected[0, 0, 1, 1, 1] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_pool_window_too_large(self):
        with pytest.raises(ValueError):
            F.max_pool3d(Tensor(np.zeros((1, 1, 1, 1, 1))), 2)

    def test_global_avg_pool(self):
        x = Tensor(np.ones((2, 3, 4, 4, 4)))
        out = F.global_avg_pool3d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.numpy(), 1.0)


class TestNormalizationAndDropout:
    def test_batch_norm_normalizes_training_batch(self):
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(64, 4)))
        gamma, beta = Tensor(np.ones(4), requires_grad=True), Tensor(np.zeros(4), requires_grad=True)
        running_mean, running_var = np.zeros(4), np.ones(4)
        out = F.batch_norm(x, gamma, beta, running_mean, running_var, training=True)
        np.testing.assert_allclose(out.numpy().mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.numpy().std(axis=0), 1.0, atol=1e-2)
        assert np.all(running_mean != 0.0)

    def test_batch_norm_eval_uses_running_stats(self):
        x = Tensor(np.full((8, 2), 4.0))
        out = F.batch_norm(
            x, Tensor(np.ones(2)), Tensor(np.zeros(2)), np.full(2, 4.0), np.ones(2), training=False
        )
        np.testing.assert_allclose(out.numpy(), 0.0, atol=1e-5)

    def test_dropout_statistics_and_eval_identity(self):
        rng = np.random.default_rng(6)
        x = Tensor(np.ones((200, 50)))
        dropped = F.dropout(x, 0.4, training=True, rng=rng)
        keep_fraction = np.mean(dropped.numpy() != 0.0)
        assert abs(keep_fraction - 0.6) < 0.05
        # inverted dropout preserves expectation
        assert abs(dropped.numpy().mean() - 1.0) < 0.05
        same = F.dropout(x, 0.4, training=False)
        assert same is x

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(7).normal(size=(5, 9)))
        out = F.softmax(x, axis=1).numpy()
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)
        assert (out > 0).all()

    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4, 5)))
        assert F.flatten(x).shape == (2, 60)
