"""Tests for Module mechanics, layers, optimizers, losses, schedules and checkpoints."""

import numpy as np
import pytest

from repro.nn import (
    SELU,
    Adadelta,
    Adam,
    AdamW,
    BatchNorm1d,
    Conv3d,
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool3d,
    Module,
    Parameter,
    ReLU,
    RMSprop,
    Residual,
    SGD,
    Sequential,
    Tensor,
    build_optimizer,
    load_checkpoint,
    l1_loss,
    mse_loss,
    save_checkpoint,
)
from repro.nn.layers import make_activation
from repro.nn.loss import huber_loss
from repro.nn.schedules import ConstantLR, ExponentialDecayLR, StepLR


class TinyNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=seed)
        self.act = ReLU()
        self.fc2 = Linear(8, 1, rng=seed + 1)

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x))).reshape(x.shape[0])


class TestModuleMechanics:
    def test_parameter_registration_and_counting(self):
        net = TinyNet()
        names = dict(net.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}
        assert net.num_parameters() == 4 * 8 + 8 + 8 + 1

    def test_state_dict_roundtrip(self):
        net1, net2 = TinyNet(seed=0), TinyNet(seed=42)
        net2.load_state_dict(net1.state_dict())
        for (n1, p1), (_n2, p2) in zip(net1.named_parameters(), net2.named_parameters()):
            np.testing.assert_allclose(p1.data, p2.data, err_msg=n1)

    def test_state_dict_strict_mismatch(self):
        net = TinyNet()
        with pytest.raises(KeyError):
            net.load_state_dict({"bogus": np.zeros(3)})
        with pytest.raises(ValueError):
            net.load_state_dict({**net.state_dict(), "fc1.weight": np.zeros((2, 2))})

    def test_train_eval_mode_propagates(self):
        seq = Sequential(Linear(4, 4), Dropout(0.5), ReLU())
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad(self):
        net = TinyNet()
        out = net(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_sequential_applies_in_order(self):
        seq = Sequential(Linear(3, 3, rng=0), ReLU(), Flatten())
        out = seq(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 3)
        assert len(seq) == 3


class TestLayers:
    def test_linear_shapes_and_errors(self):
        layer = Linear(6, 2, rng=0)
        assert layer(Tensor(np.ones((5, 6)))).shape == (5, 2)
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_conv_pool_layers(self):
        conv = Conv3d(2, 3, 3, padding=1, rng=0)
        pool = MaxPool3d(2)
        out = pool(conv(Tensor(np.ones((1, 2, 4, 4, 4)))))
        assert out.shape == (1, 3, 2, 2, 2)

    def test_activation_factory(self):
        assert isinstance(make_activation("relu"), ReLU)
        assert isinstance(make_activation("lrelu"), LeakyReLU)
        assert isinstance(make_activation("SELU"), SELU)
        with pytest.raises(ValueError):
            make_activation("swish")

    def test_batchnorm1d_running_stats_update(self):
        bn = BatchNorm1d(3)
        bn.train()
        bn(Tensor(np.random.default_rng(0).normal(loc=5.0, size=(32, 3))))
        assert np.all(bn.running_mean != 0.0)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(np.zeros((4, 3))))
        np.testing.assert_allclose(bn.running_mean, before)

    def test_residual_with_projection(self):
        block = Linear(4, 6, rng=1)
        res = Residual(block, in_features=4, out_features=6, rng=2)
        out = res(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 6)

    def test_residual_identity_skip(self):
        res = Residual(Sequential(Linear(4, 4, rng=0)))
        assert res(Tensor(np.ones((2, 4)))).shape == (2, 4)

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestOptimizers:
    def _losses(self, optimizer_cls, steps=150, **kwargs):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 4))
        true_w = np.array([1.0, -2.0, 0.5, 3.0])
        y = x @ true_w
        net = Linear(4, 1, rng=3)
        optimizer = optimizer_cls(net.parameters(), **kwargs)
        initial = None
        for _ in range(steps):
            pred = net(Tensor(x)).reshape(32)
            loss = mse_loss(pred, Tensor(y))
            if initial is None:
                initial = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return initial, loss.item()

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (SGD, {"lr": 0.05, "momentum": 0.9}),
            (Adam, {"lr": 0.05}),
            (AdamW, {"lr": 0.05, "weight_decay": 1e-3}),
            (RMSprop, {"lr": 0.02}),
            (Adadelta, {"lr": 8.0}),
        ],
    )
    def test_optimizers_reduce_loss(self, cls, kwargs):
        initial, final = self._losses(cls, **kwargs)
        # every optimizer must at least halve the loss of this easy linear
        # regression problem; the fast ones essentially solve it
        assert final < 0.5 * initial

    def test_build_optimizer_by_name(self):
        net = TinyNet()
        for name in ("sgd", "adam", "adamw", "rmsprop", "adadelta"):
            assert build_optimizer(name, net.parameters(), lr=0.01) is not None
        with pytest.raises(ValueError):
            build_optimizer("lbfgs", net.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)
        with pytest.raises(ValueError):
            Adam(net.parameters(), lr=-1.0)

    def test_adam_state_roundtrip(self):
        net = TinyNet()
        opt = Adam(net.parameters(), lr=0.01)
        net(Tensor(np.ones((2, 4)))).sum().backward()
        opt.step()
        state = opt.state_dict()
        opt2 = Adam(net.parameters(), lr=0.01)
        opt2.load_state_dict(state)
        assert opt2.step_count == 1


class TestLossesAndSchedules:
    def test_mse_and_l1(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        target = np.array([1.0, 1.0, 5.0])
        assert abs(mse_loss(pred, Tensor(target)).item() - (0 + 1 + 4) / 3) < 1e-12
        assert abs(l1_loss(pred, Tensor(target)).item() - 1.0) < 1e-12

    def test_huber_between_l1_and_l2(self):
        pred = Tensor(np.array([0.0, 0.0]))
        target = Tensor(np.array([0.5, 3.0]))
        value = huber_loss(pred, target).item()
        assert 0.0 < value < mse_loss(pred, target).item() + 1e-9

    def test_schedules(self):
        net = TinyNet()
        opt = Adam(net.parameters(), lr=0.1)
        constant = ConstantLR(opt)
        assert constant.step() == pytest.approx(0.1)
        step = StepLR(Adam(net.parameters(), lr=0.1), step_size=2, gamma=0.5)
        lrs = [step.step() for _ in range(4)]
        assert lrs[-1] == pytest.approx(0.025)
        exp = ExponentialDecayLR(Adam(net.parameters(), lr=0.1), gamma=0.9)
        assert exp.step() == pytest.approx(0.09)


class TestCheckpoints:
    def test_save_and_load_model_and_optimizer(self, tmp_path):
        net = TinyNet(seed=1)
        opt = Adam(net.parameters(), lr=0.01)
        net(Tensor(np.ones((2, 4)))).sum().backward()
        opt.step()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, net, opt, meta={"epoch": 3})
        net2 = TinyNet(seed=9)
        opt2 = Adam(net2.parameters(), lr=0.01)
        meta = load_checkpoint(path, net2, opt2)
        assert meta["epoch"] == 3
        np.testing.assert_allclose(net.fc1.weight.data, net2.fc1.weight.data)
        assert opt2.step_count == 1
