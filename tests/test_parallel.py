"""Process-backend primitives: ProcessTaskPool, metric merging, pickling.

The process backend's correctness story has three legs, each pinned
here:

* the pool itself — one-time payload shipping, task dispatch, error
  propagation, idempotent shutdown;
* the telemetry bridge — worker registries export mergeable state the
  coordinator absorbs exactly (counter adds, exact histogram merges);
* spawn-safety of the shipped state — ``StreamingHistogram`` and
  ``FeatureCache`` pickle by design (locks recreated, cache entries
  deliberately left behind), and ``dock_many`` is bit-identical across
  backends because per-compound seeds derive inside the worker.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.docking.engine import dock_many
from repro.docking.vina import VinaScorer
from repro.featurize.cache import FeatureCache
from repro.parallel import (
    PARALLEL_BACKENDS,
    ProcessTaskPool,
    isolated_registry,
    validate_backend,
)
from repro.telemetry import MetricsRegistry, StreamingHistogram
from repro.telemetry import current as current_telemetry


# --------------------------------------------------------------------------- #
# spawn-safe payloads (module-level: workers import this module by name)
# --------------------------------------------------------------------------- #
class _EchoPayload:
    """Returns (shipped state, task) so tests can see both sides."""

    def __init__(self, tag: str) -> None:
        self.tag = tag

    def run_task(self, task):
        return (self.tag, task)


class _FailingPayload:
    def run_task(self, task):
        raise ValueError(f"task {task!r} rejected on purpose")


class _Unpicklable:
    def __init__(self) -> None:
        self.lock = threading.Lock()

    def run_task(self, task):  # pragma: no cover - never ships
        return task


# --------------------------------------------------------------------------- #
# backend validation
# --------------------------------------------------------------------------- #
class TestValidateBackend:
    def test_accepts_every_registered_backend(self):
        for backend in PARALLEL_BACKENDS:
            assert validate_backend(backend) == backend

    def test_rejects_unknown_backend_naming_the_choices(self):
        with pytest.raises(ValueError, match="'fork'.*thread.*process"):
            validate_backend("fork")


# --------------------------------------------------------------------------- #
# the pool
# --------------------------------------------------------------------------- #
class TestProcessTaskPool:
    def test_tasks_run_against_the_shipped_payload(self):
        with ProcessTaskPool(_EchoPayload("shipped-once"), max_workers=2) as pool:
            assert pool.payload_nbytes > 0
            futures = [pool.submit(i) for i in range(6)]
            results = [f.result() for f in futures]
        assert results == [("shipped-once", i) for i in range(6)]

    def test_worker_exception_propagates_to_the_caller(self):
        with ProcessTaskPool(_FailingPayload(), max_workers=1) as pool:
            with pytest.raises(ValueError, match="rejected on purpose"):
                pool.run("bad-task")
            # the pool survives a failed task
            pool.warm(wait=True)

    def test_unpicklable_payload_fails_fast_in_the_parent(self):
        with pytest.raises(TypeError):
            ProcessTaskPool(_Unpicklable(), max_workers=1)

    def test_close_is_idempotent_and_rejects_further_submits(self):
        pool = ProcessTaskPool(_EchoPayload("x"), max_workers=1)
        assert pool.run("one") == ("x", "one")
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit("two")

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            ProcessTaskPool(_EchoPayload("x"), max_workers=0)


# --------------------------------------------------------------------------- #
# telemetry bridge: export_mergeable / absorb / isolated_registry
# --------------------------------------------------------------------------- #
class TestMetricMerging:
    def test_counters_add_and_gauges_accumulate(self):
        worker = MetricsRegistry()
        worker.counter("work.items").inc(7)
        worker.gauge("work.seconds").add(1.5)
        coordinator = MetricsRegistry()
        coordinator.counter("work.items").inc(3)
        coordinator.absorb(worker.export_mergeable())
        coordinator.absorb(worker.export_mergeable())
        assert coordinator.counter("work.items").value == 3 + 7 + 7
        assert coordinator.gauge("work.seconds").value == pytest.approx(3.0)

    def test_zero_valued_metrics_do_not_materialize_handles(self):
        worker = MetricsRegistry()
        worker.counter("touched.never")
        coordinator = MetricsRegistry()
        coordinator.absorb(worker.export_mergeable())
        assert coordinator.snapshot()["counters"] == {}

    def test_histograms_absorb_bit_exactly_through_pickle(self):
        """The full worker->coordinator round trip: observe in a worker
        registry, pickle the export (as the process boundary does), absorb
        into a fresh registry — bucket counts and quantiles identical to
        observing directly."""
        values = np.abs(np.random.default_rng(5).normal(0.2, 2.0, size=300)) + 1e-6
        worker = MetricsRegistry()
        worker.histogram("shard.seconds", min_value=1e-6, max_value=1e3).observe_many(values)
        direct = StreamingHistogram(min_value=1e-6, max_value=1e3)
        direct.observe_many(values)

        exported = pickle.loads(pickle.dumps(worker.export_mergeable()))
        coordinator = MetricsRegistry()
        coordinator.absorb(exported)
        merged = coordinator.histogram("shard.seconds")
        assert merged.count == direct.count
        assert np.array_equal(merged.bucket_counts(), direct.bucket_counts())
        assert merged.summary() == direct.summary()

    def test_isolated_registry_does_not_leak_into_the_active_bundle(self):
        outer = current_telemetry().registry
        before = outer.counter("parallel.test.leak").value
        with isolated_registry() as registry:
            current_telemetry().registry.counter("parallel.test.leak").inc(5)
            assert registry.counter("parallel.test.leak").value == 5
        assert outer.counter("parallel.test.leak").value == before
        assert current_telemetry().registry is outer


# --------------------------------------------------------------------------- #
# spawn-safety of shipped state
# --------------------------------------------------------------------------- #
class TestPickleContracts:
    def test_streaming_histogram_pickle_round_trip(self):
        histogram = StreamingHistogram(min_value=1e-3, max_value=1e2, growth=1.1)
        histogram.observe_many([0.01, 0.5, 3.0, 80.0])
        clone = pickle.loads(pickle.dumps(histogram))
        assert clone.count == histogram.count
        assert np.array_equal(clone.bucket_counts(), histogram.bucket_counts())
        assert clone.summary() == histogram.summary()
        # the recreated lock is live: the clone keeps observing
        clone.observe(1.0)
        assert clone.count == histogram.count + 1

    def test_feature_cache_ships_configuration_only(self):
        cache = FeatureCache(capacity=3, max_bytes=10**6)
        cache.put("key", np.zeros((2, 2)), {"node_features": np.ones(4)})
        assert cache.get("key") is not None
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.capacity == 3
        assert clone.max_bytes == 10**6
        # entries and the hit/miss ledger stay behind: each worker warms
        # its own cache against its own traffic
        assert len(clone) == 0
        assert clone.stats().lookups == 0
        clone.put("other", np.zeros(2), {"node_features": np.zeros(1)})
        assert "other" in clone


# --------------------------------------------------------------------------- #
# dock_many across backends
# --------------------------------------------------------------------------- #
class TestDockManyBackends:
    def test_thread_and_process_poses_bit_identical(self, protease_site, prepared_ligands):
        pairs = [(ligand.compound_id, ligand.molecule) for ligand in prepared_ligands[:3]]
        kwargs = dict(
            scorer=VinaScorer(),
            seed=11,
            num_poses=2,
            monte_carlo_steps=5,
            restarts=1,
            site_name="protease1",
        )
        by_thread = dock_many(protease_site, pairs, max_workers=2, backend="thread", **kwargs)
        by_process = dock_many(protease_site, pairs, max_workers=2, backend="process", **kwargs)
        assert set(by_thread) == set(by_process)
        for compound_id, poses in by_thread.items():
            others = by_process[compound_id]
            assert [p.pose_id for p in poses] == [p.pose_id for p in others]
            assert np.array_equal(
                np.array([p.score for p in poses]), np.array([p.score for p in others])
            )
            for pose, other in zip(poses, others):
                assert np.array_equal(
                    pose.complex.ligand.coordinates, other.complex.ligand.coordinates
                )

    def test_process_backend_merges_worker_docking_counters(self, protease_site, prepared_ligands):
        from repro.telemetry import Telemetry, activate

        pairs = [(ligand.compound_id, ligand.molecule) for ligand in prepared_ligands[:2]]
        bundle = Telemetry.disabled()
        with activate(bundle):
            dock_many(
                protease_site,
                pairs,
                scorer=VinaScorer(),
                seed=11,
                num_poses=1,
                monte_carlo_steps=3,
                restarts=1,
                site_name="protease1",
                max_workers=2,
                backend="process",
            )
            counters = bundle.registry.snapshot()["counters"]
        assert counters.get("docking.compounds") == len(pairs)
        assert counters.get("docking.kernel_calls", 0) > 0

    def test_rejects_unknown_backend(self, protease_site, prepared_ligands):
        pairs = [(ligand.compound_id, ligand.molecule) for ligand in prepared_ligands[:1]]
        with pytest.raises(ValueError, match="backend"):
            dock_many(protease_site, pairs, scorer=VinaScorer(), seed=1, backend="greenlet")
