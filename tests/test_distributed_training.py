"""Tests for the data-parallel training engine.

Covers the three pillars of the engine: the exact order-invariant
vector reduction (``ExactVectorSum`` / ``allreduce_exact``), the
vectorized flat-graph + fused-optimizer fast path (must agree with the
scalar reference paths), and the rank-invariance golden — final weights
and losses bit-identical (``np.array_equal``, no tolerances) across
ranks 1/2/4 and both execution backends.
"""

import math

import numpy as np
import pytest

from repro.featurize.pipeline import collate_complexes
from repro.hpc.horovod import HorovodContext
from repro.hpc.mpi import run_spmd
from repro.models.config import SGCNNConfig
from repro.models.sgcnn import SGCNN
from repro.models.train import DistributedTrainer, DistributedTrainerConfig
from repro.nn.graph_layers import FlatEdges, FlatGraphBatch, GraphBatch
from repro.nn.layers import Linear
from repro.nn.loss import mse_loss
from repro.nn.optim import SGD, Adadelta, Adam, AdamW, RMSprop
from repro.nn.tensor import Tensor
from repro.telemetry import ExactVectorSum, exact_vector_sum

OPTIMIZERS = [
    (SGD, {"lr": 0.05, "momentum": 0.9, "weight_decay": 1e-3}),
    (Adam, {"lr": 0.05}),
    (AdamW, {"lr": 0.05, "weight_decay": 1e-3}),
    (RMSprop, {"lr": 0.02}),
    (Adadelta, {"lr": 1.0}),
]


# ---------------------------------------------------------------------- #
# Exact vector reduction
# ---------------------------------------------------------------------- #
class TestExactVectorSum:
    def _ill_conditioned(self, rng, shape):
        return rng.normal(size=shape) * 10.0 ** rng.integers(-12, 12, size=shape)

    def test_matches_fsum_elementwise(self):
        rng = np.random.default_rng(0)
        arrays = [self._ill_conditioned(rng, (6,)) for _ in range(40)]
        total = exact_vector_sum(arrays)
        expected = [math.fsum(a[j] for a in arrays) for j in range(6)]
        np.testing.assert_array_equal(total, expected)

    def test_order_and_partition_invariant(self):
        rng = np.random.default_rng(1)
        arrays = [self._ill_conditioned(rng, (5,)) for _ in range(30)]
        reference = exact_vector_sum(arrays)
        for seed in range(5):
            order = np.random.default_rng(seed).permutation(len(arrays))
            assert np.array_equal(exact_vector_sum([arrays[i] for i in order]), reference)
        # any split into shards, merged in any order, is bit-identical
        left, right = ExactVectorSum((5,)), ExactVectorSum((5,))
        for i, array in enumerate(arrays):
            (left if i % 3 == 0 else right).add(array)
        right.merge(left)
        assert np.array_equal(right.value, reference)

    def test_empty_and_shape_checks(self):
        acc = ExactVectorSum((3,))
        assert np.array_equal(acc.value, np.zeros(3))
        with pytest.raises(ValueError):
            acc.add(np.zeros(4))

    def test_allreduce_exact_is_rank_count_invariant(self):
        rng = np.random.default_rng(2)
        partials = [rng.normal(size=4) * 10.0 ** rng.integers(-9, 9, size=4) for _ in range(12)]
        reference = exact_vector_sum(partials)

        def reduce_on(size):
            def worker(ctx):
                mine = [partials[i] for i in range(ctx.rank, len(partials), ctx.size)]
                return HorovodContext(ctx).allreduce_exact(mine, tag="t")

            return run_spmd(worker, size)

        for size in (1, 2, 3, 4):
            for result in reduce_on(size):
                assert np.array_equal(result, reference)


# ---------------------------------------------------------------------- #
# Vectorized fast paths agree with the scalar reference paths
# ---------------------------------------------------------------------- #
class TestFlatGraphPath:
    def test_flat_batch_matches_dense_batch(self, workbench):
        samples = workbench.train_samples[:6]
        dense = collate_complexes(samples)
        flat = collate_complexes(samples, graph_layout="flat")
        batch_dense, batch_flat = dense["graph"], flat["graph"]
        assert isinstance(batch_dense, GraphBatch) and isinstance(batch_flat, FlatGraphBatch)
        assert batch_flat.num_graphs == len(samples)
        np.testing.assert_array_equal(batch_flat.node_features, batch_dense.node_features)
        for edge_type, edges in batch_flat.edges.items():
            assert isinstance(edges, FlatEdges)
            dense_adj = batch_dense.adjacency[edge_type]
            rebuilt = np.zeros_like(dense_adj)
            rebuilt[edges.dst, edges.src] = edges.weight
            np.testing.assert_array_equal(rebuilt, dense_adj)

    def test_model_outputs_and_grads_match_dense(self, workbench):
        samples = workbench.train_samples[:5]
        out = {}
        for layout in ("dense", "flat"):
            model = SGCNN(SGCNNConfig.scaled_down(), seed=3)
            model.eval()  # no dropout: layouts draw different mask streams
            batch = collate_complexes(samples, graph_layout=layout)
            prediction = model(batch)
            (prediction * prediction).sum().backward()
            grads = np.concatenate([p.grad.ravel() for p in model.parameters() if p.grad is not None])
            out[layout] = (prediction.numpy().copy(), grads)
        np.testing.assert_allclose(out["flat"][0], out["dense"][0], rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(out["flat"][1], out["dense"][1], rtol=1e-9, atol=1e-12)

    def test_flat_forward_is_deterministic(self, workbench):
        samples = workbench.train_samples[:4]
        model = SGCNN(SGCNNConfig.scaled_down(), seed=5)
        model.eval()
        batch = collate_complexes(samples, graph_layout="flat")
        first = model(batch).numpy().copy()
        assert np.array_equal(model(batch).numpy(), first)

    def test_invalid_layout_rejected(self, workbench):
        with pytest.raises(ValueError):
            collate_complexes(workbench.train_samples[:2], graph_layout="sparse")


class TestFusedOptimizer:
    @pytest.mark.parametrize("cls,kwargs", OPTIMIZERS)
    def test_fused_step_bitwise_matches_scalar_loop(self, cls, kwargs):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(16, 6))
        y = rng.normal(size=16)
        scalar_net, fused_net = Linear(6, 1, rng=8), Linear(6, 1, rng=8)
        scalar_opt = cls(scalar_net.parameters(), **kwargs)
        fused_opt = cls(fused_net.parameters(), **kwargs)
        pack = fused_opt.fuse()
        for _ in range(7):
            for net, opt in ((scalar_net, scalar_opt), (fused_net, fused_opt)):
                opt.zero_grad()
                mse_loss(net(Tensor(x)).reshape(16), Tensor(y)).backward()
            scalar_opt.step()
            fused_opt.step_fused(pack.grad_vector())
        for p_scalar, p_fused in zip(scalar_net.parameters(), fused_net.parameters()):
            assert np.array_equal(p_scalar.data, p_fused.data)
        assert scalar_opt.step_count == fused_opt.step_count == 7

    @pytest.mark.parametrize("cls,kwargs", OPTIMIZERS)
    def test_state_roundtrip_restores_step_and_moments(self, cls, kwargs):
        net = Linear(4, 2, rng=1)
        opt = cls(net.parameters(), **kwargs)
        x = np.ones((3, 4))
        for _ in range(3):
            opt.zero_grad()
            net(Tensor(x)).sum().backward()
            opt.step()
        state = opt.state_dict()
        assert int(state["step"]) == 3
        fresh = cls(net.parameters(), **kwargs)
        fresh.load_state_dict(state)
        assert fresh.step_count == 3
        for key, value in state.items():
            np.testing.assert_array_equal(fresh.state_dict()[key], value)


# ---------------------------------------------------------------------- #
# Rank-invariance golden
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def golden_runs(workbench):
    """Final weights + losses for every (backend, ranks) cell of the matrix."""
    train = workbench.train_samples[:8]
    val = workbench.val_samples[:4]

    def run(backend, ranks):
        model = SGCNN(SGCNNConfig.scaled_down(), seed=7)
        config = DistributedTrainerConfig(
            epochs=2, chunk_size=2, chunks_per_step=2, learning_rate=2e-3,
            seed=11, ranks=ranks, backend=backend,
        )
        trainer = DistributedTrainer(model, train, val, config=config)
        history = trainer.fit()
        state = trainer.model.state_dict()
        weights = np.concatenate([np.asarray(state[key]).ravel() for key in sorted(state)])
        return weights, np.asarray(history.train_losses), np.asarray(history.val_losses)

    return {
        (backend, ranks): run(backend, ranks)
        for backend in ("thread", "process")
        for ranks in (1, 2, 4)
    }


class TestRankInvarianceGolden:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_bit_identical_to_single_rank_reference(self, golden_runs, backend, ranks):
        ref_weights, ref_train, ref_val = golden_runs[("thread", 1)]
        weights, train_losses, val_losses = golden_runs[(backend, ranks)]
        assert np.array_equal(weights, ref_weights)
        assert np.array_equal(train_losses, ref_train)
        assert np.array_equal(val_losses, ref_val)

    def test_training_actually_happened(self, golden_runs, workbench):
        _weights, train_losses, val_losses = golden_runs[("thread", 1)]
        assert train_losses.shape == (2,) and val_losses.shape == (2,)
        assert np.isfinite(train_losses).all() and np.isfinite(val_losses).all()


class TestDistributedTrainer:
    def test_predicts_after_fit_and_validates_config(self, workbench):
        samples = workbench.train_samples[:6]
        trainer = DistributedTrainer(
            SGCNN(SGCNNConfig.scaled_down(), seed=9),
            samples,
            config=DistributedTrainerConfig(epochs=1, chunk_size=3, chunks_per_step=2, ranks=2),
        )
        history = trainer.fit()
        assert history.epochs_run == 1
        assert np.isnan(history.val_losses[0])  # no validation set
        predictions = trainer.predict(samples)
        assert predictions.shape == (6,) and np.isfinite(predictions).all()
        with pytest.raises(ValueError):
            DistributedTrainerConfig(chunk_size=0)
        with pytest.raises(ValueError):
            DistributedTrainerConfig(ranks=0)
        with pytest.raises(ValueError):
            DistributedTrainerConfig(backend="cuda")
        with pytest.raises(ValueError):
            DistributedTrainer(SGCNN(SGCNNConfig.scaled_down(), seed=9), [])

    def test_matches_scalar_trainer_direction(self, workbench):
        """Distributed SSE/step training reduces loss like the scalar loop."""
        samples = workbench.train_samples[:8]
        trainer = DistributedTrainer(
            SGCNN(SGCNNConfig.scaled_down(), seed=13),
            samples,
            samples,
            config=DistributedTrainerConfig(epochs=4, chunk_size=2, chunks_per_step=4, learning_rate=3e-3, ranks=2),
        )
        history = trainer.fit()
        assert history.val_losses[-1] <= history.val_losses[0] * 1.2
