"""Tests for voxelization, spatial-graph construction and the featurization pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.featurize.atom_features import ATOM_FEATURE_DIM, atom_feature_vector, element_class
from repro.featurize.graph import GraphBuilder, GraphConfig
from repro.featurize.pipeline import ComplexFeaturizer, collate_complexes
from repro.featurize.voxelize import VoxelGridConfig, Voxelizer, random_axis_rotation
from repro.chem.atom import Atom


class TestAtomFeatures:
    def test_vector_layout(self):
        atom = Atom("N", hydrophobic=False, hbond_donor=True, hbond_acceptor=True, partial_charge=-0.3)
        vec = atom_feature_vector(atom, is_ligand=True)
        assert vec.shape == (ATOM_FEATURE_DIM,)
        assert vec[element_class(atom)] == 1.0
        assert vec[-1] == 1.0  # ligand flag
        pocket_vec = atom_feature_vector(atom, is_ligand=False)
        assert pocket_vec[-1] == 0.0

    def test_halogen_class(self):
        assert element_class(Atom("Br")) == element_class(Atom("Cl"))
        assert element_class(Atom("Zn")) == element_class(Atom("Fe"))


class TestVoxelizer:
    def test_output_shape_and_positivity(self, example_complex):
        voxelizer = Voxelizer(VoxelGridConfig(grid_dim=12))
        grid = voxelizer.voxelize(example_complex)
        assert grid.shape == (8, 12, 12, 12)
        assert grid.min() >= 0.0 or VoxelGridConfig().channel_set == "full"
        assert grid.sum() > 0.0

    def test_full_channel_set(self, example_complex):
        voxelizer = Voxelizer(VoxelGridConfig(grid_dim=10, channel_set="full"))
        grid = voxelizer.voxelize(example_complex)
        assert grid.shape[0] == 18

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            Voxelizer(VoxelGridConfig(grid_dim=2))
        with pytest.raises(ValueError):
            VoxelGridConfig(channel_set="weird").channels

    def test_rotation_preserves_total_density_approximately(self, example_complex):
        voxelizer = Voxelizer(VoxelGridConfig(grid_dim=16, resolution=1.5))
        base = voxelizer.voxelize(example_complex).sum()
        rotated = voxelizer.voxelize(
            example_complex, rotation=random_axis_rotation(np.random.default_rng(0), probability=1.0)
        ).sum()
        assert rotated == pytest.approx(base, rel=0.15)

    def test_atom_outside_grid_ignored(self, example_complex):
        tiny = Voxelizer(VoxelGridConfig(grid_dim=4, resolution=0.5))
        grid = tiny.voxelize(example_complex)
        assert np.isfinite(grid).all()

    def test_identity_rotation_matches_unrotated(self, example_complex):
        voxelizer = Voxelizer(VoxelGridConfig(grid_dim=10))
        a = voxelizer.voxelize(example_complex)
        b = voxelizer.voxelize(example_complex, rotation=np.eye(3))
        np.testing.assert_allclose(a, b)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=15, deadline=None)
    def test_random_axis_rotation_always_orthogonal(self, probability):
        rotation = random_axis_rotation(np.random.default_rng(3), probability)
        np.testing.assert_allclose(rotation @ rotation.T, np.eye(3), atol=1e-10)


class TestGraphBuilder:
    def test_graph_structure(self, example_complex):
        builder = GraphBuilder(GraphConfig())
        graph = builder.build(example_complex)
        n_lig = example_complex.ligand.num_atoms
        n_total = graph["node_features"].shape[0]
        assert n_total >= n_lig
        assert graph["ligand_mask"].sum() == n_lig
        assert graph["node_features"].shape[1] == ATOM_FEATURE_DIM
        for etype in ("covalent", "noncovalent"):
            adj = graph["adjacency"][etype]
            assert adj.shape == (n_total, n_total)
            assert np.all(adj >= 0)
            assert np.allclose(np.diag(adj), 0.0)

    def test_pocket_atoms_have_no_covalent_edges(self, example_complex):
        graph = GraphBuilder().build(example_complex)
        n_lig = example_complex.ligand.num_atoms
        cov = graph["adjacency"]["covalent"]
        assert np.all(cov[n_lig:, :] == 0)
        assert np.all(cov[:, n_lig:] == 0)

    def test_row_normalization(self, example_complex):
        graph = GraphBuilder().build(example_complex)
        for adj in graph["adjacency"].values():
            sums = adj.sum(axis=1)
            nonzero = sums > 0
            np.testing.assert_allclose(sums[nonzero], 1.0)

    def test_neighbour_cap(self, example_complex):
        tight = GraphBuilder(GraphConfig(noncovalent_k=2))
        loose = GraphBuilder(GraphConfig(noncovalent_k=8))
        edges_tight = (tight.build(example_complex)["adjacency"]["noncovalent"] > 0).sum()
        edges_loose = (loose.build(example_complex)["adjacency"]["noncovalent"] > 0).sum()
        assert edges_tight <= edges_loose

    def test_pocket_shell_filters_far_atoms(self, example_complex):
        small_shell = GraphBuilder(GraphConfig(pocket_shell=2.0)).build(example_complex)
        big_shell = GraphBuilder(GraphConfig(pocket_shell=10.0)).build(example_complex)
        assert small_shell["node_features"].shape[0] <= big_shell["node_features"].shape[0]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GraphConfig(covalent_threshold=-1.0)
        with pytest.raises(ValueError):
            GraphConfig(noncovalent_k=0)


class TestFeaturizerPipeline:
    def test_featurize_and_collate(self, example_complex):
        featurizer = ComplexFeaturizer(VoxelGridConfig(grid_dim=10))
        samples = featurizer.featurize_many([example_complex, example_complex], targets=[5.0, 6.0])
        batch = collate_complexes(samples)
        assert batch["voxel"].shape[0] == 2
        assert batch["graph"].num_graphs == 2
        np.testing.assert_allclose(batch["target"], [5.0, 6.0])
        assert batch["ids"] == ["testcomplex", "testcomplex"]

    def test_augmentation_only_during_training(self, example_complex):
        featurizer = ComplexFeaturizer(VoxelGridConfig(grid_dim=10), augment=True, rotation_probability=1.0, seed=5)
        eval_a = featurizer.featurize(example_complex, training=False).voxel
        eval_b = featurizer.featurize(example_complex, training=False).voxel
        np.testing.assert_allclose(eval_a, eval_b)
        train = featurizer.featurize(example_complex, training=True).voxel
        assert not np.allclose(train, eval_a)

    def test_graph_not_augmented(self, example_complex):
        featurizer = ComplexFeaturizer(VoxelGridConfig(grid_dim=10), augment=True, rotation_probability=1.0, seed=5)
        g1 = featurizer.featurize(example_complex, training=True).graph
        g2 = featurizer.featurize(example_complex, training=False).graph
        np.testing.assert_allclose(g1["node_features"], g2["node_features"])

    def test_target_length_mismatch(self, example_complex):
        featurizer = ComplexFeaturizer(VoxelGridConfig(grid_dim=10))
        with pytest.raises(ValueError):
            featurizer.featurize_many([example_complex], targets=[1.0, 2.0])

    def test_collate_empty_raises(self):
        with pytest.raises(ValueError):
            collate_complexes([])
