"""Golden-equivalence suite for the batched docking engine.

The scalar ``PoseGenerator`` (per-pose ``compute_terms`` on Python Atom
objects) is the golden reference; the batched kernel and the lockstep
``BatchedMonteCarloDocker`` must reproduce it **bit-identically** —
``np.array_equal`` / ``==`` on every pose coordinate, score and RMSD, no
tolerances — across restart counts, ligand sizes, scorers and the
with/without-reference paths.  Hypothesis property tests pin down the
clustering function's batch-width invariance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.complexes import InteractionModel, ProteinLigandComplex
from repro.docking.conveyorlc import CDT1Receptor, CDT2Ligand, CDT3Docking, CDT4Mmgbsa
from repro.docking.engine import (
    BatchedMonteCarloDocker,
    dock_many,
    make_docker,
    pairwise_rmsd,
    select_pose_indices,
)
from repro.docking.mmgbsa import MMGBSARescorer
from repro.docking.poses import (
    MaximizePkScorer,
    PoseGenerator,
    molecule_with_coordinates,
    rmsd,
)
from repro.docking.vina import VinaScorer


def _posed(ligand, site, offset=(0.0, 0.0, -2.0)):
    return ligand.translate(-ligand.centroid() + site.center + np.asarray(offset))


def _assert_poses_identical(scalar_poses, batched_poses):
    assert len(scalar_poses) == len(batched_poses)
    for a, b in zip(scalar_poses, batched_poses):
        assert a.pose_id == b.pose_id
        assert a.score == b.score
        assert np.array_equal(a.complex.ligand.coordinates, b.complex.ligand.coordinates)
        if np.isnan(a.rmsd_to_reference):
            assert np.isnan(b.rmsd_to_reference)
        else:
            assert a.rmsd_to_reference == b.rmsd_to_reference


# --------------------------------------------------------------------------- #
# kernel equivalence
# --------------------------------------------------------------------------- #
class TestBatchedKernel:
    def test_terms_bit_identical_to_scalar(self, protease_site, prepared_ligands, interaction_model):
        for prepared in prepared_ligands[:3]:
            ligand = _posed(prepared.molecule, protease_site)
            coords = np.stack([ligand.coordinates + 0.17 * i for i in range(4)])
            batch = interaction_model.compute_terms_batch(protease_site, ligand, coords)
            assert len(batch) == 4
            for i in range(4):
                pose = molecule_with_coordinates(ligand, coords[i])
                scalar = interaction_model.compute_terms(
                    ProteinLigandComplex(protease_site, pose, complex_id="k")
                )
                assert scalar == batch.term(i)

    def test_terms_identical_when_no_pairs_within_cutoff(self, protease_site, prepared_ligands, interaction_model):
        """A pose far outside the pocket exercises the empty-scatter path."""
        ligand = _posed(prepared_ligands[0].molecule, protease_site)
        far = ligand.coordinates + np.array([120.0, 0.0, 0.0])
        batch = interaction_model.compute_terms_batch(protease_site, ligand, far[None])
        scalar = interaction_model.compute_terms(
            ProteinLigandComplex(protease_site, molecule_with_coordinates(ligand, far))
        )
        assert scalar == batch.term(0)

    def test_true_pk_batch_matches_scalar(self, protease_site, prepared_ligands, interaction_model):
        ligand = _posed(prepared_ligands[1].molecule, protease_site)
        coords = np.stack([ligand.coordinates - 0.21 * i for i in range(3)])
        batch = interaction_model.true_pk_batch(protease_site, ligand, coords)
        for i in range(3):
            pose = molecule_with_coordinates(ligand, coords[i])
            assert interaction_model.true_pk(ProteinLigandComplex(protease_site, pose)) == batch[i]

    def test_single_pose_promotion_and_validation(self, protease_site, prepared_ligands, interaction_model):
        ligand = _posed(prepared_ligands[0].molecule, protease_site)
        single = interaction_model.compute_terms_batch(protease_site, ligand, ligand.coordinates)
        assert len(single) == 1
        with pytest.raises(ValueError):
            interaction_model.compute_terms_batch(protease_site, ligand, np.zeros((2, 3)))
        with pytest.raises(ValueError):
            interaction_model.compute_terms_batch(
                protease_site, ligand, np.zeros((1, ligand.num_atoms + 1, 3))
            )


class TestBatchedScorers:
    @pytest.mark.parametrize("scorer_factory", [VinaScorer, MMGBSARescorer])
    def test_score_batch_bit_identical(self, scorer_factory, protease_site, prepared_ligands):
        scorer = scorer_factory()
        ligand = _posed(prepared_ligands[0].molecule, protease_site)
        coords = np.stack([ligand.coordinates + 0.29 * i for i in range(5)])
        batch = scorer.score_batch(protease_site, ligand, coords, complex_id="c7", pose_id=2)
        scalar = [
            scorer.score(
                ProteinLigandComplex(
                    protease_site,
                    molecule_with_coordinates(ligand, coords[i]),
                    complex_id="c7",
                    pose_id=2,
                )
            )
            for i in range(5)
        ]
        assert np.array_equal(batch, np.array(scalar))

    @pytest.mark.parametrize("scorer_factory", [VinaScorer, MMGBSARescorer])
    def test_score_many_matches_per_complex_score_exactly(
        self, scorer_factory, sarscov2_sites, prepared_ligands
    ):
        """Regression for the 'Vectorized convenience wrapper' docstring lie:
        score_many now actually batches — and must match score() exactly,
        including across mixed sites, ligands and pose ids."""
        scorer = scorer_factory()
        sites = [sarscov2_sites["protease1"], sarscov2_sites["spike1"]]
        complexes = []
        for index, prepared in enumerate(prepared_ligands):
            site = sites[index % 2]
            complexes.append(
                ProteinLigandComplex(
                    site,
                    _posed(prepared.molecule, site, offset=(0.1 * index, 0.0, -2.0)),
                    complex_id=f"cmp{index}",
                    pose_id=index % 3,
                )
            )
        many = scorer.score_many(complexes)
        scalar = np.array([scorer.score(c) for c in complexes])
        assert np.array_equal(many, scalar)
        assert scorer.score_many([]).shape == (0,)

    def test_score_many_chunked_groups_bit_identical(
        self, monkeypatch, protease_site, prepared_ligands
    ):
        """Chunking a large group (the campaign-scale memory bound) never
        changes a bit: per-pose rows reduce independently."""
        import repro.chem.complexes as complexes_module

        scorer = VinaScorer()
        ligand = _posed(prepared_ligands[0].molecule, protease_site)
        complexes = [
            ProteinLigandComplex(
                protease_site,
                molecule_with_coordinates(ligand, ligand.coordinates + 0.11 * i),
                complex_id=f"c{i}",
            )
            for i in range(7)
        ]
        unchunked = scorer.score_many(complexes)
        monkeypatch.setattr(complexes_module, "GROUPED_TERMS_CHUNK_POSES", 2)
        chunked = VinaScorer().score_many(complexes)
        assert np.array_equal(unchunked, chunked)

    def test_rescore_many_matches_rescore(self, protease_site, prepared_ligands):
        generator = BatchedMonteCarloDocker(VinaScorer(), num_poses=4, monte_carlo_steps=8, restarts=2, seed=3)
        poses = generator.dock(protease_site, prepared_ligands[0].molecule, complex_id="c")
        rescorer = MMGBSARescorer()
        assert rescorer.rescore_many(poses) == rescorer.rescore(poses)
        assert rescorer.rescore_many(poses, max_poses=2) == rescorer.rescore(poses, max_poses=2)

    def test_systematic_error_memoized(self, example_complex):
        vina = VinaScorer()
        first = vina.score(example_complex)
        assert (example_complex.complex_id, example_complex.pose_id) in vina._error_cache
        assert vina.score(example_complex) == first


# --------------------------------------------------------------------------- #
# docker equivalence
# --------------------------------------------------------------------------- #
class TestDockerGoldenEquivalence:
    @pytest.mark.parametrize("restarts", [1, 4, 8])
    def test_bit_identical_across_restarts(self, restarts, protease_site, prepared_ligands):
        scorer = VinaScorer()
        kwargs = dict(num_poses=6, monte_carlo_steps=10, restarts=restarts, seed=11)
        ligand = prepared_ligands[0].molecule
        scalar = PoseGenerator(scorer, **kwargs).dock(protease_site, ligand, complex_id="c")
        batched = BatchedMonteCarloDocker(scorer, **kwargs).dock(protease_site, ligand, complex_id="c")
        _assert_poses_identical(scalar, batched)

    def test_bit_identical_across_ligand_sizes(self, protease_site, prepared_ligands):
        scorer = VinaScorer()
        kwargs = dict(num_poses=4, monte_carlo_steps=8, restarts=3, seed=5)
        sizes = set()
        for prepared in prepared_ligands:
            ligand = prepared.molecule
            sizes.add(ligand.num_atoms)
            scalar = PoseGenerator(scorer, **kwargs).dock(protease_site, ligand, complex_id="c")
            batched = BatchedMonteCarloDocker(scorer, **kwargs).dock(protease_site, ligand, complex_id="c")
            _assert_poses_identical(scalar, batched)
        assert len(sizes) > 1, "fixture should cover multiple ligand sizes"

    @pytest.mark.parametrize("with_reference", [True, False])
    def test_bit_identical_with_and_without_reference(
        self, with_reference, protease_site, prepared_ligands
    ):
        scorer = VinaScorer()
        ligand = prepared_ligands[1].molecule
        reference = _posed(ligand, protease_site) if with_reference else None
        kwargs = dict(num_poses=5, monte_carlo_steps=12, restarts=2, seed=17)
        scalar = PoseGenerator(scorer, **kwargs).dock(
            protease_site, ligand, complex_id="c", reference=reference
        )
        batched = BatchedMonteCarloDocker(scorer, **kwargs).dock(
            protease_site, ligand, complex_id="c", reference=reference
        )
        _assert_poses_identical(scalar, batched)
        if with_reference:
            assert all(np.isfinite(p.rmsd_to_reference) for p in batched)

    @pytest.mark.parametrize(
        "scorer_factory",
        [VinaScorer, MMGBSARescorer, lambda: MaximizePkScorer(InteractionModel())],
    )
    def test_bit_identical_across_scorers(self, scorer_factory, protease_site, prepared_ligands):
        scorer = scorer_factory()
        kwargs = dict(num_poses=4, monte_carlo_steps=10, restarts=2, seed=23)
        ligand = prepared_ligands[2].molecule
        scalar = PoseGenerator(scorer, **kwargs).dock(protease_site, ligand, complex_id="c")
        batched = BatchedMonteCarloDocker(scorer, **kwargs).dock(protease_site, ligand, complex_id="c")
        _assert_poses_identical(scalar, batched)

    def test_scalar_scorer_fallback_path(self, protease_site, prepared_ligands):
        """A scorer without score_batch still docks lockstep, bit-identically."""

        class ScalarOnly:
            def __init__(self):
                self._vina = VinaScorer()

            def score(self, complex_):
                return self._vina.score(complex_)

        kwargs = dict(num_poses=3, monte_carlo_steps=6, restarts=2, seed=31)
        ligand = prepared_ligands[0].molecule
        scalar = PoseGenerator(ScalarOnly(), **kwargs).dock(protease_site, ligand, complex_id="c")
        batched = BatchedMonteCarloDocker(ScalarOnly(), **kwargs).dock(protease_site, ligand, complex_id="c")
        _assert_poses_identical(scalar, batched)

    def test_restart_chains_independent_of_batch_width(self, protease_site, prepared_ligands):
        """Chain r of a width-R run equals chain r of any wider run: the
        per-restart stream protocol decouples trajectories from batch width."""
        scorer = VinaScorer()
        ligand = prepared_ligands[0].molecule
        chains = {}
        for restarts in (1, 2, 6):
            docker = BatchedMonteCarloDocker(
                scorer, num_poses=4, monte_carlo_steps=8, restarts=restarts, seed=13
            )
            chains[restarts] = docker.run_chains(protease_site, ligand, complex_id="c")
        for narrow, wide in ((1, 2), (2, 6), (1, 6)):
            scores_n, coords_n = chains[narrow]
            scores_w, coords_w = chains[wide]
            assert np.array_equal(scores_n, scores_w[: len(scores_n)])
            assert np.array_equal(coords_n, coords_w[: len(coords_n)])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BatchedMonteCarloDocker(VinaScorer(), num_poses=0)
        with pytest.raises(ValueError):
            BatchedMonteCarloDocker(VinaScorer(), restarts=0)
        with pytest.raises(ValueError):
            PoseGenerator(VinaScorer(), monte_carlo_steps=-1)
        with pytest.raises(ValueError):
            make_docker("nope", VinaScorer())


# --------------------------------------------------------------------------- #
# clustering properties
# --------------------------------------------------------------------------- #
def _reference_selection(scores, coords, num_poses, min_separation):
    """Nested-loop greedy selection mirroring the scalar docker's clustering."""
    order = sorted(range(len(scores)), key=lambda i: scores[i])
    selected: list[int] = []
    for index in order:
        if len(selected) >= num_poses:
            break
        ok = True
        for kept in selected:
            diff = coords[index] - coords[kept]
            if float(np.sqrt((diff**2).sum(axis=1).mean())) < min_separation:
                ok = False
                break
        if ok:
            selected.append(index)
    return selected


@st.composite
def _candidate_sets(draw):
    num = draw(st.integers(min_value=1, max_value=10))
    atoms = draw(st.integers(min_value=2, max_value=6))
    # coarse integer-derived coordinates and few distinct score values force
    # both RMSD-threshold collisions and score ties (stable-order territory)
    coords = draw(
        st.lists(
            st.lists(
                st.tuples(*[st.integers(min_value=-3, max_value=3)] * 3),
                min_size=atoms,
                max_size=atoms,
            ),
            min_size=num,
            max_size=num,
        )
    )
    scores = draw(st.lists(st.sampled_from([-3.0, -1.5, 0.0, 0.5]), min_size=num, max_size=num))
    return np.asarray(scores), np.asarray(coords, dtype=np.float64) * 0.4


class TestClusteringProperties:
    @given(_candidate_sets(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_matrix_selection_matches_nested_loop_reference(self, candidates, num_poses):
        scores, coords = candidates
        matrix = pairwise_rmsd(coords)
        fast = select_pose_indices(scores, matrix, num_poses, min_separation=0.75)
        assert fast == _reference_selection(scores, coords, num_poses, min_separation=0.75)

    @given(_candidate_sets(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_selection_invariant_to_batch_width(self, candidates, splits):
        """Computing the RMSD matrix over any candidate-order-preserving
        partition (then reassembling) never changes the selected poses —
        clustering depends only on the ordered candidate list."""
        scores, coords = candidates
        num = len(scores)
        matrix = pairwise_rmsd(coords)
        rebuilt = np.empty_like(matrix)
        bounds = np.linspace(0, num, splits + 1, dtype=int)
        for a_start, a_end in zip(bounds[:-1], bounds[1:]):
            for b_start, b_end in zip(bounds[:-1], bounds[1:]):
                if a_end > a_start and b_end > b_start:
                    block = coords[a_start:a_end][:, None] - coords[b_start:b_end][None, :]
                    rebuilt[a_start:a_end, b_start:b_end] = np.sqrt(
                        (block**2).sum(axis=-1).mean(axis=-1)
                    )
        assert np.array_equal(rebuilt, matrix)
        assert select_pose_indices(scores, rebuilt, 4, 0.75) == select_pose_indices(
            scores, matrix, 4, 0.75
        )

    def test_pairwise_rmsd_matches_molecule_rmsd(self, protease_site, prepared_ligands):
        ligand = prepared_ligands[0].molecule
        coords = np.stack([ligand.coordinates + 0.5 * i for i in range(4)])
        matrix = pairwise_rmsd(coords)
        for i in range(4):
            for j in range(4):
                a = molecule_with_coordinates(ligand, coords[i])
                b = molecule_with_coordinates(ligand, coords[j])
                assert matrix[i, j] == rmsd(a, b)


# --------------------------------------------------------------------------- #
# dock_many and the ConveyorLC / runtime wiring
# --------------------------------------------------------------------------- #
class TestDockMany:
    def test_invariant_to_pool_width_and_engine(self, protease_site, prepared_ligands):
        pairs = [(p.compound_id, p.molecule) for p in prepared_ligands[:4]]
        kwargs = dict(scorer=VinaScorer(), seed=9, num_poses=3, monte_carlo_steps=6, restarts=2)
        serial = dock_many(protease_site, pairs, max_workers=1, **kwargs)
        pooled = dock_many(protease_site, pairs, max_workers=4, **kwargs)
        scalar = dock_many(protease_site, pairs, max_workers=2, engine="scalar", **kwargs)
        assert list(serial) == [cid for cid, _ in pairs]
        for compound_id in serial:
            _assert_poses_identical(serial[compound_id], pooled[compound_id])
            _assert_poses_identical(serial[compound_id], scalar[compound_id])

    def test_references_recorded(self, protease_site, prepared_ligands):
        compound_id = prepared_ligands[0].compound_id
        ligand = prepared_ligands[0].molecule
        poses = dock_many(
            protease_site,
            [(compound_id, ligand)],
            scorer=VinaScorer(),
            seed=2,
            num_poses=2,
            monte_carlo_steps=5,
            restarts=1,
            references={compound_id: _posed(ligand, protease_site)},
        )[compound_id]
        assert all(np.isfinite(p.rmsd_to_reference) for p in poses)


class TestConveyorEngineEquivalence:
    def test_cdt3_cdt4_engines_bit_identical(self, sarscov2_sites, molecules):
        sites = [sarscov2_sites["protease1"], sarscov2_sites["spike1"]]
        receptors = CDT1Receptor().run(sites)
        ligands = CDT2Ligand().run(molecules[:3], library="t")
        site_map = {name: record.site for name, record in receptors.items()}
        databases = {}
        for engine in ("batched", "scalar"):
            docking = CDT3Docking(num_poses=3, monte_carlo_steps=6, restarts=2, seed=0, engine=engine)
            database = docking.run(receptors, ligands)
            CDT4Mmgbsa(max_poses=2, engine=engine).run(database, site_map)
            databases[engine] = database
        batched, scalar = databases["batched"].records(), databases["scalar"].records()
        assert len(batched) == len(scalar) > 0
        for a, b in zip(batched, scalar):
            assert a.key == b.key
            assert a.vina_score == b.vina_score
            assert np.array_equal(a.pose.coordinates, b.pose.coordinates)
            if np.isnan(a.mmgbsa_score):
                assert np.isnan(b.mmgbsa_score)
            else:
                assert a.mmgbsa_score == b.mmgbsa_score

    def test_cdt3_pooled_workers_bit_identical(self, sarscov2_sites, molecules):
        receptors = CDT1Receptor().run([sarscov2_sites["protease1"]])
        ligands = CDT2Ligand().run(molecules[:3], library="t")
        serial = CDT3Docking(num_poses=2, monte_carlo_steps=5, restarts=2, seed=4).run(receptors, ligands)
        pooled = CDT3Docking(
            num_poses=2, monte_carlo_steps=5, restarts=2, seed=4, max_workers=3
        ).run(receptors, ligands)
        assert len(serial) == len(pooled)
        for a, b in zip(serial.records(), pooled.records()):
            assert a.key == b.key and a.vina_score == b.vina_score
            assert np.array_equal(a.pose.coordinates, b.pose.coordinates)

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            CDT3Docking(engine="nope")
        with pytest.raises(ValueError):
            CDT3Docking(max_workers=0)
        with pytest.raises(ValueError):
            CDT4Mmgbsa(engine="nope")
