"""Tests for the campaign planner, the grid/Bayesian HPO baselines and PDB structure I/O."""

import numpy as np
import pytest

from repro.chem.structure_io import complex_to_pdb, molecule_to_pdb, pdb_to_molecule
from repro.hpo.baselines import BayesianOptimizer, GridSearch
from repro.hpo.space import Boolean, Choice, SearchSpace, Uniform
from repro.screening.planner import CampaignPlanner


class TestCampaignPlanner:
    def test_paper_scale_plan_arithmetic(self):
        planner = CampaignPlanner(cluster_nodes=500)
        plan = planner.plan(num_compounds=500_000_000, num_targets=4, poses_per_compound=10, poses_per_job=2_000_000)
        # "over 5 billion docking poses were generated and evaluated"
        assert plan.total_poses == 20_000_000_000
        assert plan.total_poses > 5_000_000_000
        assert plan.num_jobs == 10_000
        assert plan.nodes_per_job == 4
        summary = planner.paper_campaign_summary()
        assert summary["total_poses_billions"] == pytest.approx(20.0)
        assert summary["single_job_hours"] == pytest.approx(5.1, abs=0.6)
        assert summary["peak_poses_per_second"] > 10_000

    def test_schedule_sampled_jobs_and_projection(self):
        planner = CampaignPlanner(cluster_nodes=64)
        plan = planner.plan(num_compounds=2_000_000, num_targets=2, poses_per_compound=5, poses_per_job=500_000)
        result = planner.schedule(plan, max_jobs_simulated=12, seed=1)
        assert result.jobs_scheduled == 12
        assert result.jobs_completed == 12  # requeueing recovers failures
        assert result.wall_clock_hours > 0
        assert result.scaling_factor == pytest.approx(plan.num_jobs / 12)
        assert result.projected_wall_clock_hours >= result.wall_clock_hours
        assert result.projected_node_hours >= result.node_hours

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignPlanner(cluster_nodes=0)
        planner = CampaignPlanner(cluster_nodes=8)
        with pytest.raises(ValueError):
            planner.plan(num_compounds=0)
        with pytest.raises(ValueError):
            planner.schedule(planner.plan(num_compounds=10, poses_per_job=5), max_jobs_simulated=0)


class TestGridSearch:
    def _space(self):
        space = SearchSpace()
        space.add(Uniform("x", 0.001, 1.0))
        space.add(Choice("mode", ("a", "b")))
        space.add(Boolean("flag"))
        return space

    def test_grid_size_and_coverage(self):
        search = GridSearch(self._space(), points_per_dimension=3)
        grid = search.grid()
        assert len(grid) == 3 * 2 * 2
        assert {g["mode"] for g in grid} == {"a", "b"}

    def test_run_finds_best_grid_point(self):
        search = GridSearch(self._space(), points_per_dimension=5)
        best = search.run(lambda cfg: (cfg["x"] - 0.5) ** 2 + (0.0 if cfg["mode"] == "a" else 1.0))
        assert best.config["mode"] == "a"
        assert abs(best.config["x"] - 0.5) < 0.26
        assert len(search.trials) == 5 * 2 * 2

    def test_log_dimension_grid(self):
        space = SearchSpace().add(Uniform("lr", 1e-6, 1e-2, log=True))
        grid = GridSearch(space, points_per_dimension=5).grid()
        values = sorted(g["lr"] for g in grid)
        assert values[0] == pytest.approx(1e-6)
        assert values[-1] == pytest.approx(1e-2)
        # log spacing: constant ratio between consecutive points
        ratios = [values[i + 1] / values[i] for i in range(4)]
        assert max(ratios) / min(ratios) < 1.01

    def test_validation(self):
        with pytest.raises(ValueError):
            GridSearch(self._space(), points_per_dimension=1)


class TestBayesianOptimizer:
    def test_optimizes_smooth_objective(self):
        space = SearchSpace().add(Uniform("x", 0.001, 1.0)).add(Uniform("y", 0.001, 1.0))
        optimizer = BayesianOptimizer(space, num_initial=4, num_iterations=10, seed=0)
        best = optimizer.run(lambda cfg: (cfg["x"] - 0.7) ** 2 + (cfg["y"] - 0.2) ** 2)
        assert best.best_score < 0.15
        assert len(optimizer.trials) == 14

    def test_handles_categorical_only_space(self):
        space = SearchSpace().add(Choice("mode", ("a", "b", "c")))
        optimizer = BayesianOptimizer(space, num_initial=2, num_iterations=4, seed=1)
        best = optimizer.run(lambda cfg: {"a": 3.0, "b": 1.0, "c": 2.0}[cfg["mode"]])
        assert best.best_score <= 2.0

    def test_validation(self):
        space = SearchSpace().add(Uniform("x", 0.0 + 1e-6, 1.0))
        with pytest.raises(ValueError):
            BayesianOptimizer(space, num_initial=0)


class TestStructureIO:
    def test_molecule_roundtrip(self, prepared_ligands):
        molecule = prepared_ligands[0].molecule
        text = molecule_to_pdb(molecule)
        assert text.count("HETATM") == molecule.num_atoms
        assert text.count("CONECT") == molecule.num_bonds
        parsed = pdb_to_molecule(text, name="roundtrip")
        assert parsed.num_atoms == molecule.num_atoms
        assert parsed.num_bonds == molecule.num_bonds
        np.testing.assert_allclose(parsed.coordinates, molecule.coordinates, atol=1e-3)
        assert [a.element for a in parsed.atoms] == [a.element for a in molecule.atoms]

    def test_complex_export_contains_both_chains(self, example_complex):
        text = complex_to_pdb(example_complex, title="demo")
        assert text.startswith("TITLE")
        assert " P" in text and " L" in text
        assert "POC" in text and "LIG" in text
        assert text.rstrip().endswith("END")
        # pocket atoms use ATOM records, ligand uses HETATM
        assert "ATOM" in text and "HETATM" in text

    def test_pocket_atom_count_matches(self, example_complex):
        text = complex_to_pdb(example_complex)
        atom_lines = [l for l in text.splitlines() if l.startswith(("ATOM", "HETATM"))]
        assert len(atom_lines) == example_complex.site.num_atoms + example_complex.ligand.num_atoms
