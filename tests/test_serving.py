"""Tests for the online scoring service (repro.serving)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.chem.complexes import ProteinLigandComplex
from repro.featurize.pipeline import collate_complexes
from repro.nn.tensor import no_grad
from repro.serving import (
    H5CacheAdapter,
    MicroBatcher,
    Overloaded,
    ResultCache,
    ScoringService,
    ServingConfig,
    content_key,
    model_fingerprint,
)
from repro.serving.requests import ScoreRequest


@pytest.fixture(scope="module")
def traffic(campaign):
    """Docked poses of one campaign site, as online request complexes."""
    site_name = campaign.database.sites()[0]
    site = campaign.sites[site_name]
    records = [r for r in campaign.database.records() if r.site_name == site_name][:12]
    assert records
    return [
        ProteinLigandComplex(site, r.pose, complex_id=r.compound_id, pose_id=r.pose_id)
        for r in records
    ]


# --------------------------------------------------------------------- #
# result cache
# --------------------------------------------------------------------- #
def test_cache_hit_miss_and_lru_eviction():
    cache = ResultCache(capacity=3)
    assert cache.get("a") is None  # miss
    cache.put("a", 1.0)
    cache.put("b", 2.0)
    cache.put("c", 3.0)
    assert cache.get("a") == 1.0  # hit refreshes recency: order is now b, c, a
    cache.put("d", 4.0)  # evicts LRU entry "b"
    assert cache.get("b") is None
    assert cache.get("c") == 3.0
    assert cache.get("d") == 4.0
    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.size == 3
    assert stats.hits == 3 and stats.misses == 2
    assert stats.hit_rate == pytest.approx(3 / 5)


def test_cache_h5store_roundtrip(tmp_path):
    cache = ResultCache(capacity=8)
    for index in range(5):
        cache.put(f"key{index}", float(index))
    adapter = H5CacheAdapter()
    store = adapter.save(cache)
    path = tmp_path / "cache.npz"
    store.save(path)

    from repro.hpc.h5store import H5Store

    warmed = ResultCache(capacity=8)
    loaded = H5CacheAdapter(H5Store.load(path)).load(warmed)
    assert loaded == 5
    assert warmed.items() == cache.items()


def test_cache_thread_safety_under_contention():
    cache = ResultCache(capacity=64)

    def worker(seed: int) -> None:
        for i in range(200):
            cache.put(f"k{(seed * 7 + i) % 100}", float(i))
            cache.get(f"k{i % 100}")

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(cache) <= 64


# --------------------------------------------------------------------- #
# micro-batcher
# --------------------------------------------------------------------- #
def test_batcher_coalesces_up_to_max_batch_size():
    batcher = MicroBatcher(max_batch_size=4, max_wait_s=5.0, capacity=16)
    for item in range(4):
        assert batcher.put(item)
    batch = batcher.next_batch()  # size trigger: returns without waiting 5 s
    assert list(batch.items) == [0, 1, 2, 3]


def test_batcher_flushes_partial_batch_after_max_wait():
    batcher = MicroBatcher(max_batch_size=64, max_wait_s=0.05, capacity=64)
    batcher.put("only")
    start = time.perf_counter()
    batch = batcher.next_batch()
    waited = time.perf_counter() - start
    assert list(batch.items) == ["only"]
    assert batch.oldest_wait_s >= 0.05
    assert waited < 2.0  # deadline-triggered, not size-triggered


def test_batcher_close_drains_then_returns_none():
    batcher = MicroBatcher(max_batch_size=4, max_wait_s=10.0, capacity=16)
    batcher.put("x")
    batcher.close()
    batch = batcher.next_batch()  # close releases the under-full batch
    assert list(batch.items) == ["x"]
    assert batcher.next_batch() is None
    with pytest.raises(Exception):
        batcher.put("y")


# --------------------------------------------------------------------- #
# content addressing
# --------------------------------------------------------------------- #
def test_content_key_is_deterministic_and_discriminating(workbench, traffic):
    fp = model_fingerprint(workbench.coherent_fusion)
    assert fp == model_fingerprint(workbench.coherent_fusion)
    key0 = content_key(traffic[0], fp)
    assert key0 == content_key(traffic[0], fp)
    assert key0 != content_key(traffic[1], fp)  # different pose
    fp_other = model_fingerprint(workbench.mid_fusion)  # different weights
    assert fp != fp_other
    assert key0 != content_key(traffic[0], fp_other)


# --------------------------------------------------------------------- #
# backpressure
# --------------------------------------------------------------------- #
class _SlowBackend:
    """Deterministically slow backend to hold requests in flight."""

    name = "slow-stub"

    def __init__(self, delay_s: float = 0.25) -> None:
        self.delay_s = delay_s

    def fingerprint(self) -> str:
        return "slow-stub-fingerprint"

    def score_batch(self, batch: dict) -> np.ndarray:
        time.sleep(self.delay_s)
        return np.zeros(len(batch["ids"]), dtype=np.float64)


def test_backpressure_rejects_when_queue_full(workbench, traffic):
    config = ServingConfig(
        max_batch_size=1, max_wait_s=0.0, num_replicas=1, queue_capacity=2, cache_enabled=False
    )
    service = ScoringService(
        backend=_SlowBackend(), featurizer=workbench.featurizer, config=config
    ).start()
    try:
        admitted = [service.submit(traffic[0]), service.submit(traffic[1])]
        with pytest.raises(Overloaded):
            service.submit(traffic[2])
        snap = service.snapshot()
        assert snap.rejected == 1
        for handle in admitted:
            assert handle.result(timeout=30.0).score == 0.0
        # capacity freed: the previously rejected request is admitted now
        assert service.submit(traffic[2]).result(timeout=30.0).score == 0.0
    finally:
        service.close()


# --------------------------------------------------------------------- #
# end-to-end service behaviour
# --------------------------------------------------------------------- #
def test_service_scores_bit_identical_to_direct_forward(workbench, traffic):
    batch_size = 4
    config = ServingConfig(max_batch_size=batch_size, num_replicas=2, queue_capacity=64)
    with ScoringService(
        model=workbench.coherent_fusion, featurizer=workbench.featurizer, config=config
    ) as service:
        responses = service.score_many(traffic)
        online = [service.submit(ScoreRequest(complex_=c, key=f"nocache-{i}")).result(timeout=60.0)
                  for i, c in enumerate(traffic)]

    samples = [workbench.featurizer.featurize(c) for c in traffic]
    direct: list[float] = []
    for begin in range(0, len(samples), batch_size):
        batch = collate_complexes(samples[begin : begin + batch_size])
        with no_grad():
            direct.extend(float(v) for v in workbench.coherent_fusion(batch).numpy())

    # the bulk path partitions into the same deterministic chunks as the
    # direct loop above, so the scores are bit-identical
    assert [r.score for r in responses] == direct
    # the online path coalesces on arrival timing, so batch boundaries (and
    # therefore the graph segment-sum orderings) may differ by the last ulp
    np.testing.assert_allclose([r.score for r in online], direct, rtol=1e-12, atol=1e-12)


def test_warm_cache_repeat_hit_rate(workbench, traffic):
    config = ServingConfig(max_batch_size=4, num_replicas=2, queue_capacity=64)
    with ScoringService(
        model=workbench.coherent_fusion, featurizer=workbench.featurizer, config=config
    ) as service:
        cold = service.score_many(traffic)
        assert not any(r.cached for r in cold)
        service.metrics.reset()
        warm = [service.submit(c).result(timeout=60.0) for c in traffic]
        snap = service.snapshot()
    assert all(r.cached for r in warm)
    assert snap.cache_hit_rate >= 0.99
    assert [r.score for r in warm] == [r.score for r in cold]


def test_service_drain_and_metrics(workbench, traffic):
    config = ServingConfig(max_batch_size=4, max_wait_s=0.01, num_replicas=2, queue_capacity=64)
    service = ScoringService(
        model=workbench.coherent_fusion, featurizer=workbench.featurizer, config=config
    ).start()
    handles = [service.submit(c) for c in traffic]
    assert service.drain(timeout=60.0)
    assert all(h.done for h in handles)
    snap = service.snapshot()
    assert snap.completed == len(traffic)
    assert snap.requests_per_second > 0
    assert snap.latency_p99_ms >= snap.latency_p50_ms >= 0
    assert 0 < snap.mean_batch_size <= config.max_batch_size
    service.close()
    with pytest.raises(RuntimeError):
        service.submit(traffic[0])
    with pytest.raises(RuntimeError):
        service.start()  # closed services cannot be restarted


def test_campaign_routed_through_serving_matches_job_path(workbench):
    from repro.screening.costfunction import CompoundCostFunction
    from repro.screening.pipeline import CampaignConfig, ScreeningCampaign

    library_counts = {"emolecules": 6}
    base = dict(
        library_counts=library_counts, poses_per_compound=2,
        compounds_tested_per_site=4, seed=7, nodes_per_job=2, gpus_per_node=2,
    )
    jobs_campaign = ScreeningCampaign(
        model=workbench.coherent_fusion,
        featurizer=workbench.featurizer,
        config=CampaignConfig(**base),
        cost_function=CompoundCostFunction(),
        interaction_model=workbench.interaction_model,
    ).run()
    serving_campaign = ScreeningCampaign(
        model=workbench.coherent_fusion,
        featurizer=workbench.featurizer,
        config=CampaignConfig(**base, use_serving=True,
                              serving=ServingConfig(max_batch_size=8, num_replicas=2)),
        cost_function=CompoundCostFunction(),
        interaction_model=workbench.interaction_model,
    ).run()

    jobs_predictions: dict = {}
    for result in jobs_campaign.job_results:
        for (cid, pid), score in result.predictions.items():
            jobs_predictions[(result.site_name, cid, pid)] = score
    serving_predictions: dict = {}
    for result in serving_campaign.job_results:
        for (cid, pid), score in result.predictions.items():
            serving_predictions[(result.site_name, cid, pid)] = score

    assert serving_predictions.keys() == jobs_predictions.keys()
    for key, score in serving_predictions.items():
        # job ranks and the service batch differently, so agreement is up
        # to floating-point associativity, not bitwise
        assert score == pytest.approx(jobs_predictions[key], rel=1e-9, abs=1e-9), key
    # downstream selection is therefore identical as well
    assert {s: [c.compound_id for c in v] for s, v in serving_campaign.selections.items()} == {
        s: [c.compound_id for c in v] for s, v in jobs_campaign.selections.items()
    }


# --------------------------------------------------------------------- #
# replica-pool lifecycle and the process scoring backend
# --------------------------------------------------------------------- #
class _CountingBackend:
    """Minimal in-thread ScoringBackend for pool lifecycle tests."""

    name = "counting"

    def fingerprint(self) -> str:
        return "counting"

    def score_batch(self, batch) -> np.ndarray:
        return np.zeros(1)


class TestReplicaPoolLifecycle:
    @staticmethod
    def _drain(pool, expected, timeout=10.0):
        deadline = time.time() + timeout
        while sum(pool.completed_batches()) < expected:
            assert time.time() < deadline, pool.completed_batches()
            time.sleep(0.005)

    def test_close_then_start_restarts_with_fresh_replicas(self):
        """Regression: restart used to re-start() the finished worker
        threads — ``RuntimeError: threads can only be started once`` —
        and left every replica marked closed."""
        from repro.serving import ReplicaPool

        pool = ReplicaPool([_CountingBackend(), _CountingBackend()])
        pool.start()
        for _ in range(4):
            pool.submit(lambda i, b: b.score_batch(None))
        pool.close()
        assert sum(pool.completed_batches()) == 4

        pool.start()
        # fresh replicas: per-replica counters restart from zero
        assert pool.completed_batches() == [0, 0]
        for _ in range(3):
            pool.submit(lambda i, b: b.score_batch(None))
        self._drain(pool, 3)
        pool.close()
        assert sum(pool.completed_batches()) == 3

    def test_start_is_idempotent_while_running(self):
        from repro.serving import ReplicaPool

        pool = ReplicaPool([_CountingBackend()])
        pool.start()
        pool.start()
        pool.submit(lambda i, b: None)
        self._drain(pool, 1)
        pool.close()

    def test_submit_requires_start(self):
        from repro.serving import ReplicaPool

        pool = ReplicaPool([_CountingBackend()])
        with pytest.raises(RuntimeError, match="before start"):
            pool.submit(lambda i, b: None)
        pool.start()
        pool.close()
        with pytest.raises(RuntimeError, match="before start"):
            pool.submit(lambda i, b: None)


class TestProcessModelBackend:
    def test_scores_and_fingerprint_match_module_backend(self, workbench, traffic):
        from repro.serving import ModuleBackend, ProcessModelBackend

        samples = [workbench.featurizer.featurize(c) for c in traffic[:4]]
        batch = collate_complexes(samples)
        reference = ModuleBackend(workbench.coherent_fusion)
        backend = ProcessModelBackend(workbench.coherent_fusion)
        try:
            assert backend.fingerprint() == reference.fingerprint()
            scores = backend.score_batch(batch)
            # close + rescore: the next call spawns a fresh worker process
            backend.close()
            again = backend.score_batch(batch)
        finally:
            backend.close()
        direct = reference.score_batch(batch)
        assert np.array_equal(scores, direct)
        assert np.array_equal(again, direct)

    def test_service_process_backend_bit_identical_to_thread(self, workbench, traffic):
        kwargs = dict(max_batch_size=4, num_replicas=2, queue_capacity=64)
        with ScoringService(
            model=workbench.coherent_fusion, featurizer=workbench.featurizer,
            config=ServingConfig(**kwargs),
        ) as service:
            by_thread = [r.score for r in service.score_many(traffic)]
        with ScoringService(
            model=workbench.coherent_fusion, featurizer=workbench.featurizer,
            config=ServingConfig(backend="process", **kwargs),
        ) as service:
            by_process = [r.score for r in service.score_many(traffic)]
            snapshot = service.snapshot()
        # the bulk path partitions deterministically, so the process
        # replicas see the exact batches the thread replicas saw
        assert by_process == by_thread
        assert snapshot.completed == snapshot.submitted
        assert snapshot.failed == 0

    def test_process_backend_requires_a_model(self, workbench):
        with pytest.raises(ValueError, match="requires model="):
            ScoringService(
                backend=_CountingBackend(), featurizer=workbench.featurizer,
                config=ServingConfig(backend="process"),
            )
