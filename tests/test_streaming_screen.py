"""Streaming screening: golden shard/determinism suite, properties, stress.

The golden suite (tier-1) pins the streaming engine's determinism
contract bit-for-bit (``np.array_equal``, no tolerances):

* top-K ids, scores and summary statistics are identical across
  ``shard_size`` ∈ {1, 7, 64}, ``workers`` ∈ {1, 4} and ``backend`` ∈
  {thread, process} (spawned worker processes, :mod:`repro.parallel`);
* the streaming campaign path reproduces the materialized
  :class:`ScreeningCampaign` path exactly (records, selections,
  structural pK, assays) when both score fusion with the shared batch-1
  protocol;
* a run killed mid-stream resumes from shard checkpoints without
  rescoring finished shards, bit-identical to an uninterrupted run.

Regenerating goldens: there are no committed golden files here — the
suite is self-referential (every configuration must agree with every
other), so a deliberate numerical change to prep/docking/featurization/
models needs no regeneration step in this file; the cross-path campaign
test inherits any regeneration done for ``tests/data/golden_fusion_scores.json``.
"""

from __future__ import annotations

import math
import os
import random
import subprocess
import sys
import time
import types

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chem.protein import make_sarscov2_targets
from repro.datasets.libraries import build_screening_deck, make_streaming_library
from repro.hpc.faults import FaultInjector
from repro.runtime import CheckpointStore, RetryPolicy
from repro.screening.partition import shard_bounds
from repro.screening.pipeline import CampaignConfig, ScreeningCampaign
from repro.screening.stream import (
    ExactSum,
    ShardOutcome,
    StreamConfig,
    StreamingScreen,
    StreamingStats,
    StreamShardError,
    TopKSelector,
    topk_by_full_sort,
)
from repro.utils.rng import derive_seed

SEED = 41
SITE_NAMES = ("protease1", "protease2")


# --------------------------------------------------------------------------- #
# fixtures: one tiny deck, streamed under many configurations
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def stream_sites():
    sites = make_sarscov2_targets(seed=derive_seed(SEED, "targets"))
    return {name: sites[name] for name in SITE_NAMES}


@pytest.fixture(scope="module")
def stream_deck():
    return build_screening_deck({"emolecules": 5, "zinc_world_approved": 4}, seed=SEED)


def make_stream_config(shard_size=7, workers=1, fusion_batch_size=1, **overrides):
    defaults = dict(
        shard_size=shard_size,
        workers=workers,
        top_k=5,
        fusion_batch_size=fusion_batch_size,
        poses_per_compound=2,
        docking_mc_steps=8,
        docking_restarts=1,
        seed=SEED,
    )
    defaults.update(overrides)
    return StreamConfig(**defaults)


def run_stream(workbench, sites, deck, config, **kwargs):
    engine = StreamingScreen(workbench.coherent_fusion, workbench.featurizer, sites, config, **kwargs)
    return engine.run(deck.molecules)


@pytest.fixture(scope="module")
def stream_matrix(workbench, stream_sites, stream_deck):
    """The golden matrix: every (shard_size, workers, backend) cell on one deck."""
    return {
        (shard, workers, backend): run_stream(
            workbench,
            stream_sites,
            stream_deck,
            make_stream_config(shard_size=shard, workers=workers, backend=backend),
        )
        for shard in (1, 7, 64)
        for workers in (1, 4)
        for backend in ("thread", "process")
    }


CAMPAIGN_KWARGS = dict(
    library_counts={"emolecules": 5, "zinc_world_approved": 4},
    poses_per_compound=2,
    docking_mc_steps=8,
    docking_restarts=1,
    compounds_tested_per_site=4,
    seed=SEED,
    # the shared fusion batch protocol: single-rank jobs scoring one pose
    # per NN batch, the composition both paths can reproduce exactly
    nodes_per_job=1,
    gpus_per_node=1,
    batch_size_per_rank=1,
)


@pytest.fixture(scope="module")
def materialized_campaign(workbench, stream_sites):
    config = CampaignConfig(sites=stream_sites, **CAMPAIGN_KWARGS)
    return ScreeningCampaign(workbench.coherent_fusion, workbench.featurizer, config).run()


@pytest.fixture(scope="module")
def streaming_campaign(workbench, stream_sites):
    config = CampaignConfig(
        sites=stream_sites, streaming=True, shard_size=4, top_k=5, fusion_batch_size=1, **CAMPAIGN_KWARGS
    )
    return ScreeningCampaign(workbench.coherent_fusion, workbench.featurizer, config).run()


# --------------------------------------------------------------------------- #
# golden shard-invariance suite (tier-1)
# --------------------------------------------------------------------------- #
@pytest.mark.tier1
class TestGoldenShardInvariance:
    def test_topk_bit_identical_across_shard_sizes_and_workers(self, stream_matrix, stream_sites):
        reference = stream_matrix[(1, 1, "thread")]
        for cell, result in stream_matrix.items():
            for site in stream_sites:
                ref_ids, ref_scores = reference.topk_arrays(site)
                ids, scores = result.topk_arrays(site)
                assert np.array_equal(ids, ref_ids), (cell, site)
                assert np.array_equal(scores, ref_scores), (cell, site)

    def test_stats_bit_identical_across_shard_sizes_and_workers(self, stream_matrix, stream_sites):
        reference = stream_matrix[(1, 1, "thread")]
        for cell, result in stream_matrix.items():
            for site in stream_sites:
                assert np.array_equal(
                    result.stats[site].as_array(), reference.stats[site].as_array()
                ), (cell, site)

    def test_every_compound_streamed_exactly_once(self, stream_matrix, stream_deck):
        for result in stream_matrix.values():
            assert result.num_compounds == len(stream_deck)
            assert result.shards_failed == 0
            assert result.shards_submitted == result.num_shards

    def test_per_compound_batching_is_also_invariant(self, workbench, stream_sites, stream_deck):
        """fusion_batch_size=0 (one batch per compound) is a different batch
        protocol — scores may differ from batch-1 at ulp level — but it must
        be exactly as shard/worker-invariant."""
        a = run_stream(workbench, stream_sites, stream_deck, make_stream_config(7, 4, fusion_batch_size=0))
        b = run_stream(workbench, stream_sites, stream_deck, make_stream_config(64, 1, fusion_batch_size=0))
        for site in stream_sites:
            assert np.array_equal(a.topk_arrays(site)[0], b.topk_arrays(site)[0])
            assert np.array_equal(a.topk_arrays(site)[1], b.topk_arrays(site)[1])
            assert np.array_equal(a.stats[site].as_array(), b.stats[site].as_array())

    def test_streaming_campaign_matches_materialized_campaign(
        self, materialized_campaign, streaming_campaign, stream_sites
    ):
        mat, st = materialized_campaign, streaming_campaign
        mat_records = {r.key: r for r in mat.database.records()}
        st_records = {r.key: r for r in st.database.records()}
        assert set(mat_records) == set(st_records)
        for key, mrec in mat_records.items():
            srec = st_records[key]
            assert mrec.vina_score == srec.vina_score, key
            assert np.array_equal(
                np.array([mrec.mmgbsa_score]), np.array([srec.mmgbsa_score]), equal_nan=True
            ), key
            assert mrec.fusion_pk == srec.fusion_pk, key
        for site in stream_sites:
            assert [s.compound_id for s in mat.selections[site]] == [
                s.compound_id for s in st.selections[site]
            ]
            assert [s.combined for s in mat.selections[site]] == [s.combined for s in st.selections[site]]
        assert mat.structural_pk == st.structural_pk
        for site in stream_sites:
            for score in mat.selections[site]:
                assert mat.assays.inhibition_of(site, score.compound_id) == st.assays.inhibition_of(
                    site, score.compound_id
                )

    def test_streaming_topk_equals_full_sort_of_materialized_database(
        self, materialized_campaign, streaming_campaign, stream_sites
    ):
        assert streaming_campaign.topk is not None
        for site in stream_sites:
            best = {
                cid: materialized_campaign.database.best_pose(site, cid, by="fusion").fusion_pk
                for cid in materialized_campaign.database.compounds(site)
            }
            reference = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
            got = [(entry.compound_id, entry.score) for entry in streaming_campaign.topk[site]]
            assert got == reference

    def test_kill_mid_shard_then_resume_is_bit_identical(
        self, workbench, stream_sites, stream_deck, tmp_path, stream_matrix
    ):
        config = make_stream_config(shard_size=2, workers=2)
        store = CheckpointStore(tmp_path / "stream-ckpt")
        killed = StreamingScreen(
            workbench.coherent_fusion, workbench.featurizer, stream_sites, config,
            checkpoints=store, checkpoint_salt="golden",
        ).run(stream_deck.molecules, stop_after_shards=3)
        assert killed.aborted and killed.shards_executed == 3

        resumed_engine = StreamingScreen(
            workbench.coherent_fusion, workbench.featurizer, stream_sites, config,
            checkpoints=store, checkpoint_salt="golden",
        )
        resumed = resumed_engine.run(stream_deck.molecules)
        # finished shards restore instead of rescoring
        assert resumed.shards_restored == 3
        assert resumed.shards_executed == resumed.num_shards - 3
        reference = stream_matrix[(1, 1, "thread")]
        for site in stream_sites:
            assert np.array_equal(resumed.topk_arrays(site)[0], reference.topk_arrays(site)[0])
            assert np.array_equal(resumed.topk_arrays(site)[1], reference.topk_arrays(site)[1])
            assert np.array_equal(resumed.stats[site].as_array(), reference.stats[site].as_array())

    def test_stale_checkpoint_salt_misses(self, workbench, stream_sites, stream_deck, tmp_path):
        config = make_stream_config(shard_size=4)
        store = CheckpointStore(tmp_path / "stream-ckpt")
        StreamingScreen(
            workbench.coherent_fusion, workbench.featurizer, stream_sites, config,
            checkpoints=store, checkpoint_salt="config-A",
        ).run(stream_deck.molecules)
        changed = StreamingScreen(
            workbench.coherent_fusion, workbench.featurizer, stream_sites, config,
            checkpoints=store, checkpoint_salt="config-B",
        ).run(stream_deck.molecules)
        assert changed.shards_restored == 0

    def test_changed_stream_config_misses_without_salt_change(
        self, workbench, stream_sites, stream_deck, tmp_path
    ):
        """The shard key itself carries the content-shaping config knobs, so a
        direct API user rerunning with a different seed or docking budget can
        never restore stale shards — while retuning workers (which cannot
        change shard composition) keeps every checkpoint warm."""
        store = CheckpointStore(tmp_path / "stream-ckpt")
        run = lambda cfg: StreamingScreen(
            workbench.coherent_fusion, workbench.featurizer, stream_sites, cfg,
            checkpoints=store, checkpoint_salt="same-salt",
        ).run(stream_deck.molecules)
        baseline = run(make_stream_config(shard_size=4))
        assert baseline.shards_restored == 0
        retuned = run(make_stream_config(shard_size=4, workers=4))
        assert retuned.shards_restored == retuned.num_shards
        # each stale config misses (and re-executes, clobbering the store
        # under the same shard names — one payload per name, like stages)
        for stale in (
            make_stream_config(shard_size=4, seed=SEED + 1),
            make_stream_config(shard_size=4, docking_mc_steps=9),
            make_stream_config(shard_size=4, fusion_batch_size=0),
        ):
            assert run(stale).shards_restored == 0


# --------------------------------------------------------------------------- #
# process backend (standalone tier-1 subset: cheap enough for CI to run
# on its own as the "streaming goldens under backend='process'" gate)
# --------------------------------------------------------------------------- #
@pytest.mark.tier1
class TestProcessBackend:
    def test_process_backend_bit_identical_to_thread(self, workbench, stream_sites, stream_deck):
        by_thread = run_stream(
            workbench, stream_sites, stream_deck, make_stream_config(shard_size=4, workers=2)
        )
        by_process = run_stream(
            workbench, stream_sites, stream_deck,
            make_stream_config(shard_size=4, workers=2, backend="process"),
        )
        assert by_process.num_compounds == len(stream_deck)
        for site in stream_sites:
            assert np.array_equal(by_process.topk_arrays(site)[0], by_thread.topk_arrays(site)[0])
            assert np.array_equal(by_process.topk_arrays(site)[1], by_thread.topk_arrays(site)[1])
            assert np.array_equal(
                by_process.stats[site].as_array(), by_thread.stats[site].as_array()
            )

    def test_worker_process_metrics_are_absorbed(self, workbench, stream_sites, stream_deck):
        """Shard workers run in spawned processes, yet the coordinator's
        registry ends up with the same docking counters the thread backend
        records in-process — the export/absorb bridge at work."""
        from repro.telemetry import Telemetry, activate

        counters = {}
        for backend in ("thread", "process"):
            bundle = Telemetry.disabled()
            with activate(bundle):
                run_stream(
                    workbench, stream_sites, stream_deck,
                    make_stream_config(shard_size=4, workers=2, backend=backend),
                )
            snapshot = bundle.registry.snapshot()["counters"]
            counters[backend] = {k: v for k, v in snapshot.items() if k.startswith("docking.")}
        assert counters["process"] == counters["thread"]
        assert counters["process"]["docking.compounds"] == len(stream_deck) * len(stream_sites)

    def test_process_backend_rejects_a_serving_route(self, workbench, stream_sites):
        with pytest.raises(ValueError, match="cannot score through a ScoringService"):
            StreamingScreen(
                workbench.coherent_fusion,
                workbench.featurizer,
                stream_sites,
                make_stream_config(backend="process"),
                service=object(),
            )

    def test_validate_streaming_rejects_serving_with_process_backend(self):
        config = CampaignConfig(streaming=True, use_serving=True, backend="process")
        with pytest.raises(ValueError, match="use_serving"):
            config.validate_streaming()

    def test_unknown_backend_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_stream_config(backend="fork")

    def test_seeded_worker_kill_mid_stream_recovers_bit_identical(
        self, workbench, stream_sites, stream_deck
    ):
        """Chaos acceptance: a seeded SIGKILL lands inside one shard worker
        mid-stream; the supervised pool respawns the process, re-runs the
        lost shard, and the run completes bit-identical to an unfaulted
        thread-backend run — with the recovery visible in telemetry."""
        from repro.telemetry import Telemetry, activate

        clean = run_stream(
            workbench, stream_sites, stream_deck, make_stream_config(shard_size=4, workers=2)
        )
        num_shards = len(shard_bounds(len(stream_deck), 4))
        names = [f"stream-shard-{index:06d}" for index in range(num_shards)]
        injector = FaultInjector(seed=SEED)
        killer = injector.plan_process_kills(names, count=1, at_attempt=1)
        assert killer.names and injector.injected  # the kill really is planned

        bundle = Telemetry.disabled()
        with activate(bundle):
            faulted = run_stream(
                workbench, stream_sites, stream_deck,
                make_stream_config(shard_size=4, workers=2, backend="process"),
                process_killer=killer,
            )
        counters = bundle.registry.snapshot()["counters"]
        assert counters.get("supervision.respawns", 0) >= 1
        assert counters.get("supervision.redispatches", 0) >= 1
        assert faulted.num_compounds == len(stream_deck)
        for site in stream_sites:
            assert np.array_equal(faulted.topk_arrays(site)[0], clean.topk_arrays(site)[0])
            assert np.array_equal(faulted.topk_arrays(site)[1], clean.topk_arrays(site)[1])
            assert np.array_equal(faulted.stats[site].as_array(), clean.stats[site].as_array())

    def test_process_campaign_matches_thread_campaign(
        self, workbench, stream_sites, streaming_campaign
    ):
        """The full streaming campaign under backend='process' reproduces the
        thread-backend campaign bit for bit — selections, structural pK,
        top-K and assays."""
        config = CampaignConfig(
            sites=stream_sites, streaming=True, shard_size=4, top_k=5,
            fusion_batch_size=1, backend="process", **CAMPAIGN_KWARGS,
        )
        by_process = ScreeningCampaign(
            workbench.coherent_fusion, workbench.featurizer, config
        ).run()
        by_thread = streaming_campaign
        assert {r.key for r in by_process.database.records()} == {
            r.key for r in by_thread.database.records()
        }
        for site in stream_sites:
            assert [s.compound_id for s in by_process.selections[site]] == [
                s.compound_id for s in by_thread.selections[site]
            ]
            assert [s.combined for s in by_process.selections[site]] == [
                s.combined for s in by_thread.selections[site]
            ]
            assert [(e.compound_id, e.score) for e in by_process.topk[site]] == [
                (e.compound_id, e.score) for e in by_thread.topk[site]
            ]
        assert by_process.structural_pk == by_thread.structural_pk


# --------------------------------------------------------------------------- #
# serving route
# --------------------------------------------------------------------------- #
class TestServingRoute:
    def test_serving_route_bit_identical_with_backpressure(self, workbench, stream_sites, stream_deck):
        from repro.serving import ScoringService, ServingConfig

        config = make_stream_config(shard_size=4, workers=2, fusion_batch_size=0)
        direct = run_stream(workbench, stream_sites, stream_deck, config)
        # a deliberately tiny admission window so chunks must wait for
        # capacity; scores must not change, only pacing
        service = ScoringService(
            model=workbench.coherent_fusion,
            featurizer=workbench.featurizer,
            config=ServingConfig(max_batch_size=2, queue_capacity=2, cache_enabled=False),
        ).start()
        try:
            served = StreamingScreen(
                None, workbench.featurizer, stream_sites, config, service=service
            ).run(stream_deck.molecules)
        finally:
            service.close()
        for site in stream_sites:
            assert np.array_equal(served.topk_arrays(site)[0], direct.topk_arrays(site)[0])
            assert np.array_equal(served.topk_arrays(site)[1], direct.topk_arrays(site)[1])
        snapshot = service.snapshot()
        assert snapshot.completed == snapshot.submitted
        assert snapshot.failed == 0


# --------------------------------------------------------------------------- #
# concurrency stress: injected worker faults
# --------------------------------------------------------------------------- #
class TestConcurrencyStress:
    def test_retries_converge_to_fault_free_result(self, workbench, stream_sites, stream_deck):
        config = make_stream_config(
            shard_size=1, workers=4, retry=RetryPolicy(max_retries=6, backoff_s=0.0)
        )
        clean = run_stream(workbench, stream_sites, stream_deck, make_stream_config(shard_size=1, workers=4))
        faulty = run_stream(
            workbench, stream_sites, stream_deck, config,
            fault_injector=FaultInjector.uniform(0.3, seed=7),
        )
        assert faulty.total_retries > 0
        assert faulty.shards_failed == 0
        assert faulty.shards_submitted == faulty.shards_executed + faulty.shards_restored
        for site in stream_sites:
            # retried shards are folded exactly once: bit-identical to clean
            assert np.array_equal(faulty.topk_arrays(site)[0], clean.topk_arrays(site)[0])
            assert np.array_equal(faulty.topk_arrays(site)[1], clean.topk_arrays(site)[1])
            assert np.array_equal(faulty.stats[site].as_array(), clean.stats[site].as_array())
            ids = faulty.topk_arrays(site)[0]
            assert len(set(ids.tolist())) == len(ids)

    def test_exhausted_retries_skip_policy_accounting(self, workbench, stream_sites, stream_deck):
        config = make_stream_config(
            shard_size=1, workers=3,
            retry=RetryPolicy(max_retries=0), on_shard_failure="skip",
        )
        result = run_stream(
            workbench, stream_sites, stream_deck, config,
            fault_injector=FaultInjector.uniform(0.5, seed=3),
        )
        assert result.shards_failed > 0
        assert result.shards_submitted == (
            result.shards_executed + result.shards_restored + result.shards_failed
        )
        assert result.shards_submitted == result.num_shards
        # failed shards contribute nothing: stats count the completed
        # compounds only, and no compound appears twice
        completed_compounds = result.shards_executed  # shard_size=1
        for site in stream_sites:
            assert result.stats[site].count == completed_compounds
            ids = result.topk_arrays(site)[0]
            assert len(set(ids.tolist())) == len(ids)

    def test_raise_policy_propagates_after_folding_completed_shards(
        self, workbench, stream_sites, stream_deck, tmp_path
    ):
        store = CheckpointStore(tmp_path / "faulty-ckpt")
        config = make_stream_config(
            shard_size=1, workers=2, retry=RetryPolicy(max_retries=0), on_shard_failure="raise",
        )
        with pytest.raises(StreamShardError):
            StreamingScreen(
                workbench.coherent_fusion, workbench.featurizer, stream_sites, config,
                checkpoints=store, checkpoint_salt="fault",
                fault_injector=FaultInjector.uniform(0.5, seed=3),
            ).run(stream_deck.molecules)
        # completed shards were checkpointed before the failure propagated,
        # so the fault-free re-run restores them instead of rescoring
        resumed = StreamingScreen(
            workbench.coherent_fusion, workbench.featurizer, stream_sites, config,
            checkpoints=store, checkpoint_salt="fault",
        ).run(stream_deck.molecules)
        assert resumed.shards_restored > 0
        assert resumed.shards_failed == 0


# --------------------------------------------------------------------------- #
# import order
# --------------------------------------------------------------------------- #
class TestImportOrder:
    @pytest.mark.parametrize(
        "first_import",
        ["repro.runtime", "repro.screening", "repro.screening.stream"],
    )
    def test_package_imports_standalone(self, first_import):
        """Regression: an eager stream re-export in repro.screening/__init__
        made `import repro.runtime` (whose executor imports screening.job)
        fail as a *first* import with a partially-initialized-module error;
        the conftest's own imports masked it in the suite."""
        result = subprocess.run(
            [sys.executable, "-c", f"import {first_import}; import repro.screening; repro.screening.StreamingScreen"],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert result.returncode == 0, result.stderr


# --------------------------------------------------------------------------- #
# reorder-window scheduling
# --------------------------------------------------------------------------- #
class _SyntheticShardEngine(StreamingScreen):
    """The real scheduler/fold loop over an instant synthetic shard stage."""

    def __init__(self, sites, config):
        super().__init__(model=object(), featurizer=None, sites=sites, config=config)

    def _execute_shard(self, index, start, stop, source):
        # uneven shard durations force out-of-order completion, steals
        # and far-ahead results parked at the admission gate
        time.sleep((index % 7) * 0.0003)
        best_scores = {
            name: [(f"SYN-{i:05d}", math.sin(i * 0.7) + site_i) for i in range(start, stop)]
            for site_i, name in enumerate(self.sites)
        }
        return ShardOutcome(
            index=index, start=start, stop=stop, status="executed",
            best_scores=best_scores, num_compounds=stop - start,
        )


class TestReorderWindow:
    def test_many_shards_fold_exactly_without_deadlock(self, stream_sites):
        """Regression: a slot-counting reorder window deadlocked once fast
        workers filled every slot with far-ahead (stolen) results that could
        not fold until the frontier shard ran — while the frontier shard's
        worker starved waiting for a slot.  Index-based admission keeps the
        frontier shard admissible by construction."""
        total = 300
        config = make_stream_config(shard_size=1, workers=4, top_k=25)
        result = _SyntheticShardEngine(stream_sites, config).run(
            [types.SimpleNamespace(name=f"SYN-{i:05d}") for i in range(total)]
        )
        assert result.num_compounds == total
        assert result.shards_executed == result.num_shards == total
        offers = [(f"SYN-{i:05d}", math.sin(i * 0.7)) for i in range(total)]
        site = sorted(stream_sites)[0]
        assert result.top_k[site] == topk_by_full_sort(offers, 25)
        assert result.stats[site].count == total


# --------------------------------------------------------------------------- #
# campaign-level resume through the runtime
# --------------------------------------------------------------------------- #
class TestStreamingCampaignRuntime:
    def test_faulted_campaign_resumes_at_shard_granularity(self, workbench, stream_sites, tmp_path):
        from repro.runtime import CampaignRuntime, RuntimeConfig, StageFailure

        config = CampaignConfig(
            sites=stream_sites, streaming=True, shard_size=1, top_k=5, fusion_batch_size=1,
            **CAMPAIGN_KWARGS,
        )
        campaign = ScreeningCampaign(workbench.coherent_fusion, workbench.featurizer, config)
        # seed 5: shards 0-1 draw no fault, shard 2 does — so at least two
        # shards deterministically fold (and checkpoint) before the failure
        # propagates, regardless of worker scheduling
        faulty = campaign.runtime(
            RuntimeConfig(
                checkpoint_dir=str(tmp_path / "ckpt"),
                retry=RetryPolicy(max_retries=0),
                fault_injector=FaultInjector.uniform(0.5, seed=5),
                max_workers=2,
            )
        )
        with pytest.raises(StageFailure):
            faulty.run()
        report = faulty.report.stage("streamed_screen")
        folded = report.extra["stream"]["shards_executed"]
        assert folded > 0  # partial progress was persisted
        # the kept failure report carries the fault history, like every
        # other stage's does
        assert report.attempts > 0 and report.faults

        resumed = campaign.runtime(
            RuntimeConfig(checkpoint_dir=str(tmp_path / "ckpt"), max_workers=2)
        )
        result = resumed.run()
        assert result is not None
        stream_report = resumed.report.stage("streamed_screen").extra["stream"]
        assert stream_report["shards_restored"] == folded
        assert stream_report["shards_executed"] == stream_report["num_shards"] - folded
        # a third run restores the whole stage without touching shards
        third = campaign.runtime(RuntimeConfig(checkpoint_dir=str(tmp_path / "ckpt"), max_workers=2))
        third.run()
        assert third.report.stage("streamed_screen").restored

    def test_streamed_store_layout_roundtrips(self, streaming_campaign, stream_sites):
        from repro.screening.output import read_predictions, read_topk

        assert len(streaming_campaign.job_results) == len(stream_sites)
        for job in streaming_campaign.job_results:
            stored = read_predictions(job.store, job.site_name)
            assert stored.keys() == job.predictions.keys()
            ids, scores = read_topk(job.store, job.site_name)
            entries = streaming_campaign.topk[job.site_name]
            assert ids == [e.compound_id for e in entries]
            assert np.array_equal(scores, np.array([e.score for e in entries]))
            stats = streaming_campaign.stream_stats[job.site_name]
            assert job.store.attrs(f"topk/{job.site_name}")["count"] == stats["count"]

    def test_streaming_requires_full_mmgbsa_subset(self, workbench, stream_sites):
        config = CampaignConfig(
            sites=stream_sites, streaming=True, mmgbsa_subset_fraction=0.5, **CAMPAIGN_KWARGS
        )
        with pytest.raises(ValueError, match="subset_fraction"):
            ScreeningCampaign(workbench.coherent_fusion, workbench.featurizer, config).runtime()


# --------------------------------------------------------------------------- #
# streaming library
# --------------------------------------------------------------------------- #
class TestStreamingLibrary:
    def test_per_index_generation_is_slice_invariant(self):
        library = make_streaming_library("enamine", size=1_000_000, seed=9)
        assert len(library) == 1_000_000
        window = library.generate_range(500_000, 500_003)
        assert [m.name for m in window] == [library.compound_name(i) for i in range(500_000, 500_003)]
        for offset, molecule in enumerate(window):
            alone = library.compound(500_000 + offset)
            assert np.array_equal(molecule.coordinates, alone.coordinates)

    def test_bounds_and_errors(self):
        library = make_streaming_library("emolecules", size=10, seed=1)
        clipped, full = library.generate_range(8, 99), library.generate_range(8, 10)
        assert [m.name for m in clipped] == [m.name for m in full]
        assert all(np.array_equal(a.coordinates, b.coordinates) for a, b in zip(clipped, full))
        with pytest.raises(IndexError):
            library.compound(10)
        with pytest.raises(KeyError):
            make_streaming_library("nope", size=5)

    def test_streaming_screen_accepts_lazy_library(self, workbench, stream_sites):
        library = make_streaming_library("enamine", size=5, seed=SEED)
        config = make_stream_config(shard_size=2, workers=2, fusion_batch_size=0)
        result = StreamingScreen(
            workbench.coherent_fusion, workbench.featurizer, stream_sites, config
        ).run(library)
        assert result.num_compounds == 5
        assert result.num_shards == 3


# --------------------------------------------------------------------------- #
# hypothesis: top-K selector vs full-sort reference
# --------------------------------------------------------------------------- #
scores_strategy = st.one_of(
    st.floats(min_value=-100, max_value=100),
    st.sampled_from([0.0, -0.0, 1.5, 1.5, math.inf, -math.inf, math.nan]),
)
offers_strategy = st.lists(
    st.tuples(st.sampled_from([f"CMP-{i}" for i in range(12)]), scores_strategy), max_size=60
)


class TestTopKSelectorProperties:
    @given(offers=offers_strategy, k=st.integers(min_value=0, max_value=70))
    @settings(max_examples=120, deadline=None)
    def test_matches_full_sort_reference(self, offers, k):
        selector = TopKSelector(k)
        for compound_id, score in offers:
            selector.offer(compound_id, score)
        assert selector.ranking() == topk_by_full_sort(offers, k)

    @given(offers=offers_strategy, k=st.integers(min_value=0, max_value=20), seed=st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_offer_order_is_irrelevant(self, offers, k, seed):
        shuffled = list(offers)
        random.Random(seed).shuffle(shuffled)
        a, b = TopKSelector(k), TopKSelector(k)
        for compound_id, score in offers:
            a.offer(compound_id, score)
        for compound_id, score in shuffled:
            b.offer(compound_id, score)
        assert a.ranking() == b.ranking()

    @given(offers=offers_strategy)
    @settings(max_examples=40, deadline=None)
    def test_k_at_least_stream_length_keeps_every_compound(self, offers):
        k = len(offers) + 3
        selector = TopKSelector(k)
        for compound_id, score in offers:
            selector.offer(compound_id, score)
        finite_ids = {cid for cid, s in offers if not math.isnan(s)}
        assert {entry.compound_id for entry in selector.ranking()} == finite_ids

    @given(offers=offers_strategy, k=st.integers(min_value=1, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_no_duplicates_and_deterministic_tie_order(self, offers, k):
        selector = TopKSelector(k)
        for compound_id, score in offers:
            selector.offer(compound_id, score)
        ranking = selector.ranking()
        ids = [entry.compound_id for entry in ranking]
        assert len(set(ids)) == len(ids)
        keys = [(-entry.score, entry.compound_id) for entry in ranking]
        assert keys == sorted(keys)

    def test_nan_policies(self):
        dropping = TopKSelector(3)
        assert not dropping.offer("a", math.nan)
        assert dropping.nan_dropped == 1
        with pytest.raises(ValueError):
            TopKSelector(3, nan_policy="raise").offer("a", math.nan)
        with pytest.raises(ValueError):
            TopKSelector(-1)
        with pytest.raises(ValueError):
            TopKSelector(3, nan_policy="whatever")

    def test_threshold_tracks_kth_member(self):
        selector = TopKSelector(2)
        assert selector.threshold() == -math.inf
        selector.offer("a", 1.0)
        selector.offer("b", 5.0)
        assert selector.threshold() == 1.0
        selector.offer("c", 3.0)
        assert selector.threshold() == 3.0
        assert len(selector) == 2


# --------------------------------------------------------------------------- #
# hypothesis: shard partitioning
# --------------------------------------------------------------------------- #
class TestShardPartitionProperties:
    @given(total=st.integers(min_value=0, max_value=500), shard_size=st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_every_compound_in_exactly_one_shard(self, total, shard_size):
        bounds = shard_bounds(total, shard_size)
        indices = [i for start, stop in bounds for i in range(start, stop)]
        assert indices == list(range(total))
        assert all(1 <= stop - start <= shard_size for start, stop in bounds)

    @given(
        total=st.integers(min_value=0, max_value=300),
        size_a=st.integers(min_value=1, max_value=50),
        size_b=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_coverage_is_shard_size_independent(self, total, size_a, size_b):
        cover = lambda size: [i for s, e in shard_bounds(total, size) for i in range(s, e)]
        assert cover(size_a) == cover(size_b)

    def test_degenerate_inputs(self):
        assert shard_bounds(0, 8) == []
        assert shard_bounds(3, 100) == [(0, 3)]
        with pytest.raises(ValueError):
            shard_bounds(5, 0)
        with pytest.raises(ValueError):
            shard_bounds(-1, 4)
        with pytest.raises(ValueError):
            shard_bounds(5.5, 2)


# --------------------------------------------------------------------------- #
# exact streaming statistics
# --------------------------------------------------------------------------- #
class TestStreamingStats:
    @given(
        values=st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=80),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=80, deadline=None)
    def test_accumulation_order_cannot_move_a_bit(self, values, seed):
        shuffled = list(values)
        random.Random(seed).shuffle(shuffled)
        a, b = StreamingStats(), StreamingStats()
        for v in values:
            a.add(v)
        for v in shuffled:
            b.add(v)
        assert np.array_equal(a.as_array(), b.as_array(), equal_nan=True)

    @given(values=st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_mean_is_correctly_rounded(self, values):
        stats = StreamingStats()
        for v in values:
            stats.add(v)
        assert stats.mean == math.fsum(values) / len(values)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    def test_exact_sum_defeats_naive_accumulation(self):
        # 1e16 + lots of 1.0 — naive accumulation loses every unit
        acc = ExactSum()
        acc.add(1e16)
        for _ in range(10):
            acc.add(1.0)
        acc.add(-1e16)
        assert acc.value == 10.0

    def test_nan_and_empty_behaviour(self):
        stats = StreamingStats()
        assert math.isnan(stats.mean) and math.isnan(stats.std)
        stats.add(float("nan"))
        assert stats.count == 0 and stats.nan_count == 1
        stats.add(2.0)
        assert stats.std == 0.0 and stats.variance == 0.0
