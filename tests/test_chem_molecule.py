"""Tests for elements, atoms, molecules, conformers, force field and descriptors."""

import numpy as np
import pytest

from repro.chem.atom import Atom
from repro.chem.conformer import embed_3d, minimize_conformer, random_rotation_matrix
from repro.chem.descriptors import compute_descriptors, descriptor_vector, lipinski_violations, DESCRIPTOR_NAMES
from repro.chem.elements import ELEMENTS, get_element
from repro.chem.forcefield import ForceField
from repro.chem.molecule import Bond, Molecule


def linear_molecule(symbols="CCCO"):
    atoms = [Atom(element=s, position=[i * 1.5, 0.0, 0.0]) for i, s in enumerate(symbols)]
    bonds = [Bond(i, i + 1) for i in range(len(symbols) - 1)]
    return Molecule(atoms, bonds, name="linear")


def ring_molecule(size=6):
    atoms = [Atom(element="C", position=[np.cos(2 * np.pi * i / size), np.sin(2 * np.pi * i / size), 0.0]) for i in range(size)]
    bonds = [Bond(i, (i + 1) % size) for i in range(size)]
    return Molecule(atoms, bonds, name="ring")


class TestElementsAndAtoms:
    def test_element_lookup(self):
        carbon = get_element("C")
        assert carbon.atomic_number == 6
        assert "Cl" in ELEMENTS and ELEMENTS["Cl"].is_halogen
        assert ELEMENTS["Zn"].is_metal
        with pytest.raises(KeyError):
            get_element("Xx")

    def test_atom_validation_and_properties(self):
        atom = Atom(element="N", position=[1, 2, 3])
        assert atom.position.shape == (3,)
        assert atom.vdw_radius == ELEMENTS["N"].vdw_radius
        assert not atom.is_metal
        with pytest.raises(KeyError):
            Atom(element="Qq")

    def test_atom_copy_and_distance(self):
        a = Atom("C", [0, 0, 0])
        b = Atom("C", [3, 4, 0])
        assert a.distance_to(b) == pytest.approx(5.0)
        c = a.copy()
        c.position[0] = 9.0
        assert a.position[0] == 0.0


class TestMoleculeTopology:
    def test_basic_counts_and_formula(self):
        mol = linear_molecule("CCNO")
        assert mol.num_atoms == 4
        assert mol.num_bonds == 3
        assert mol.formula() == "C2NO"
        assert mol.molecular_weight() == pytest.approx(2 * 12.011 + 14.007 + 15.999)

    def test_bond_validation(self):
        mol = linear_molecule("CC")
        with pytest.raises(ValueError):
            mol.add_bond(0, 1)  # duplicate
        with pytest.raises(IndexError):
            mol.add_bond(0, 5)
        with pytest.raises(ValueError):
            Bond(1, 1)
        with pytest.raises(ValueError):
            Bond(0, 1, order=4)

    def test_neighbors_degree_components(self):
        mol = linear_molecule("CCC")
        assert mol.neighbors(1) == [0, 2]
        assert mol.degree(0) == 1
        assert mol.connected_components() == [[0, 1, 2]]

    def test_rings_and_rotatable_bonds(self):
        ring = ring_molecule(6)
        assert ring.num_rings() == 1
        assert ring.rotatable_bonds() == 0  # all bonds in a ring
        chain = linear_molecule("CCCCC")
        # terminal bonds do not count
        assert chain.rotatable_bonds() == 2

    def test_geometry_operations(self):
        mol = linear_molecule()
        moved = mol.translate([1.0, 0.0, 0.0])
        assert moved.centroid()[0] == pytest.approx(mol.centroid()[0] + 1.0)
        rotation = random_rotation_matrix(np.random.default_rng(0))
        rotated = mol.rotate(rotation)
        # rotation preserves pairwise distances
        assert rotated.rmsd_to(rotated) == 0.0
        d_before = np.linalg.norm(mol.coordinates[0] - mol.coordinates[-1])
        d_after = np.linalg.norm(rotated.coordinates[0] - rotated.coordinates[-1])
        assert d_after == pytest.approx(d_before)

    def test_rmsd_requires_same_size(self):
        with pytest.raises(ValueError):
            linear_molecule("CC").rmsd_to(linear_molecule("CCC"))

    def test_set_coordinates_validation(self):
        mol = linear_molecule("CC")
        with pytest.raises(ValueError):
            mol.set_coordinates(np.zeros((3, 3)))

    def test_charges_and_pharmacophores(self):
        mol = linear_molecule("CCNO")
        mol.assign_partial_charges()
        charges = [a.partial_charge for a in mol.atoms]
        assert abs(sum(charges)) < 1e-9  # neutral molecule stays neutral
        mol.assign_pharmacophores()
        nitrogen = mol.atoms[2]
        assert nitrogen.hbond_acceptor


class TestConformerAndForceField:
    def test_embed_3d_respects_bond_lengths(self):
        mol = linear_molecule("CCCCCC")
        embedded = embed_3d(mol, rng=0)
        for bond in embedded.bonds:
            d = np.linalg.norm(embedded.atoms[bond.i].position - embedded.atoms[bond.j].position)
            assert d == pytest.approx(1.5, abs=1e-6)
        # no severe clashes between non-bonded atoms
        coords = embedded.coordinates
        dists = np.linalg.norm(coords[:, None] - coords[None, :], axis=-1)
        np.fill_diagonal(dists, 10.0)
        assert dists.min() > 0.8

    def test_embed_3d_separates_components(self):
        atoms = [Atom("C"), Atom("C"), Atom("Na")]
        mol = Molecule(atoms, [Bond(0, 1)])
        embedded = embed_3d(mol, rng=1)
        assert np.linalg.norm(embedded.atoms[2].position - embedded.atoms[0].position) > 3.0

    def test_minimization_does_not_increase_energy(self):
        mol = embed_3d(linear_molecule("CCCCC"), rng=2)
        ff = ForceField()
        before = ff.energy_components(mol).total
        relaxed, after = minimize_conformer(mol, ff, max_steps=20)
        assert after <= before + 1e-9
        assert relaxed.num_atoms == mol.num_atoms

    def test_forcefield_forces_are_negative_gradient(self):
        mol = embed_3d(linear_molecule("CCC"), rng=3)
        ff = ForceField()
        energy, forces = ff.energy_and_forces(mol)
        eps = 1e-6
        coords = mol.coordinates
        numeric = np.zeros_like(coords)
        for i in range(coords.shape[0]):
            for k in range(3):
                for sign, store in ((1, "up"), (-1, "down")):
                    trial = coords.copy()
                    trial[i, k] += sign * eps
                    mol.set_coordinates(trial)
                    if sign == 1:
                        up = ff.energy_components(mol).total
                    else:
                        down = ff.energy_components(mol).total
                numeric[i, k] = -(up - down) / (2 * eps)
        mol.set_coordinates(coords)
        np.testing.assert_allclose(forces, numeric, atol=1e-3, rtol=1e-3)

    def test_rotation_matrix_is_orthogonal(self):
        rotation = random_rotation_matrix(np.random.default_rng(5))
        np.testing.assert_allclose(rotation @ rotation.T, np.eye(3), atol=1e-10)
        assert np.linalg.det(rotation) == pytest.approx(1.0)


class TestDescriptors:
    def test_descriptor_keys_and_vector_order(self, molecules):
        descriptors = compute_descriptors(molecules[0])
        assert set(DESCRIPTOR_NAMES) <= set(descriptors)
        vector = descriptor_vector(molecules[0])
        assert vector.shape == (len(DESCRIPTOR_NAMES),)
        assert np.isfinite(vector).all()

    def test_qed_like_bounded(self, molecules):
        for mol in molecules:
            q = compute_descriptors(mol)["qed_like"]
            assert 0.0 <= q <= 1.0

    def test_lipinski_violations(self):
        assert lipinski_violations({"molecular_weight": 900, "logp": 7, "hbd": 6, "hba": 12}) == 4
        assert lipinski_violations({"molecular_weight": 300, "logp": 2, "hbd": 1, "hba": 4}) == 0
