"""Tests for binding sites, the SARS-CoV-2 targets and the latent interaction model."""

import numpy as np
import pytest

from repro.chem.complexes import PK_TO_KCAL, InteractionModel, ProteinLigandComplex
from repro.chem.protein import (
    PocketFamily,
    SARS_COV_2_FAMILIES,
    generate_binding_site,
    make_sarscov2_proteins,
    make_sarscov2_targets,
)


class TestBindingSites:
    def test_family_sampling_bounds(self):
        family = PocketFamily.random(3, rng=0)
        assert 40 <= family.num_atoms_mean <= 90
        assert 5.5 <= family.radius <= 10.0

    def test_generate_binding_site_geometry(self):
        family = PocketFamily(family_id=1, radius=7.0, depth=5.0, num_atoms_mean=50)
        site = generate_binding_site(family, rng=0, name="s", target="t")
        coords = site.coordinates()
        assert site.num_atoms >= 12
        # pocket atoms sit below the opening plane (cavity opens towards +z)
        assert np.median(coords[:, 2]) < 0.0
        assert site.radius == 7.0
        assert np.allclose(site.center, 0.0)

    def test_site_copy_is_deep(self):
        site = generate_binding_site(PocketFamily.random(1, rng=1), rng=1)
        clone = site.copy()
        clone.atoms[0].position[0] += 10.0
        assert site.atoms[0].position[0] != clone.atoms[0].position[0]

    def test_sarscov2_targets(self):
        sites = make_sarscov2_targets(seed=7)
        assert set(sites) == {"protease1", "protease2", "spike1", "spike2"}
        # protease pockets are larger than spike pockets, as in the paper
        assert sites["protease1"].num_atoms > sites["spike1"].num_atoms
        assert SARS_COV_2_FAMILIES["protease1"].radius > SARS_COV_2_FAMILIES["spike2"].radius
        proteins = make_sarscov2_proteins(seed=7)
        assert set(proteins) == {"Mpro", "spike"}
        assert set(proteins["Mpro"].sites) == {"protease1", "protease2"}
        with pytest.raises(KeyError):
            proteins["Mpro"].site("spike1")

    def test_reproducible_with_seed(self):
        a = make_sarscov2_targets(seed=3)["spike1"].coordinates()
        b = make_sarscov2_targets(seed=3)["spike1"].coordinates()
        np.testing.assert_allclose(a, b)


class TestInteractionModel:
    def test_terms_nonnegative_and_finite(self, example_complex, interaction_model):
        terms = interaction_model.compute_terms(example_complex)
        assert terms.shape >= 0
        assert terms.repulsion >= 0
        assert terms.hydrophobic >= 0
        assert terms.hbond >= 0
        assert 0.0 <= terms.buried_fraction <= 1.0
        assert np.isfinite(terms.as_vector()).all()

    def test_pk_bounds_and_free_energy_sign(self, example_complex, interaction_model):
        pk = interaction_model.true_pk(example_complex)
        assert 0.0 <= pk <= 14.0
        dg = interaction_model.binding_free_energy(example_complex)
        assert dg == pytest.approx(-PK_TO_KCAL * pk)

    def test_pk_decreases_when_ligand_pulled_out(self, example_complex, interaction_model):
        near = interaction_model.true_pk(example_complex)
        far_ligand = example_complex.ligand.translate(np.array([0.0, 0.0, 40.0]))
        far_complex = example_complex.with_ligand(far_ligand)
        far = interaction_model.true_pk(far_complex)
        assert far < near

    def test_clash_penalty(self, example_complex, interaction_model):
        # compress the ligand onto a single pocket atom position -> huge clash
        pocket_atom = example_complex.site.atoms[0].position
        squashed = example_complex.ligand.copy()
        squashed.set_coordinates(np.tile(pocket_atom, (squashed.num_atoms, 1)) + 0.05 * np.random.default_rng(0).normal(size=(squashed.num_atoms, 3)))
        clashed = interaction_model.true_pk(example_complex.with_ligand(squashed))
        assert clashed < interaction_model.true_pk(example_complex)

    def test_deterministic(self, example_complex, interaction_model):
        assert interaction_model.true_pk(example_complex) == interaction_model.true_pk(example_complex)

    def test_empty_complex_raises(self, protease_site, interaction_model):
        from repro.chem.molecule import Molecule

        with pytest.raises(ValueError):
            interaction_model.true_pk(ProteinLigandComplex(protease_site, Molecule([], []), "x"))

    def test_with_ligand_preserves_metadata(self, example_complex):
        replaced = example_complex.with_ligand(example_complex.ligand.translate([1, 0, 0]), pose_id=4)
        assert replaced.pose_id == 4
        assert replaced.complex_id == example_complex.complex_id
        assert replaced.site is example_complex.site
