"""Golden-equivalence suite for the vectorized featurization engine.

The vectorized voxelizer and graph featurizer must be *bit-identical*
(``np.array_equal``, no tolerances) to the scalar reference across
channel sets, grid dimensions and seeded rotation augmentation — this is
the contract that lets the engine replace the scalar path everywhere
without perturbing a single campaign score.
"""

import threading

import numpy as np
import pytest

from repro.featurize.atom_features import atom_arrays, atom_feature_matrix, feature_matrix_from_arrays
from repro.featurize.cache import H5FeatureStore
from repro.featurize.engine import (
    FeaturePipeline,
    VectorizedGraphBuilder,
    VectorizedVoxelizer,
    _cap_neighbours_vectorized,
)
from repro.featurize.graph import GraphBuilder, GraphConfig, _cap_neighbours, _row_normalize
from repro.featurize.pipeline import ComplexFeaturizer, collate_complexes
from repro.featurize.voxelize import VoxelGridConfig, Voxelizer, random_axis_rotation
from repro.hpc.h5store import H5Store

GRID_DIMS = (8, 16, 24)
CHANNEL_SETS = ("reduced", "full")


def assert_graphs_identical(a: dict, b: dict) -> None:
    assert np.array_equal(a["node_features"], b["node_features"])
    assert np.array_equal(a["ligand_mask"], b["ligand_mask"])
    assert a["id"] == b["id"]
    for edge_type in ("covalent", "noncovalent"):
        assert np.array_equal(a["adjacency"][edge_type], b["adjacency"][edge_type])


def assert_samples_identical(a, b) -> None:
    assert np.array_equal(a.voxel, b.voxel)
    assert_graphs_identical(a.graph, b.graph)
    assert (a.target == b.target) or (np.isnan(a.target) and np.isnan(b.target))
    assert a.complex_id == b.complex_id
    assert a.pose_id == b.pose_id


class TestVoxelizerEquivalence:
    @pytest.mark.parametrize("grid_dim", GRID_DIMS)
    @pytest.mark.parametrize("channel_set", CHANNEL_SETS)
    def test_bit_identical_across_configs(self, pose_complexes, grid_dim, channel_set):
        config = VoxelGridConfig(grid_dim=grid_dim, channel_set=channel_set)
        scalar = Voxelizer(config)
        vectorized = VectorizedVoxelizer(config)
        for complex_ in pose_complexes:
            reference = scalar.voxelize(complex_)
            fast = vectorized.voxelize(complex_)
            assert fast.shape == reference.shape
            assert np.array_equal(reference, fast)

    @pytest.mark.parametrize("grid_dim", GRID_DIMS)
    def test_bit_identical_under_seeded_rotation(self, pose_complexes, grid_dim):
        config = VoxelGridConfig(grid_dim=grid_dim)
        scalar = Voxelizer(config)
        vectorized = VectorizedVoxelizer(config)
        rng = np.random.default_rng(17)
        for complex_ in pose_complexes:
            rotation = random_axis_rotation(rng, probability=1.0)
            assert np.array_equal(
                scalar.voxelize(complex_, rotation=rotation),
                vectorized.voxelize(complex_, rotation=rotation),
            )

    def test_non_standard_grid_geometry(self, pose_complexes):
        config = VoxelGridConfig(grid_dim=10, resolution=0.8, sigma_scale=0.9, cutoff_sigmas=1.5)
        scalar = Voxelizer(config)
        vectorized = VectorizedVoxelizer(config)
        for complex_ in pose_complexes:
            assert np.array_equal(scalar.voxelize(complex_), vectorized.voxelize(complex_))

    def test_atoms_outside_tiny_grid(self, pose_complexes):
        config = VoxelGridConfig(grid_dim=4, resolution=0.5)
        scalar = Voxelizer(config)
        vectorized = VectorizedVoxelizer(config)
        for complex_ in pose_complexes:
            assert np.array_equal(scalar.voxelize(complex_), vectorized.voxelize(complex_))

    def test_voxelize_many_matches_per_complex(self, pose_complexes):
        vectorized = VectorizedVoxelizer(VoxelGridConfig(grid_dim=12))
        stacked = vectorized.voxelize_many(pose_complexes)
        assert stacked.shape[0] == len(pose_complexes)
        for index, complex_ in enumerate(pose_complexes):
            assert np.array_equal(stacked[index], vectorized.voxelize(complex_))

    def test_voxelize_many_rotation_length_mismatch(self, pose_complexes):
        vectorized = VectorizedVoxelizer(VoxelGridConfig(grid_dim=8))
        with pytest.raises(ValueError):
            vectorized.voxelize_many(pose_complexes, rotations=[None])

    def test_invalid_grid_dim(self):
        with pytest.raises(ValueError):
            VectorizedVoxelizer(VoxelGridConfig(grid_dim=2))


class TestGraphBuilderEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            GraphConfig(),
            GraphConfig(pocket_shell=3.0),
            GraphConfig(covalent_k=1, noncovalent_k=1),
            GraphConfig(noncovalent_threshold=8.0, noncovalent_k=10),
            GraphConfig(covalent_threshold=1.0),
        ],
        ids=["default", "tight-shell", "k1", "wide", "short-covalent"],
    )
    def test_bit_identical_graphs(self, pose_complexes, config):
        scalar = GraphBuilder(config)
        vectorized = VectorizedGraphBuilder(config)
        for complex_ in pose_complexes:
            assert_graphs_identical(scalar.build(complex_), vectorized.build(complex_))

    def test_empty_ligand_raises(self, protease_site):
        from repro.chem.complexes import ProteinLigandComplex
        from repro.chem.molecule import Molecule

        empty = ProteinLigandComplex(protease_site, Molecule([], []), complex_id="empty")
        with pytest.raises(ValueError):
            VectorizedGraphBuilder().build(empty)

    def test_build_many_matches_build(self, pose_complexes):
        vectorized = VectorizedGraphBuilder()
        many = vectorized.build_many(pose_complexes)
        for graph, complex_ in zip(many, pose_complexes):
            assert_graphs_identical(graph, vectorized.build(complex_))

    def test_cap_neighbours_vectorized_matches_reference_with_ties(self):
        # exact ties (equal weights) are where tie-breaking must agree
        rng = np.random.default_rng(0)
        for trial in range(25):
            n = int(rng.integers(2, 12))
            values = rng.choice([0.0, 0.25, 0.5, 0.5, 1.0], size=(n, n))
            values = np.maximum(values, values.T)
            np.fill_diagonal(values, 0.0)
            for k in (1, 2, 3, n):
                assert np.array_equal(
                    _cap_neighbours(values.copy(), k),
                    _cap_neighbours_vectorized(values.copy(), k),
                )

    def test_row_normalize_shared(self):
        matrix = np.array([[0.0, 2.0], [0.0, 0.0]])
        normalized = _row_normalize(matrix)
        assert np.array_equal(normalized, np.array([[0.0, 1.0], [0.0, 0.0]]))


class TestAtomArrayEquivalence:
    def test_feature_matrix_from_arrays_bit_identical(self, pose_complexes):
        for complex_ in pose_complexes:
            atoms = list(complex_.ligand.atoms) + list(complex_.site.atoms)
            flags = [True] * complex_.ligand.num_atoms + [False] * complex_.site.num_atoms
            reference = atom_feature_matrix(atoms, flags)
            arrays = atom_arrays(atoms)
            fast = feature_matrix_from_arrays(arrays, np.array(flags))
            assert np.array_equal(reference, fast)


class TestFeaturePipelineEquivalence:
    def test_inference_bit_identical(self, pose_complexes):
        scalar = ComplexFeaturizer(VoxelGridConfig(grid_dim=12))
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=12))
        reference = scalar.featurize_many(pose_complexes, targets=[1.0 * i for i in range(len(pose_complexes))])
        fast = engine.featurize_many(pose_complexes, targets=[1.0 * i for i in range(len(pose_complexes))])
        for a, b in zip(reference, fast):
            assert_samples_identical(a, b)
        # collated batches are identical too
        batch_a = collate_complexes(reference)
        batch_b = collate_complexes(fast)
        assert np.array_equal(batch_a["voxel"], batch_b["voxel"])
        assert np.array_equal(batch_a["target"], batch_b["target"])
        assert batch_a["ids"] == batch_b["ids"]

    def test_seeded_augmentation_stream_bit_identical(self, pose_complexes):
        scalar = ComplexFeaturizer(
            VoxelGridConfig(grid_dim=10), augment=True, rotation_probability=0.6, seed=23
        )
        engine = FeaturePipeline(
            VoxelGridConfig(grid_dim=10), augment=True, rotation_probability=0.6, seed=23
        )
        # several passes so the two RNG streams must stay aligned call after call
        for _ in range(3):
            reference = scalar.featurize_many(pose_complexes, training=True)
            fast = engine.featurize_many(pose_complexes, training=True)
            for a, b in zip(reference, fast):
                assert_samples_identical(a, b)

    def test_augmented_training_bypasses_cache(self, pose_complexes):
        engine = FeaturePipeline(
            VoxelGridConfig(grid_dim=8), augment=True, rotation_probability=1.0, seed=3
        )
        engine.featurize_many(pose_complexes, training=True)
        stats = engine.stats()
        assert stats.lookups == 0 and len(engine.cache) == 0
        # inference features of the same poses do populate the cache
        engine.featurize_many(pose_complexes, training=False)
        assert len(engine.cache) == len(pose_complexes)

    def test_cache_hits_serve_identical_features(self, pose_complexes):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        cold = engine.featurize_many(pose_complexes)
        warm = engine.featurize_many(pose_complexes)
        stats = engine.stats()
        assert stats.misses == len(pose_complexes)
        assert stats.hits == len(pose_complexes)
        assert stats.ledger_closed
        for a, b in zip(cold, warm):
            assert_samples_identical(a, b)

    def test_cached_graph_id_restamped_per_request(self, pose_complexes):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        original = pose_complexes[0]
        renamed = original.with_ligand(original.ligand)
        renamed.complex_id = "renamed"
        first = engine.featurize(original)
        second = engine.featurize(renamed)  # same content key, different id
        assert engine.stats().hits == 1
        assert first.graph["id"] == original.complex_id
        assert second.graph["id"] == "renamed"

    def test_from_featurizer_shares_configuration(self, pose_complexes):
        scalar = ComplexFeaturizer(
            VoxelGridConfig(grid_dim=10, channel_set="full"),
            GraphConfig(pocket_shell=4.0),
            augment=True,
            rotation_probability=0.25,
            seed=9,
        )
        engine = FeaturePipeline.from_featurizer(scalar, seed=9)
        assert engine.voxelizer.config == scalar.voxelizer.config
        assert engine.graph_builder.config == scalar.graph_builder.config
        assert engine.augment == scalar.augment
        assert engine.rotation_probability == scalar.rotation_probability
        a = scalar.featurize(pose_complexes[0], training=True)
        b = engine.featurize(pose_complexes[0], training=True)
        assert_samples_identical(a, b)

    def test_config_digest_separates_cache_keys(self, pose_complexes):
        small = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        large = FeaturePipeline(VoxelGridConfig(grid_dim=16))
        assert small.config_digest != large.config_digest
        assert small.key_for(pose_complexes[0]) != large.key_for(pose_complexes[0])
        # same config -> same key, regardless of pipeline instance
        twin = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        assert small.key_for(pose_complexes[0]) == twin.key_for(pose_complexes[0])


class TestPrefetcher:
    def test_prefetch_warms_cache_with_identical_features(self, pose_complexes):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        computed = engine.prefetch(pose_complexes, max_workers=3)
        assert computed == len(pose_complexes)
        assert len(engine.cache) == len(pose_complexes)
        fresh = FeaturePipeline(VoxelGridConfig(grid_dim=8), cache_enabled=False)
        served = engine.featurize_many(pose_complexes)
        reference = fresh.featurize_many(pose_complexes)
        assert engine.stats().hits >= len(pose_complexes)
        for a, b in zip(served, reference):
            assert_samples_identical(a, b)

    def test_prefetch_skips_already_cached(self, pose_complexes):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        engine.featurize_many(pose_complexes[:2])
        computed = engine.prefetch(pose_complexes, max_workers=2)
        assert computed == len(pose_complexes) - 2

    def test_prefetch_deduplicates_repeated_poses(self, pose_complexes):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        repeated = list(pose_complexes) * 3
        computed = engine.prefetch(repeated, max_workers=4)
        assert computed == len(pose_complexes)
        assert len(engine.cache) == len(pose_complexes)

    def test_prefetch_bounds_in_flight_submissions(self, pose_complexes):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        active = 0
        peak = 0
        lock = threading.Lock()
        original = engine._compute_fresh

        def tracked(complex_, rotation):
            nonlocal active, peak
            with lock:
                active += 1
                peak = max(peak, active)
            try:
                return original(complex_, rotation)
            finally:
                with lock:
                    active -= 1
        engine._compute_fresh = tracked
        engine.prefetch(list(pose_complexes) * 4, max_workers=2, max_pending=3)
        assert peak <= 2

    def test_prefetch_requires_cache(self, pose_complexes):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8), cache_enabled=False)
        with pytest.raises(RuntimeError):
            engine.prefetch(pose_complexes)
        with pytest.raises(ValueError):
            FeaturePipeline(VoxelGridConfig(grid_dim=8)).prefetch(pose_complexes, max_workers=0)


class TestCachePersistence:
    def test_h5_roundtrip_preserves_bits(self, pose_complexes, tmp_path):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        originals = engine.featurize_many(pose_complexes)
        adapter = engine.save_cache()
        path = tmp_path / "features.npz"
        adapter.store.save(path)

        warmed = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        loaded = warmed.load_cache(H5FeatureStore(H5Store.load(path)))
        assert loaded == len(pose_complexes)
        served = warmed.featurize_many(pose_complexes)
        assert warmed.stats().hits == len(pose_complexes)
        for a, b in zip(originals, served):
            assert_samples_identical(a, b)

    def test_empty_store_loads_nothing(self):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        assert engine.load_cache(H5FeatureStore(H5Store())) == 0

    def test_resave_removes_stale_entry_groups(self, pose_complexes):
        # small cache: later poses evict earlier ones between two saves
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8), cache_capacity=2)
        adapter = H5FeatureStore()
        engine.featurize_many(pose_complexes[:2])
        engine.save_cache(adapter)
        datasets_first = len(adapter.store)
        engine.featurize_many(pose_complexes[2:4])  # evicts the first two
        engine.save_cache(adapter)
        # same number of live entries -> same store size: no orphaned payloads
        assert len(adapter.store) == datasets_first
        persisted = set(adapter.store.groups(f"{H5FeatureStore.GROUP}/entries"))
        live = {key for key, _ in engine.cache.items()}
        assert persisted == live
        # and the re-saved store still warms a fresh cache correctly
        warmed = FeaturePipeline(VoxelGridConfig(grid_dim=8))
        assert warmed.load_cache(adapter) == 2

    def test_save_without_cache_raises(self):
        engine = FeaturePipeline(VoxelGridConfig(grid_dim=8), cache_enabled=False)
        with pytest.raises(RuntimeError):
            engine.save_cache()
        with pytest.raises(RuntimeError):
            engine.load_cache(H5FeatureStore(H5Store()))
