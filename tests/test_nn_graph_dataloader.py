"""Tests for graph layers (GraphBatch, GatedGraphConv, GraphGather) and the DataLoader."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.dataloader import DataLoader, InMemoryDataset, default_collate
from repro.nn.graph_layers import GatedGraphConv, GraphBatch, GraphGather
from repro.nn.tensor import Tensor


def make_graph(n_atoms=5, feature_dim=4, seed=0, ligand_atoms=3):
    rng = np.random.default_rng(seed)
    cov = np.zeros((n_atoms, n_atoms))
    for i in range(n_atoms - 1):
        cov[i, i + 1] = cov[i + 1, i] = 1.0
    noncov = (rng.random((n_atoms, n_atoms)) < 0.4).astype(float)
    np.fill_diagonal(noncov, 0.0)
    noncov = np.maximum(noncov, noncov.T)
    mask = np.zeros(n_atoms, dtype=bool)
    mask[:ligand_atoms] = True
    return {
        "node_features": rng.normal(size=(n_atoms, feature_dim)),
        "adjacency": {"covalent": cov, "noncovalent": noncov},
        "ligand_mask": mask,
        "id": f"g{seed}",
    }


class TestGraphBatch:
    def test_block_diagonal_stacking(self):
        batch = GraphBatch.from_graphs([make_graph(4, seed=1), make_graph(6, seed=2)])
        assert batch.num_nodes == 10
        assert batch.num_graphs == 2
        assert batch.adjacency["covalent"].shape == (10, 10)
        # no cross-graph edges
        assert np.all(batch.adjacency["covalent"][:4, 4:] == 0)
        assert np.all(batch.adjacency["noncovalent"][4:, :4] == 0)
        np.testing.assert_array_equal(batch.graph_index, [0] * 4 + [1] * 6)

    def test_membership_matrix(self):
        batch = GraphBatch.from_graphs([make_graph(3, seed=0), make_graph(2, seed=1)])
        membership = batch.membership_matrix()
        assert membership.shape == (2, 5)
        np.testing.assert_allclose(membership.sum(axis=0), 1.0)
        np.testing.assert_allclose(membership.sum(axis=1), [3.0, 2.0])

    def test_feature_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            GraphBatch.from_graphs([make_graph(3, feature_dim=4), make_graph(3, feature_dim=5)])

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            GraphBatch.from_graphs([])

    def test_shape_validation(self):
        graph = make_graph(4)
        with pytest.raises(ValueError):
            GraphBatch(
                node_features=graph["node_features"],
                adjacency={"covalent": np.zeros((3, 3)), "noncovalent": np.zeros((4, 4))},
                graph_index=np.zeros(4, dtype=int),
                ligand_mask=np.ones(4, dtype=bool),
                num_graphs=1,
            )


class TestGraphLayers:
    def test_gated_conv_shapes_and_padding(self):
        batch = GraphBatch.from_graphs([make_graph(5, feature_dim=4, seed=3)])
        conv = GatedGraphConv(hidden_dim=8, num_steps=2, rng=0)
        out = conv(Tensor(batch.node_features), batch.adjacency)
        assert out.shape == (5, 8)

    def test_gated_conv_rejects_oversized_input(self):
        conv = GatedGraphConv(hidden_dim=4, num_steps=1, rng=0)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((3, 6))), {"covalent": np.eye(3)})

    def test_isolated_graph_messages_zero_but_state_updates(self):
        batch = GraphBatch.from_graphs([make_graph(4, seed=5)])
        conv = GatedGraphConv(hidden_dim=4, num_steps=1, edge_types=("covalent",), rng=1)
        zero_adj = {"covalent": np.zeros((4, 4))}
        out = conv(Tensor(batch.node_features), zero_adj)
        assert np.isfinite(out.numpy()).all()

    def test_gather_pools_only_ligand_atoms(self):
        graph = make_graph(6, seed=7, ligand_atoms=2)
        batch = GraphBatch.from_graphs([graph])
        gather = GraphGather(node_dim=4, input_dim=4, gather_width=5, rng=2)
        h = Tensor(batch.node_features)
        pooled = gather(h, batch).numpy()
        assert pooled.shape == (1, 5)
        # zeroing the pocket atoms must not change the pooled value
        modified = graph.copy()
        modified["node_features"] = graph["node_features"].copy()
        modified["node_features"][2:] = 0.0
        batch2 = GraphBatch.from_graphs([modified])
        pooled2 = gather(Tensor(batch2.node_features), batch2).numpy()
        np.testing.assert_allclose(pooled, pooled2)

    def test_gradients_flow_through_graph_stack(self):
        batch = GraphBatch.from_graphs([make_graph(5, seed=9), make_graph(4, seed=10)])
        conv = GatedGraphConv(hidden_dim=6, num_steps=2, rng=3)
        gather = GraphGather(node_dim=6, input_dim=4, gather_width=4, rng=4)
        out = gather(conv(Tensor(batch.node_features), batch.adjacency), batch)
        (out * out).sum().backward()
        assert conv.w_z.grad is not None
        assert gather.i_weight.grad is not None


class TestDataLoader:
    def test_batching_and_len(self):
        data = InMemoryDataset(list(range(10)))
        loader = DataLoader(data, batch_size=3)
        batches = list(loader)
        assert len(batches) == 4 == len(loader)
        assert list(batches[0]) == [0, 1, 2]

    def test_drop_last(self):
        loader = DataLoader(InMemoryDataset(list(range(10))), batch_size=3, drop_last=True)
        assert len(list(loader)) == 3 == len(loader)

    def test_shuffle_reproducible_and_covers_all(self):
        loader = DataLoader(InMemoryDataset(list(range(20))), batch_size=5, shuffle=True, rng=3)
        seen = [x for batch in loader for x in batch]
        assert sorted(seen) == list(range(20))

    def test_parallel_workers_match_serial(self):
        samples = [{"x": np.full(3, i, dtype=float), "y": float(i)} for i in range(17)]
        serial = list(DataLoader(InMemoryDataset(samples), batch_size=4))
        parallel = list(DataLoader(InMemoryDataset(samples), batch_size=4, num_workers=3))
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            np.testing.assert_allclose(a["x"], b["x"])
            np.testing.assert_allclose(a["y"], b["y"])

    def test_default_collate_types(self):
        batch = default_collate([{"a": 1, "b": np.zeros(2), "c": "x"}, {"a": 2, "b": np.ones(2), "c": "y"}])
        assert batch["a"].tolist() == [1, 2]
        assert batch["b"].shape == (2, 2)
        assert batch["c"] == ["x", "y"]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DataLoader(InMemoryDataset([1]), batch_size=0)
        with pytest.raises(ValueError):
            DataLoader(InMemoryDataset([1]), batch_size=1, num_workers=-1)

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=7))
    @settings(max_examples=25, deadline=None)
    def test_all_samples_delivered_exactly_once(self, n, batch_size):
        loader = DataLoader(InMemoryDataset(list(range(n))), batch_size=batch_size, shuffle=True, rng=0)
        seen = [x for batch in loader for x in batch]
        assert sorted(seen) == list(range(n))

    def test_worker_exception_propagates_without_hanging(self):
        def explode(samples):
            raise ValueError("bad batch")

        loader = DataLoader(InMemoryDataset(list(range(12))), batch_size=3, num_workers=2, collate_fn=explode)
        with pytest.raises(ValueError, match="bad batch"):
            list(loader)
        # the pool must be torn down: a fresh iteration fails again instead of deadlocking
        with pytest.raises(ValueError, match="bad batch"):
            next(iter(loader))

    def test_drop_last_smaller_than_batch_yields_nothing(self):
        loader = DataLoader(InMemoryDataset(list(range(3))), batch_size=5, drop_last=True)
        assert len(loader) == 0
        assert list(loader) == []
        prefetching = DataLoader(InMemoryDataset(list(range(3))), batch_size=5, drop_last=True, num_workers=2)
        assert list(prefetching) == []

    def test_shared_rng_shuffle_reproducible_across_epochs(self):
        epochs = 3
        orders = []
        for _ in range(2):
            loader = DataLoader(InMemoryDataset(list(range(15))), batch_size=4, shuffle=True, rng=21)
            orders.append([[int(x) for batch in loader for x in batch] for _ in range(epochs)])
        # same seed => the same sequence of per-epoch orders...
        assert orders[0] == orders[1]
        # ...while the shared rng advances, so consecutive epochs differ
        assert orders[0][0] != orders[0][1]
