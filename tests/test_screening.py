"""Tests for partitioning, scoring jobs, output format, cost function, throughput and the campaign."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hpc.h5store import H5Store
from repro.screening.costfunction import CompoundCostFunction
from repro.screening.job import FusionScoringJob
from repro.screening.output import read_predictions, write_job_output
from repro.screening.partition import partition_evenly, partition_poses_into_jobs
from repro.screening.throughput import figure4_series, speedup_summary, table7_rows


class TestPartitioning:
    def test_partition_evenly_sizes(self):
        chunks = partition_evenly(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert sum(chunks, []) == list(range(10))

    def test_partition_with_more_parts_than_items(self):
        chunks = partition_evenly([1, 2], 4)
        assert [len(c) for c in chunks] == [1, 1, 0, 0]

    def test_partition_degenerate_cases(self):
        # empty input still yields num_parts (empty) chunks: idle MPI
        # ranks participate in the collectives
        assert partition_evenly([], 3) == [[], [], []]
        # a generator input is materialized once, not consumed twice
        assert partition_evenly(iter(range(4)), 2) == [[0, 1], [2, 3]]
        with pytest.raises(ValueError):
            partition_evenly([1, 2], -1)
        with pytest.raises(ValueError):
            partition_evenly([1, 2], 2.5)
        # bool is an int subtype; True == 1 part is accepted
        assert partition_evenly([1, 2], True) == [[1, 2]]

    def test_partition_into_jobs(self):
        jobs = partition_poses_into_jobs(list(range(7)), poses_per_job=3)
        assert [len(j) for j in jobs] == [3, 3, 1]
        assert partition_poses_into_jobs([], poses_per_job=5) == [[]]
        with pytest.raises(ValueError):
            partition_evenly([1], 0)
        with pytest.raises(ValueError):
            partition_poses_into_jobs([1], 0)

    @given(st.lists(st.integers(), max_size=50), st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_partition_preserves_order_and_items(self, items, parts):
        chunks = partition_evenly(items, parts)
        assert len(chunks) == parts
        assert sum(chunks, []) == items
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1


class TestOutputFormat:
    def test_write_and_read_roundtrip(self):
        store = H5Store()
        write_job_output(store, "protease1", ["c1", "c2"], [0, 1], np.array([7.5, 6.0]),
                         job_name="job0/rank0", timings={"startup": 2.0})
        write_job_output(store, "protease1", ["c3"], [0], np.array([5.0]), job_name="job0/rank1")
        predictions = read_predictions(store, "protease1")
        assert predictions[("c1", 0)] == 7.5
        assert predictions[("c3", 0)] == 5.0
        assert len(predictions) == 3
        assert store.attrs("dock/protease1/job0/rank0")["startup"] == 2.0

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            write_job_output(H5Store(), "s", ["a"], [0, 1], np.array([1.0]))

    def test_read_missing_site_empty(self):
        assert read_predictions(H5Store(), "nowhere") == {}


class TestFusionScoringJob:
    def test_job_scores_all_poses_and_mirrors_output(self, workbench, campaign):
        site_name = campaign.database.sites()[0]
        records = [r for r in campaign.database.records() if r.site_name == site_name][:10]
        job = FusionScoringJob(
            model=workbench.coherent_fusion,
            featurizer=workbench.featurizer,
            site=campaign.sites[site_name],
            records=records,
            num_nodes=2,
            gpus_per_node=2,
            batch_size_per_rank=4,
            job_name="unit-job",
        )
        result = job.run(use_threads=False)
        assert result.num_poses == len(records)
        assert set(result.timings) == {"startup", "evaluation", "output"}
        assert result.num_ranks == 4
        # the HDF5-like store mirrors every prediction
        stored = read_predictions(result.store, result.site_name)
        assert len(stored) == len(records)
        for record in records:
            assert np.isfinite(record.fusion_pk)
            assert stored[(record.compound_id, record.pose_id)] == pytest.approx(record.fusion_pk)

    def test_threaded_execution_matches_sequential(self, workbench, campaign):
        site_name = campaign.database.sites()[0]
        records = [r for r in campaign.database.records() if r.site_name == site_name][:6]
        site = campaign.sites[site_name]

        def run(use_threads):
            job = FusionScoringJob(
                model=workbench.coherent_fusion, featurizer=workbench.featurizer, site=site,
                records=records, num_nodes=1, gpus_per_node=4, batch_size_per_rank=4,
            )
            return job.run(use_threads=use_threads).predictions

        sequential = run(False)
        threaded = run(True)
        assert sequential.keys() == threaded.keys()
        for key in sequential:
            assert sequential[key] == pytest.approx(threaded[key], abs=1e-9)

    def test_modelled_estimate_uses_throughput_model(self, workbench, campaign):
        site = campaign.sites[campaign.database.sites()[0]]
        records = [r for r in campaign.database.records()][:4]
        job = FusionScoringJob(workbench.coherent_fusion, workbench.featurizer, site, records, num_nodes=4, batch_size_per_rank=56)
        estimate = job.modelled_estimate(num_poses=2_000_000)
        assert 4.5 <= estimate.total_hours <= 6.0

    def test_geometry_validation(self, workbench, sarscov2_sites):
        site = list(sarscov2_sites.values())[0]
        with pytest.raises(ValueError):
            FusionScoringJob(workbench.coherent_fusion, workbench.featurizer, site, [], num_nodes=0)


class TestCostFunction:
    def test_selection_prefers_better_scores(self, campaign):
        site = campaign.database.sites()[0]
        cost = CompoundCostFunction()
        scores = cost.score_site(campaign.database, site)
        assert len(scores) == len(campaign.database.compounds(site))
        combined = [s.combined for s in scores]
        assert combined == sorted(combined, reverse=True)
        top = cost.select_top(campaign.database, site, 3)
        assert len(top) == 3
        assert top[0].combined >= top[-1].combined
        with pytest.raises(ValueError):
            cost.select_top(campaign.database, site, 0)

    def test_fusion_weight_changes_ranking(self, campaign):
        site = campaign.database.sites()[0]
        fusion_heavy = CompoundCostFunction(fusion_weight=5.0, vina_weight=0.0, mmgbsa_weight=0.0, druglikeness_weight=0.0, lipinski_penalty=0.0)
        ranking = [s.compound_id for s in fusion_heavy.score_site(campaign.database, site)]
        best_by_fusion = max(
            campaign.database.compounds(site),
            key=lambda c: campaign.database.best_pose(site, c, by="fusion").fusion_pk
            if campaign.database.best_pose(site, c, by="fusion") else -np.inf,
        )
        assert ranking[0] == best_by_fusion


class TestThroughputReports:
    def test_table7_rows_structure(self):
        rows = table7_rows()
        assert set(rows) == {"single_job", "peak"}
        assert rows["peak"]["poses_per_second"] > rows["single_job"]["poses_per_second"]
        assert rows["single_job"]["avg_startup_minutes"] == pytest.approx(20.0)

    def test_figure4_series_structure(self):
        series = figure4_series(node_counts=(1, 2, 4), batch_sizes=(12, 56))
        assert set(series) == {12, 56}
        for batch, rows in series.items():
            nodes = [n for n, _t in rows]
            times = [t for _n, t in rows]
            assert nodes == [1, 2, 4]
            assert times == sorted(times, reverse=True)

    def test_speedup_summary(self):
        speedups = speedup_summary()
        assert 2.0 <= speedups["fusion_vs_vina"] <= 3.5
        assert speedups["fusion_vs_mmgbsa"] >= 300


class TestCampaignPipeline:
    def test_campaign_end_to_end(self, campaign):
        summary = campaign.summary()
        assert summary["num_poses_scored"] > 0
        assert summary["num_sites"] == 4
        assert summary["num_tested"] > 0
        # every selected compound received an assay measurement
        for site, selection in campaign.selections.items():
            for score in selection:
                assert campaign.assays.inhibition_of(site, score.compound_id) is not None
        # fusion predictions were written into the docking database
        scored = [r for r in campaign.database.records() if np.isfinite(r.fusion_pk)]
        assert len(scored) == len(campaign.database.records())
        assert 0.0 <= campaign.hit_rate() <= 1.0

    def test_campaign_has_ampl_models_and_structural_pk(self, campaign):
        assert len(campaign.ampl_models) >= 1
        for site, mapping in campaign.structural_pk.items():
            for compound, pk in mapping.items():
                assert 0.0 <= pk <= 14.0

    def test_job_results_report_timings(self, campaign):
        assert campaign.job_results
        for result in campaign.job_results:
            assert result.timings["evaluation"] >= 0.0
            assert result.modelled is not None
