"""Tests for search spaces, the time-varying GP, PBT/PB2 schedulers, random search and the tune runner."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hpo.gp import TimeVaryingGP
from repro.hpo.pb2 import PB2Scheduler
from repro.hpo.pbt import PBTScheduler
from repro.hpo.random_search import RandomSearch
from repro.hpo.space import (
    Boolean,
    Choice,
    SearchSpace,
    Uniform,
    cnn3d_search_space,
    fusion_search_space,
    sgcnn_search_space,
)
from repro.hpo.trial import Trial, TrialState
from repro.hpo.tune import TuneConfig, TuneRunner
from repro.models.config import SGCNNConfig
from repro.models.sgcnn import SGCNN
from repro.models.train import Trainer, TrainerConfig


def toy_space():
    space = SearchSpace()
    space.add(Uniform("learning_rate", 1e-4, 1e-1, log=True))
    space.add(Uniform("dropout", 0.0 + 1e-3, 0.5))
    space.add(Choice("batch_size", (2, 4, 8)))
    space.add(Boolean("flag"))
    return space


class TestSearchSpace:
    def test_sampling_within_bounds(self):
        space = toy_space()
        rng = np.random.default_rng(0)
        for _ in range(50):
            config = space.sample(rng)
            assert 1e-4 <= config["learning_rate"] <= 1e-1
            assert config["batch_size"] in (2, 4, 8)
            assert isinstance(config["flag"], bool)

    def test_unit_vector_roundtrip(self):
        space = toy_space()
        config = space.sample(np.random.default_rng(1))
        vector = space.to_unit_vector(config)
        assert vector.shape == (2,)
        assert np.all((0 <= vector) & (vector <= 1))
        rebuilt = space.from_unit_vector(vector, config)
        assert rebuilt["learning_rate"] == pytest.approx(config["learning_rate"], rel=1e-9)

    def test_clip(self):
        space = toy_space()
        clipped = space.clip({"learning_rate": 10.0, "dropout": -1.0, "batch_size": 2, "flag": True})
        assert clipped["learning_rate"] == pytest.approx(1e-1)
        assert clipped["dropout"] == pytest.approx(1e-3)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            Uniform("x", 2.0, 1.0)
        with pytest.raises(ValueError):
            Uniform("x", -1.0, 1.0, log=True)
        with pytest.raises(ValueError):
            Choice("c", ())

    def test_paper_table1_spaces(self):
        cnn, sg, fusion = cnn3d_search_space(), sgcnn_search_space(), fusion_search_space()
        assert set(fusion["optimizer"].options) == {"adam", "adamw", "rmsprop", "adadelta"}
        assert fusion["batch_size"].options[-1] == 56
        assert sg["covalent_k"].options == (2, 3, 4, 5, 6, 7, 8)
        assert sg["noncovalent_threshold"].low == pytest.approx(1.2)
        assert cnn["dense_nodes"].options == (40, 64, 88, 104, 128)
        assert "pretrained" in fusion.names()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_log_uniform_positive(self, seed):
        dim = Uniform("lr", 1e-8, 1e-3, log=True)
        value = dim.sample(np.random.default_rng(seed))
        assert 1e-8 <= value <= 1e-3
        assert 0.0 <= dim.to_unit(value) <= 1.0


class TestTimeVaryingGP:
    def test_fit_predict_interpolates(self):
        rng = np.random.default_rng(0)
        x = rng.random((30, 2))
        t = np.arange(30.0)
        y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1]
        gp = TimeVaryingGP(noise=1e-4).fit(x, t, y)
        mean, std = gp.predict(x[:5], t[:5])
        np.testing.assert_allclose(mean, y[:5], atol=0.2)
        assert np.all(std >= 0)

    def test_uncertainty_larger_away_from_data(self):
        x = np.array([[0.5, 0.5]])
        gp = TimeVaryingGP().fit(x, np.array([0.0]), np.array([1.0]))
        _mean_near, std_near = gp.predict(np.array([[0.5, 0.5]]), np.array([0.0]))
        _mean_far, std_far = gp.predict(np.array([[0.0, 1.0]]), np.array([0.0]))
        assert std_far > std_near

    def test_ucb_prefers_high_mean_or_uncertainty(self):
        rng = np.random.default_rng(2)
        x = rng.random((20, 1))
        y = x[:, 0]
        gp = TimeVaryingGP(noise=1e-4).fit(x, np.zeros(20), y)
        acq = gp.ucb(np.array([[0.1], [0.9]]), np.zeros(2))
        assert acq[1] > acq[0]

    def test_validation(self):
        gp = TimeVaryingGP()
        with pytest.raises(RuntimeError):
            gp.predict(np.zeros((1, 2)), np.zeros(1))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((2, 2)), np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError):
            TimeVaryingGP(time_decay=0.0)


class TestSchedulers:
    def _population(self, scores):
        return [Trial(trial_id=i, config={"learning_rate": 1e-3, "dropout": 0.1, "batch_size": 4, "flag": True},
                      score=s, best_score=s) for i, s in enumerate(scores)]

    def test_split_and_perturbation_decision(self):
        scheduler = PBTScheduler(toy_space(), quantile_fraction=0.25, seed=0)
        trials = self._population([1.0, 2.0, 3.0, 4.0])
        top, bottom = scheduler.split_population(trials)
        assert top[0].score == 1.0 and bottom[0].score == 4.0
        assert scheduler.needs_perturbation(trials[3], trials)
        assert not scheduler.needs_perturbation(trials[0], trials)
        donor = scheduler.choose_donor(trials[3], trials)
        assert donor.score <= 2.0

    def test_pbt_explore_stays_in_bounds(self):
        scheduler = PBTScheduler(toy_space(), seed=1)
        trials = self._population([1.0, 2.0, 3.0, 4.0])
        config = scheduler.explore(trials[3], trials[0], trials)
        assert 1e-4 <= config["learning_rate"] <= 1e-1
        assert config["batch_size"] in (2, 4, 8)

    def test_pb2_explore_uses_gp_after_enough_observations(self):
        space = toy_space()
        scheduler = PB2Scheduler(space, seed=2, num_candidates=16)
        trials = self._population([1.0, 2.0, 3.0, 4.0])
        # record improvements favouring high learning rates
        for epoch in range(8):
            for trial in trials:
                lr = 10 ** np.random.default_rng(epoch * 10 + trial.trial_id).uniform(-4, -1)
                trial.config["learning_rate"] = lr
                improvement_driver = np.log10(lr)
                scheduler.record_interval(trial, epoch, previous_score=5.0, new_score=5.0 - (improvement_driver + 4) * 0.1)
        assert scheduler.num_observations > 4
        config = scheduler.explore(trials[3], trials[0], trials)
        assert 1e-4 <= config["learning_rate"] <= 1e-1

    def test_pb2_falls_back_to_pbt_without_observations(self):
        scheduler = PB2Scheduler(toy_space(), seed=3)
        trials = self._population([1.0, 2.0])
        config = scheduler.explore(trials[1], trials[0], trials)
        assert set(config) == set(trials[0].config)

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            PBTScheduler(toy_space(), quantile_fraction=0.9)


class TestTrialAndRandomSearch:
    def test_trial_reporting(self):
        trial = Trial(trial_id=0, config={"a": 1})
        trial.report(1, 5.0)
        trial.report(2, 3.0)
        trial.report(3, 4.0)
        assert trial.best_score == 3.0
        assert trial.config_at_best() == {"a": 1}
        assert trial.epoch == 3
        assert trial.state is TrialState.PENDING

    def test_random_search_finds_good_region(self):
        space = SearchSpace().add(Uniform("x", 0.0 + 1e-6, 1.0))
        search = RandomSearch(space, num_trials=40, seed=0)
        best = search.run(lambda config: (config["x"] - 0.3) ** 2)
        assert abs(best.config["x"] - 0.3) < 0.15
        assert len(search.trials) == 40
        with pytest.raises(ValueError):
            RandomSearch(space, num_trials=0)


class TestTuneRunner:
    def _factory(self, workbench):
        def factory(config):
            model = SGCNN(SGCNNConfig.scaled_down(), seed=1)
            return Trainer(
                model, workbench.train_samples[:16], workbench.val_samples[:6],
                TrainerConfig(batch_size=int(config["batch_size"]), learning_rate=float(config["learning_rate"]), seed=1),
            )
        return factory

    def _space(self):
        space = SearchSpace()
        space.add(Uniform("learning_rate", 1e-4, 1e-2, log=True))
        space.add(Choice("batch_size", (4, 8)))
        return space

    def test_population_runs_and_exploits(self, workbench):
        space = self._space()
        runner = TuneRunner(
            self._factory(workbench), space, PB2Scheduler(space, seed=0),
            TuneConfig(population_size=3, max_epochs=4, perturbation_interval=2, seed=0),
        )
        result = runner.run()
        assert result.epochs_run == 4
        assert len(result.trials) == 3
        assert np.isfinite(result.best_score)
        assert result.best_config["batch_size"] in (4, 8)
        assert all(len(t.history) == 4 for t in result.trials)
        # at least one exploit event should normally fire with 2 perturbation rounds
        assert isinstance(result.exploit_events, list)
        assert result.best_state_dict  # weights of the best trial are exposed

    def test_session_splitting_matches_single_run_epochs(self, workbench):
        space = self._space()
        runner = TuneRunner(
            self._factory(workbench), space, PBTScheduler(space, seed=1),
            TuneConfig(population_size=2, max_epochs=4, perturbation_interval=2, session_epoch_limit=2, seed=1),
        )
        result = runner.run()
        assert result.sessions == 2
        assert result.epochs_run == 4
