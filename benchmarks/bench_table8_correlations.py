"""Table 8 — correlation of predicted binding and percent inhibition (>1 % inhibitors)."""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.experiments import table8


def test_table8_per_target_correlations(benchmark, workbench, campaign):
    rows = benchmark.pedantic(table8.run_table8, args=(workbench, campaign), rounds=1, iterations=1)
    write_artifact("table8_correlations.txt", table8.render(rows))
    claims = table8.qualitative_claims(rows)
    claims_text = "\n".join(f"{k}: {v}" for k, v in claims.items())
    write_artifact("table8_claims.txt", claims_text)

    methods = {row.method for row in rows}
    assert methods == {"Vina", "AMPL MM/GBSA", "Coherent Fusion"}
    finite = [row for row in rows if np.isfinite(row.pearson)]
    assert finite, "at least some (method, target) pairs must have enough active compounds"
    # the paper's headline observation: these correlations are low
    assert claims["correlations_are_low"]
    for row in finite:
        benchmark.extra_info[f"{row.method}/{row.target}"] = round(row.pearson, 3)
