"""Table 1 — hyper-parameter search space exposed to the PB2 optimization.

Regenerates the per-model search-space definition (ranges and options) and
benchmarks configuration sampling, which is the inner loop of every PB2
explore step.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.eval.reports import format_table
from repro.experiments.tables2to5 import table1_search_space_summary
from repro.hpo.space import cnn3d_search_space, fusion_search_space, sgcnn_search_space


def test_table1_search_space_definition(benchmark):
    """Render the Table 1 search space and benchmark sampling from it."""
    spaces = {"3D-CNN": cnn3d_search_space(), "SG-CNN": sgcnn_search_space(), "Fusion": fusion_search_space()}
    rng = np.random.default_rng(0)

    def sample_all():
        return [space.sample(rng) for space in spaces.values()]

    configs = benchmark(sample_all)
    assert len(configs) == 3

    summary = table1_search_space_summary()
    rows = []
    for model_name, dims in summary.items():
        for dim_name, description in dims.items():
            rows.append([model_name, dim_name, description])
    text = format_table(["model", "hyper-parameter", "range"], rows, title="Table 1 — PB2 search space")
    write_artifact("table1_search_space.txt", text)

    # the paper's headline ranges are present
    assert summary["Fusion"]["batch_size"].endswith("56))") or "56" in summary["Fusion"]["batch_size"]
    assert "log-uniform" in summary["Fusion"]["learning_rate"]
    assert "2, 3, 4, 5, 6, 7, 8" in summary["SG-CNN"]["covalent_k"]
