"""Ablation benches for the design choices DESIGN.md calls out.

Not paper tables, but quantitative checks of the qualitative claims the
paper makes about its design: pre-trained heads help Coherent Fusion,
quintile sub-sampling covers the affinity range better than random
splitting, rotational augmentation discourages rotation-dependent
features, and PB2 is competitive with random search at an equal budget.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.eval.reports import format_table
from repro.experiments import ablations, tables2to5
from repro.hpo.random_search import RandomSearch
from repro.hpo.space import SearchSpace, Uniform, Choice
from repro.models.config import SGCNNConfig
from repro.models.sgcnn import SGCNN
from repro.models.train import Trainer, TrainerConfig


def test_pretrained_vs_scratch_heads(benchmark, workbench):
    result = benchmark.pedantic(ablations.pretrained_vs_scratch, args=(workbench,), kwargs={"epochs": 2}, rounds=1, iterations=1)
    write_artifact(
        "ablation_pretrained.txt",
        f"Coherent Fusion val MSE, pre-trained heads: {result.variant_loss:.3f}\n"
        f"Coherent Fusion val MSE, heads from scratch: {result.baseline_loss:.3f}\n"
        f"improvement: {result.improvement:+.3f}",
    )
    assert np.isfinite(result.improvement)


def test_quintile_vs_random_split(benchmark, workbench):
    result = benchmark(ablations.quintile_vs_random_split, workbench)
    rows = [[k, v] for k, v in result.items()]
    write_artifact("ablation_split.txt", format_table(["metric", "value"], rows, title="quintile vs random split coverage"))
    assert result["quintile_bins_covered"] >= result["random_bins_covered"]


def test_rotation_augmentation(benchmark, workbench):
    probe = benchmark.pedantic(ablations.rotation_invariance_probe, args=(workbench,), kwargs={"num_samples": 6}, rounds=1, iterations=1)
    effect = ablations.rotation_augmentation_effect(workbench, epochs=2)
    write_artifact(
        "ablation_rotation.txt",
        f"mean |prediction change| under random rotation: {probe:.3f} pK units\n"
        f"val MSE with augmentation: {effect.variant_loss:.3f}\n"
        f"val MSE without augmentation: {effect.baseline_loss:.3f}",
    )
    assert probe >= 0.0


def test_pb2_vs_random_search_budget_matched(benchmark, workbench):
    """PB2 and random search with the same number of training epochs."""
    space = SearchSpace()
    space.add(Uniform("learning_rate", 1e-4, 1e-2, log=True))
    space.add(Choice("batch_size", (4, 8)))

    def evaluate(config):
        model = SGCNN(SGCNNConfig.scaled_down(), seed=2)
        trainer = Trainer(
            model, workbench.train_samples, workbench.val_samples,
            TrainerConfig(epochs=2, batch_size=int(config["batch_size"]), learning_rate=float(config["learning_rate"]), seed=2),
        )
        return trainer.fit().best_val_loss

    def run_random():
        return RandomSearch(space, num_trials=4, seed=0).run(evaluate).best_score

    random_best = benchmark.pedantic(run_random, rounds=1, iterations=1)
    pb2_outcome = tables2to5.optimize_sgcnn(workbench, population=4, epochs=2, interval=1, seed=0)
    write_artifact(
        "ablation_pb2_vs_random.txt",
        f"best val MSE, random search (4 trials x 2 epochs): {random_best:.3f}\n"
        f"best val MSE, PB2          (4 trials x 2 epochs): {pb2_outcome.best_score:.3f}",
    )
    assert np.isfinite(random_best) and np.isfinite(pb2_outcome.best_score)
