"""Figure 4 — strong scaling of a single Coherent Fusion scoring job.

Two series are regenerated: the analytic paper-scale curves (1/2/4/8 nodes
at per-rank batch sizes 12/23/56) and a measured in-process scaling sweep
that runs a real multi-rank ``DistributedTrainer`` (rank-0 parameter
broadcast + exact gradient all-reduce) at 1/2/4 ranks, demonstrating the
same qualitative shape on the training side.
"""

from benchmarks.conftest import write_artifact
from repro.eval.reports import render_series
from repro.experiments import figure4


def test_figure4_modelled_strong_scaling(benchmark):
    result = benchmark(figure4.run_figure4)
    lines = []
    for batch, rows in sorted(result.modelled.items()):
        lines.append(render_series(f"batch size {batch} per rank", [n for n, _ in rows], [t for _, t in rows],
                                   "nodes", "job run time (minutes)"))
    lines.append("")
    lines.append("Job failure rate by node count (§4.3): " + ", ".join(f"{n}: {p:.0%}" for n, p in sorted(result.failure_rates.items())))
    write_artifact("figure4_strong_scaling.txt", "\n".join(lines))
    claims = figure4.qualitative_claims(result)
    assert all(claims.values()), claims


def test_figure4_measured_scaling(benchmark, workbench):
    result = benchmark.pedantic(
        figure4.run_figure4,
        kwargs={"workbench": workbench, "measure": True, "measured_poses": 24},
        rounds=1,
        iterations=1,
    )
    lines = ["Measured in-process DistributedTrainer scaling (ranks vs seconds):"]
    for batch, rows in sorted(result.measured.items()):
        lines.append(render_series(f"chunk {batch}", [r for r, _ in rows], [t for _, t in rows], "ranks", "seconds"))
    write_artifact("figure4_measured_scaling.txt", "\n".join(lines))
    assert result.measured
    for rows in result.measured.values():
        assert [r for r, _ in rows] == [1, 2, 4]
