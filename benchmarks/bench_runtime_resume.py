"""Campaign runtime — cold-run vs. checkpoint-resume wall time, fault retries.

The paper's throughput/fault analysis (§4.3, Figure 4) assumes the
screening pipeline survives faults and restarts; the stage runtime makes
that concrete with content-keyed checkpoints and fault-injected retries.
This benchmark records a JSON artifact
(``benchmarks/artifacts/runtime_resume.json``) with the cold vs. resumed
wall time of the same mini-campaign and the retry counts the runtime
absorbs at increasing injected fault rates, so later PRs have a
resilience/perf trajectory to beat.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import write_artifact
from repro.hpc.faults import FaultInjector
from repro.runtime import CampaignRuntime, RetryPolicy, RuntimeConfig
from repro.screening.costfunction import CompoundCostFunction
from repro.screening.pipeline import CampaignConfig

FAULT_RATES = (0.0, 0.1, 0.3)


def _mini_config() -> CampaignConfig:
    return CampaignConfig(
        library_counts={"emolecules": 8, "enamine": 6},
        poses_per_compound=2,
        compounds_tested_per_site=4,
        seed=2021,
        nodes_per_job=2,
        gpus_per_node=2,
    )


def _make_runtime(workbench, runtime_config: RuntimeConfig) -> CampaignRuntime:
    return CampaignRuntime(
        model=workbench.coherent_fusion,
        featurizer=workbench.featurizer,
        campaign=_mini_config(),
        runtime=runtime_config,
        cost_function=CompoundCostFunction(),
        interaction_model=workbench.interaction_model,
    )


def test_runtime_cold_vs_resume(benchmark, workbench, tmp_path_factory):
    """Cold checkpointed run, then a resume restoring every stage."""
    checkpoint_dir = tmp_path_factory.mktemp("runtime-checkpoints")

    def cold_then_resume() -> dict:
        cold_runtime = _make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir)))
        started = time.perf_counter()
        cold_result = cold_runtime.run()
        cold_s = time.perf_counter() - started

        resumed_runtime = _make_runtime(workbench, RuntimeConfig(checkpoint_dir=str(checkpoint_dir)))
        started = time.perf_counter()
        resumed_result = resumed_runtime.run()
        resume_s = time.perf_counter() - started

        identical = {
            (r.site_name, r.compound_id, r.pose_id): r.fusion_pk for r in cold_result.database.records()
        } == {
            (r.site_name, r.compound_id, r.pose_id): r.fusion_pk for r in resumed_result.database.records()
        }
        return {
            "cold_wall_s": cold_s,
            "resume_wall_s": resume_s,
            "speedup": cold_s / max(resume_s, 1e-9),
            "stages_restored": len(resumed_runtime.report.restored_stages()),
            "stages_total": len(resumed_runtime.stages),
            "bit_identical": identical,
        }

    row = benchmark.pedantic(cold_then_resume, rounds=1, iterations=1)

    fault_rows = []
    for rate in FAULT_RATES:
        fault_dir = tmp_path_factory.mktemp(f"runtime-faults-{int(rate * 100)}")
        runtime = _make_runtime(
            workbench,
            RuntimeConfig(
                checkpoint_dir=str(fault_dir),
                fault_injector=FaultInjector.uniform(rate, seed=9),
                retry=RetryPolicy(max_retries=25),
                modelled_schedule=True,
            ),
        )
        started = time.perf_counter()
        runtime.run()
        report = runtime.report.stage("fusion_scoring")
        fault_rows.append(
            {
                "fault_rate": rate,
                "wall_s": time.perf_counter() - started,
                "fusion_attempts": report.attempts,
                "fusion_retries": report.retries,
                "modelled_makespan_s": report.extra["modelled_schedule"]["makespan_s"],
            }
        )

    artifact = {"cold_vs_resume": row, "fault_sweep": fault_rows}
    write_artifact("runtime_resume.json", json.dumps(artifact, indent=2))

    assert row["bit_identical"]
    assert row["stages_restored"] == row["stages_total"]
    assert row["resume_wall_s"] < row["cold_wall_s"]
    assert fault_rows[0]["fusion_retries"] == 0  # rate 0.0 injects nothing
    # higher fault rates cost retries but never lose the campaign
    assert fault_rows[-1]["fusion_retries"] > fault_rows[0]["fusion_retries"]
    benchmark.extra_info["resume_speedup"] = row["speedup"]
    benchmark.extra_info["retries_at_30pct_faults"] = fault_rows[-1]["fusion_retries"]
