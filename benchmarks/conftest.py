"""Shared fixtures for the benchmark harness.

Every benchmark regenerates a specific table or figure of the paper.  The
expensive artefacts (trained model zoo, screening campaign) are built once
per session at a scale controlled by the ``REPRO_BENCH_SCALE`` environment
variable (``small`` by default, ``tiny`` for a quick smoke run) and shared
across benchmarks.  Rendered tables are written to
``benchmarks/artifacts/`` so the regenerated rows can be inspected after a
run and compared against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import build_workbench, run_campaign

ARTIFACT_DIR = Path(__file__).parent / "artifacts"


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered table/figure so results survive the benchmark run."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    (ARTIFACT_DIR / name).write_text(text + "\n")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def workbench(bench_scale):
    """Trained model zoo on the synthetic PDBbind dataset."""
    return build_workbench(bench_scale)


@pytest.fixture(scope="session")
def campaign(workbench, bench_scale):
    """A screening campaign sized for the retrospective analyses (Figures 5-7, Table 8)."""
    if bench_scale == "tiny":
        counts = {"emolecules": 10, "zinc_world_approved": 6}
        tested, poses = 8, 2
    else:
        counts = {"emolecules": 40, "enamine": 30, "zinc_world_approved": 20, "chembl": 10}
        tested, poses = 40, 3
    return run_campaign(
        workbench,
        library_counts=counts,
        compounds_tested_per_site=tested,
        poses_per_compound=poses,
        seed=2020,
    )
