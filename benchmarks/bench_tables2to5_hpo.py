"""Tables 2-5 — PB2 hyper-parameter optimization of the SG-CNN, 3D-CNN and Coherent Fusion.

Runs drastically scaled-down PB2 populations over the Table 1 search spaces
and reports the best configuration found next to the paper's final
hyper-parameters.  The purpose is to exercise the full population-based
bandit machinery (exploit, GP-bandit explore, pause/resume) — not to
recover the paper's exact values, which took 60,000 GPU hours.
"""

from benchmarks.conftest import write_artifact
from repro.eval.reports import format_table
from repro.experiments import tables2to5


def _render(outcome) -> str:
    keys = sorted(set(outcome.best_config) | {"learning_rate", "batch_size"})
    rows = []
    for key in keys:
        rows.append([key, outcome.best_config.get(key, "-"), outcome.paper_config.get(key, "-")])
    return format_table(
        ["hyper-parameter", "best found (scaled-down PB2)", "paper value"],
        rows,
        title=f"{outcome.model_name}: best validation MSE {outcome.best_score:.3f} "
        f"after {outcome.result.epochs_run} epochs x {len(outcome.result.trials)} trials",
    )


def test_table2_sgcnn_pb2(benchmark, workbench):
    outcome = benchmark.pedantic(
        tables2to5.optimize_sgcnn, args=(workbench,), kwargs={"population": 4, "epochs": 4, "interval": 2},
        rounds=1, iterations=1,
    )
    write_artifact("table2_sgcnn_hpo.txt", _render(outcome))
    assert outcome.best_score < float("inf")
    assert 2e-4 <= outcome.best_config["learning_rate"] <= 2e-2


def test_table3_cnn3d_pb2(benchmark, workbench):
    outcome = benchmark.pedantic(
        tables2to5.optimize_cnn3d, args=(workbench,), kwargs={"population": 3, "epochs": 4, "interval": 2},
        rounds=1, iterations=1,
    )
    write_artifact("table3_cnn3d_hpo.txt", _render(outcome))
    assert outcome.best_score < float("inf")
    assert 1e-6 <= outcome.best_config["learning_rate"] <= 1e-4


def test_table5_coherent_fusion_pb2(benchmark, workbench):
    outcome = benchmark.pedantic(
        tables2to5.optimize_coherent_fusion, args=(workbench,), kwargs={"population": 3, "epochs": 2, "interval": 1},
        rounds=1, iterations=1,
    )
    write_artifact("table5_coherent_fusion_hpo.txt", _render(outcome))
    assert outcome.best_score < float("inf")
    assert outcome.best_config["num_fusion_layers"] in (3, 4, 5)
