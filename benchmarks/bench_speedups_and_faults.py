"""§4.1-§4.3 — scorer cost comparison, job failure rates and fault-tolerant scheduling.

Regenerates: (a) the per-node cost comparison of Vina docking, MM/GBSA
rescoring and Fusion inference (10 poses/s, 0.067 poses/s, 2.7x / 403x
speedups); (b) the job-failure statistics by node count; (c) an LSF-style
scheduling simulation of a many-job screening campaign with fault
injection and requeueing, showing that small 4-node jobs lose little
throughput to failures.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.eval.reports import format_table
from repro.hpc.cluster import SimulatedCluster
from repro.hpc.faults import FaultInjector
from repro.hpc.performance import FusionThroughputModel, ScorerCostModel
from repro.hpc.scheduler import Job, JobScheduler, JobState, SchedulerConfig
from repro.screening.throughput import speedup_summary


def test_scorer_speed_comparison(benchmark):
    model = FusionThroughputModel()
    costs = ScorerCostModel()

    def compute():
        return {
            "vina_poses_per_second_per_node": costs.vina_poses_per_second_per_node,
            "mmgbsa_poses_per_second_per_node": costs.mmgbsa_poses_per_second_per_node,
            "fusion_poses_per_second_per_node": model.estimate().poses_per_second / 4.0,
            **speedup_summary(model),
        }

    values = benchmark(compute)
    rows = [[k, v] for k, v in values.items()]
    write_artifact("speedups.txt", format_table(["metric", "value"], rows, title="§4.1/§4.2 scorer throughput comparison"))
    assert values["fusion_vs_vina"] > 2.0
    assert values["fusion_vs_mmgbsa"] > 300.0
    assert values["vina_poses_per_second_per_node"] == 10.0


def test_job_failure_rates_by_node_count(benchmark):
    def measure():
        rates = {}
        for nodes in (1, 2, 4, 8):
            injector = FaultInjector(seed=17)
            failures = sum(1 for i in range(400) if injector.check(f"job-{nodes}-{i}", nodes) is not None)
            rates[nodes] = failures / 400
        return rates

    rates = benchmark(measure)
    rows = [[n, f"{rates[n]:.1%}", {1: "2%", 2: "2%", 4: "3%", 8: "20%"}[n]] for n in (1, 2, 4, 8)]
    write_artifact("fault_rates.txt", format_table(["nodes per job", "measured failure rate", "paper"], rows,
                                                   title="§4.3 job failure rate vs nodes per job"))
    assert rates[8] > rates[4] > 0.0
    assert rates[8] > 0.10


def test_fault_tolerant_campaign_scheduling(benchmark):
    """Schedule a 125-job screening allotment (500 nodes) under fault injection."""
    model = FusionThroughputModel()
    job_minutes = model.estimate().total_minutes

    def simulate():
        cluster = SimulatedCluster(num_nodes=500)
        scheduler = JobScheduler(
            cluster,
            SchedulerConfig(walltime_limit_seconds=12 * 3600),
            FaultInjector(seed=3),
        )
        for index in range(125):
            scheduler.submit(Job(name=f"fusion-job-{index}", num_nodes=4, duration_seconds=job_minutes * 60, max_retries=3))
        scheduler.run()
        return scheduler

    scheduler = benchmark.pedantic(simulate, rounds=1, iterations=1)
    states = scheduler.states()
    completed = sum(1 for s in states.values() if s is JobState.COMPLETED)
    retried = sum(1 for j in scheduler.jobs.values() if j.attempts > 1)
    makespan_hours = scheduler.makespan() / 3600.0
    text = "\n".join([
        f"jobs submitted: 125 (4 nodes each, {job_minutes:.0f} min modelled duration)",
        f"jobs completed: {completed}",
        f"jobs requiring requeue after faults: {retried}",
        f"campaign makespan: {makespan_hours:.2f} h (single fault-free wave would be {job_minutes / 60:.2f} h)",
    ])
    write_artifact("fault_tolerant_scheduling.txt", text)
    assert completed == 125  # requeueing recovers every failed job
    # failures only add waves for the affected jobs; overall makespan stays below 3 fault-free waves
    assert makespan_hours < 3.2 * job_minutes / 60.0
