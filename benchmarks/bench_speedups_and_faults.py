"""§4.1-§4.3 — scorer cost comparison, job failure rates and fault-tolerant scheduling.

Regenerates: (a) the per-node cost comparison of Vina docking, MM/GBSA
rescoring and Fusion inference (10 poses/s, 0.067 poses/s, 2.7x / 403x
speedups); (b) the job-failure statistics by node count; (c) an LSF-style
scheduling simulation of a many-job screening campaign with fault
injection and requeueing, showing that small 4-node jobs lose little
throughput to failures; (d) the supervised process pool's steady-state
overhead and its recovery behaviour after a real seeded worker kill
(``supervision.json``).
"""

import json
import time

import numpy as np

from benchmarks.conftest import write_artifact
from repro.eval.reports import format_table
from repro.hpc.cluster import SimulatedCluster
from repro.hpc.faults import FaultInjector
from repro.hpc.performance import FusionThroughputModel, ScorerCostModel
from repro.hpc.scheduler import Job, JobScheduler, JobState, SchedulerConfig
from repro.screening.throughput import speedup_summary


class _SleepDoublePayload:
    """Spawn-safe bench payload: a ~20 ms task body, optionally killable."""

    def __init__(self, delay_s: float, killer=None) -> None:
        self.delay_s = delay_s
        self.killer = killer

    def run_task(self, task: int) -> int:
        if self.killer is not None:
            self.killer.check(f"bench-task-{task}")
        time.sleep(self.delay_s)
        return task * 2


def test_scorer_speed_comparison(benchmark):
    model = FusionThroughputModel()
    costs = ScorerCostModel()

    def compute():
        return {
            "vina_poses_per_second_per_node": costs.vina_poses_per_second_per_node,
            "mmgbsa_poses_per_second_per_node": costs.mmgbsa_poses_per_second_per_node,
            "fusion_poses_per_second_per_node": model.estimate().poses_per_second / 4.0,
            **speedup_summary(model),
        }

    values = benchmark(compute)
    rows = [[k, v] for k, v in values.items()]
    write_artifact("speedups.txt", format_table(["metric", "value"], rows, title="§4.1/§4.2 scorer throughput comparison"))
    assert values["fusion_vs_vina"] > 2.0
    assert values["fusion_vs_mmgbsa"] > 300.0
    assert values["vina_poses_per_second_per_node"] == 10.0


def test_job_failure_rates_by_node_count(benchmark):
    def measure():
        rates = {}
        for nodes in (1, 2, 4, 8):
            injector = FaultInjector(seed=17)
            failures = sum(1 for i in range(400) if injector.check(f"job-{nodes}-{i}", nodes) is not None)
            rates[nodes] = failures / 400
        return rates

    rates = benchmark(measure)
    rows = [[n, f"{rates[n]:.1%}", {1: "2%", 2: "2%", 4: "3%", 8: "20%"}[n]] for n in (1, 2, 4, 8)]
    write_artifact("fault_rates.txt", format_table(["nodes per job", "measured failure rate", "paper"], rows,
                                                   title="§4.3 job failure rate vs nodes per job"))
    assert rates[8] > rates[4] > 0.0
    assert rates[8] > 0.10


def test_fault_tolerant_campaign_scheduling(benchmark):
    """Schedule a 125-job screening allotment (500 nodes) under fault injection."""
    model = FusionThroughputModel()
    job_minutes = model.estimate().total_minutes

    def simulate():
        cluster = SimulatedCluster(num_nodes=500)
        scheduler = JobScheduler(
            cluster,
            SchedulerConfig(walltime_limit_seconds=12 * 3600),
            FaultInjector(seed=3),
        )
        for index in range(125):
            scheduler.submit(Job(name=f"fusion-job-{index}", num_nodes=4, duration_seconds=job_minutes * 60, max_retries=3))
        scheduler.run()
        return scheduler

    scheduler = benchmark.pedantic(simulate, rounds=1, iterations=1)
    states = scheduler.states()
    completed = sum(1 for s in states.values() if s is JobState.COMPLETED)
    retried = sum(1 for j in scheduler.jobs.values() if j.attempts > 1)
    makespan_hours = scheduler.makespan() / 3600.0
    text = "\n".join([
        f"jobs submitted: 125 (4 nodes each, {job_minutes:.0f} min modelled duration)",
        f"jobs completed: {completed}",
        f"jobs requiring requeue after faults: {retried}",
        f"campaign makespan: {makespan_hours:.2f} h (single fault-free wave would be {job_minutes / 60:.2f} h)",
    ])
    write_artifact("fault_tolerant_scheduling.txt", text)
    assert completed == 125  # requeueing recovers every failed job
    # failures only add waves for the affected jobs; overall makespan stays below 3 fault-free waves
    assert makespan_hours < 3.2 * job_minutes / 60.0


def test_supervised_pool_overhead_and_kill_recovery(benchmark):
    """Supervision must be free when nothing fails and cheap when a worker dies.

    Row 1: steady-state overhead of ``SupervisedTaskPool`` over a bare
    ``ProcessTaskPool`` on ~20 ms task bodies (< 1.05x — dispatch stays
    in the caller's thread).  Row 2: a seeded ``ProcessKillFault``
    SIGKILLs a worker mid-run; the pool respawns, the lost task re-runs,
    and the artifact records the recovery latency and respawn count.
    """
    from repro.parallel import ProcessTaskPool, SupervisedTaskPool
    from repro.telemetry import MetricsRegistry

    num_tasks, delay_s, workers = 40, 0.02, 2
    tasks = list(range(num_tasks))
    expected = [t * 2 for t in tasks]

    # Steady-state overhead is measured as *serial dispatch round-trips*
    # (submit → worker → result, one task in flight): the per-task cost
    # supervision adds is a callback hop, and serial round-trips expose
    # it without the scheduler noise a saturated pipeline suffers on
    # small CI machines.  Min-of-3 trials rejects contention spikes.
    def timed_serial(pool):
        started = time.perf_counter()
        results = [pool.run(t) for t in tasks]
        return results, time.perf_counter() - started

    with ProcessTaskPool(_SleepDoublePayload(delay_s), max_workers=1) as bare:
        bare.warm()
        timed_serial(bare)  # absorb spawn cost before timing
        trials = [timed_serial(bare) for _ in range(3)]
        bare_results = trials[0][0]
        bare_s = min(elapsed for _, elapsed in trials)

    registry = MetricsRegistry()
    with SupervisedTaskPool(
        _SleepDoublePayload(delay_s), max_workers=1, registry=registry
    ) as supervised:
        supervised.warm(wait=True)
        timed_serial(supervised)
        trials = [timed_serial(supervised) for _ in range(3)]
        supervised_results = trials[0][0]
        supervised_s = min(elapsed for _, elapsed in trials)
    assert bare_results == supervised_results == expected
    overhead = supervised_s / bare_s
    assert registry.snapshot()["counters"].get("supervision.respawns", 0) == 0

    # seeded chaos: one worker is SIGKILL'd on its first attempt at a
    # deterministic task; the run must still return every result
    injector = FaultInjector(seed=11)
    killer = injector.plan_process_kills([f"bench-task-{t}" for t in tasks], count=1)
    chaos_registry = MetricsRegistry()

    def faulted_run():
        with SupervisedTaskPool(
            _SleepDoublePayload(delay_s, killer=killer),
            max_workers=workers,
            registry=chaos_registry,
        ) as pool:
            pool.warm(wait=True)
            # batch submission keeps tasks in flight so the kill hits a busy pool
            started = time.perf_counter()
            results = [future.result() for future in [pool.submit(t) for t in tasks]]
            return results, time.perf_counter() - started

    (faulted_results, faulted_s) = benchmark.pedantic(faulted_run, rounds=1, iterations=1)
    assert faulted_results == expected
    chaos = chaos_registry.snapshot()
    respawns = chaos["counters"]["supervision.respawns"]
    respawn_summary = chaos["histograms"]["supervision.respawn_s"]
    assert respawns >= 1
    document = {
        "steady_state": {
            "tasks": num_tasks,
            "task_body_s": delay_s,
            "bare_pool_s": round(bare_s, 4),
            "supervised_pool_s": round(supervised_s, 4),
            "overhead_ratio": round(overhead, 4),
        },
        "kill_recovery": {
            "respawns": int(respawns),
            "redispatches": int(chaos["counters"].get("supervision.redispatches", 0)),
            "faulted_run_s": round(faulted_s, 4),
            "recovery_latency_s": {
                "mean": round(respawn_summary["mean"], 4),
                "max": round(respawn_summary["max"], 4),
            },
        },
    }
    write_artifact("supervision.json", json.dumps(document, indent=2))
    assert overhead < 1.05
