"""Figure 5 — Coherent Fusion predicted affinity vs experimental percent inhibition.

Regenerates the per-target scatter series (compounds with >1 % inhibition)
from the simulated screening campaign and records per-target counts,
matching the structure of the paper's figure (Mpro at 100 µM, spike at
10 µM).
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.eval.reports import format_table
from repro.experiments import figure5


def test_figure5_scatter_series(benchmark, workbench, campaign):
    series = benchmark.pedantic(figure5.run_figure5, args=(workbench, campaign), rounds=1, iterations=1)
    rows = []
    lines = []
    for site_name, data in sorted(series.items()):
        rows.append([site_name, data.concentration_um, data.num_points,
                     float(np.mean(data.predicted_pk)) if data.num_points else float("nan"),
                     float(np.mean(data.percent_inhibition)) if data.num_points else float("nan")])
        for cid, pk, inhibition in zip(data.compound_ids, data.predicted_pk, data.percent_inhibition):
            lines.append(f"{site_name}  {cid}  predicted_pk={pk:.2f}  inhibition={inhibition:.1f}%")
    text = format_table(
        ["site", "assay concentration (uM)", "active compounds", "mean predicted pK", "mean % inhibition"],
        rows,
        title="Figure 5 — predicted affinity vs percent inhibition (>1% inhibitors)",
    )
    write_artifact("figure5_prediction_vs_inhibition.txt", text + "\n\n" + "\n".join(lines))

    claims = figure5.qualitative_claims(series)
    assert claims["all_four_targets_present"]
    assert claims["protease_at_100um"] and claims["spike_at_10um"]
