"""Online serving throughput — requests/s and latency vs batch size and replicas.

The batch campaign's contract is poses/s (Table 7); the online serving
subsystem's contract is sustained requests/s and tail latency.  This
benchmark sweeps the two first-order knobs — micro-batch size and
replica count — over identical request traffic and records a JSON
artifact (``benchmarks/artifacts/serving_throughput.json``) so later
PRs have a perf trajectory to beat.  A second sweep drives the same
traffic through process-backend replicas (``ServingConfig(backend=
"process")``: one spawned model process per replica, scores bit-identical
to the thread rows) so the artifact tracks both execution backends.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

from benchmarks.conftest import write_artifact
from repro.chem.complexes import ProteinLigandComplex
from repro.serving import ScoringService, ServingConfig
from repro.telemetry import MetricsRegistry

REPLICA_COUNTS = (1, 2, 4)
BATCH_SIZES = (2, 8)
NUM_CLIENTS = 8


def _request_traffic(campaign, limit: int = 48) -> list[ProteinLigandComplex]:
    site_name = campaign.database.sites()[0]
    site = campaign.sites[site_name]
    records = [r for r in campaign.database.records() if r.site_name == site_name][:limit]
    return [
        ProteinLigandComplex(site, r.pose, complex_id=r.compound_id, pose_id=r.pose_id)
        for r in records
    ]


def _drive(
    workbench,
    traffic,
    num_replicas: int,
    max_batch_size: int,
    registry: MetricsRegistry | None = None,
    backend: str = "thread",
) -> dict:
    config = ServingConfig(
        max_batch_size=max_batch_size,
        max_wait_s=0.002,
        num_replicas=num_replicas,
        queue_capacity=max(len(traffic), max_batch_size),
        cache_enabled=False,  # measure raw scoring throughput, not cache hits
        backend=backend,
    )
    with ScoringService(
        model=workbench.coherent_fusion,
        featurizer=workbench.featurizer,
        config=config,
        registry=registry,
    ) as service:
        with ThreadPoolExecutor(max_workers=NUM_CLIENTS) as clients:
            pending = list(clients.map(service.submit, traffic))
        for handle in pending:
            handle.result(timeout=120.0)
        snap = service.snapshot()
    return {
        "num_replicas": num_replicas,
        "max_batch_size": max_batch_size,
        "backend": backend,
        "num_clients": NUM_CLIENTS,
        "num_requests": len(traffic),
        "requests_per_second": snap.requests_per_second,
        "requests_per_second_lifetime": snap.requests_per_second_lifetime,
        "latency_p50_ms": snap.latency_p50_ms,
        "latency_p99_ms": snap.latency_p99_ms,
        "mean_batch_size": snap.mean_batch_size,
        "batch_occupancy": snap.batch_occupancy,
    }


def test_serving_throughput_sweep(benchmark, workbench, campaign):
    """Sweep replicas x batch size; emit the JSON perf-trajectory record."""
    traffic = _request_traffic(campaign)
    registry = MetricsRegistry()

    def sweep() -> list[dict]:
        rows = []
        for num_replicas in REPLICA_COUNTS:
            for max_batch_size in BATCH_SIZES:
                rows.append(_drive(workbench, traffic, num_replicas, max_batch_size, registry))
        # process-backend replicas (one spawned model process each, weights
        # shipped once at startup): same traffic, largest batch size only —
        # the thread rows already map the batch-size axis
        for num_replicas in REPLICA_COUNTS:
            rows.append(
                _drive(
                    workbench, traffic, num_replicas, BATCH_SIZES[-1], registry,
                    backend="process",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_artifact(
        "serving_throughput.json",
        json.dumps({"rows": rows, "registry": registry.snapshot()}, indent=2),
    )

    assert {row["num_replicas"] for row in rows} >= set(REPLICA_COUNTS)
    for row in rows:
        assert row["requests_per_second"] > 0
        assert row["latency_p99_ms"] >= row["latency_p50_ms"]
    best = max(rows, key=lambda r: r["requests_per_second"])
    benchmark.extra_info["best_requests_per_second"] = best["requests_per_second"]
    benchmark.extra_info["best_config"] = f"replicas={best['num_replicas']} batch={best['max_batch_size']}"


def test_serving_warm_cache_repeat(benchmark, workbench, campaign):
    """A warm-cache replay serves identical traffic with hit-rate ~1."""
    traffic = _request_traffic(campaign, limit=24)
    config = ServingConfig(max_batch_size=8, num_replicas=2, queue_capacity=64)
    with ScoringService(
        model=workbench.coherent_fusion, featurizer=workbench.featurizer, config=config
    ) as service:
        cold = [service.submit(c).result(timeout=120.0) for c in traffic]
        service.metrics.reset()

        def warm_pass():
            return [service.submit(c).result(timeout=120.0) for c in traffic]

        warm = benchmark.pedantic(warm_pass, rounds=1, iterations=1)
        snap = service.snapshot()
    assert snap.cache_hit_rate >= 0.99
    assert [r.score for r in warm] == [r.score for r in cold]
    benchmark.extra_info["warm_requests_per_second"] = snap.requests_per_second
    benchmark.extra_info["cache_hit_rate"] = snap.cache_hit_rate
