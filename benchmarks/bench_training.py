"""Training throughput — scalar loop vs vectorized flat path vs N ranks.

Trains the same SG-CNN on the same samples three ways at one global batch
size and reports samples/s:

* ``scalar`` — the original :class:`~repro.models.train.Trainer`
  (per-graph dense block-diagonal message passing, per-parameter
  optimizer loop);
* ``vectorized`` — a 1-rank
  :class:`~repro.models.train.DistributedTrainer` (flat edge-list
  message passing, fused whole-model optimizer step);
* ``ranks-N`` — the same trainer at 2 and 4 thread ranks.

The vectorized path must beat the scalar loop by at least 3x — the dense
path's O((batch x nodes)^2) adjacency work is the cost the flat layout
removes.  Results land in ``training_throughput.json``.
"""

import json
import time

from benchmarks.conftest import write_artifact
from repro.models.config import SGCNNConfig
from repro.models.sgcnn import SGCNN
from repro.models.train import (
    DistributedTrainer,
    DistributedTrainerConfig,
    Trainer,
    TrainerConfig,
)

EPOCHS = 2
SEED = 11


def _samples(workbench, minimum: int = 48) -> list:
    samples = list(workbench.train_samples)
    while len(samples) < minimum:
        samples.extend(workbench.train_samples)
    return samples[:minimum]


def _throughput(fit, num_samples: int) -> float:
    start = time.perf_counter()
    fit()
    return EPOCHS * num_samples / (time.perf_counter() - start)


def test_training_throughput(workbench):
    samples = _samples(workbench)
    n = len(samples)

    scalar = Trainer(
        SGCNN(SGCNNConfig.scaled_down(), seed=7),
        samples,
        config=TrainerConfig(epochs=EPOCHS, batch_size=n, seed=SEED),
    )
    results = {"samples": n, "epochs": EPOCHS, "global_batch": n, "samples_per_second": {}}
    results["samples_per_second"]["scalar"] = _throughput(scalar.fit, n)

    for ranks in (1, 2, 4):
        trainer = DistributedTrainer(
            SGCNN(SGCNNConfig.scaled_down(), seed=7),
            samples,
            config=DistributedTrainerConfig(
                epochs=EPOCHS,
                chunk_size=max(n // 4, 1),
                chunks_per_step=4,
                seed=SEED,
                ranks=ranks,
                backend="thread",
            ),
        )
        key = "vectorized" if ranks == 1 else f"ranks-{ranks}"
        results["samples_per_second"][key] = _throughput(trainer.fit, n)

    rates = results["samples_per_second"]
    results["vectorized_speedup"] = rates["vectorized"] / rates["scalar"]
    write_artifact("training_throughput.json", json.dumps(results, indent=2))
    assert results["vectorized_speedup"] >= 3.0, results
