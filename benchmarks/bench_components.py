"""Micro-benchmarks of the hot components of the screening pipeline.

These are not paper artefacts; they track the per-pose costs that determine
end-to-end throughput: featurization (the paper's identified bottleneck),
model inference for each head and fusion variant, docking score evaluation
and MM/GBSA rescoring.
"""

import numpy as np

from repro.docking.mmgbsa import MMGBSARescorer
from repro.docking.vina import VinaScorer
from repro.featurize.pipeline import collate_complexes
from repro.nn.tensor import no_grad


def _sample_complexes(workbench, n=8):
    return [entry.complex for entry in workbench.dataset.core[:n]]


def test_voxelization_per_complex(benchmark, workbench):
    complexes = _sample_complexes(workbench)
    benchmark(lambda: [workbench.featurizer.voxelizer.voxelize(c) for c in complexes])


def test_graph_construction_per_complex(benchmark, workbench):
    complexes = _sample_complexes(workbench)
    benchmark(lambda: [workbench.featurizer.graph_builder.build(c) for c in complexes])


def test_full_featurization_per_complex(benchmark, workbench):
    complexes = _sample_complexes(workbench)
    benchmark(lambda: [workbench.featurizer.featurize(c) for c in complexes])


def _batch(workbench, n=8):
    return collate_complexes(workbench.core_samples[:n])


def test_cnn3d_inference(benchmark, workbench):
    batch = _batch(workbench)
    workbench.cnn3d.eval()

    def forward():
        with no_grad():
            return workbench.cnn3d(batch).numpy()

    out = benchmark(forward)
    assert np.isfinite(out).all()


def test_sgcnn_inference(benchmark, workbench):
    batch = _batch(workbench)
    workbench.sgcnn.eval()

    def forward():
        with no_grad():
            return workbench.sgcnn(batch).numpy()

    out = benchmark(forward)
    assert np.isfinite(out).all()


def test_coherent_fusion_inference(benchmark, workbench):
    batch = _batch(workbench)
    workbench.coherent_fusion.eval()

    def forward():
        with no_grad():
            return workbench.coherent_fusion(batch).numpy()

    out = benchmark(forward)
    assert np.isfinite(out).all()


def test_coherent_fusion_training_step(benchmark, workbench):
    from repro.nn.loss import mse_loss
    from repro.nn.optim import Adam
    from repro.nn.tensor import Tensor

    batch = _batch(workbench)
    model = workbench.coherent_fusion
    optimizer = Adam(model.trainable_parameters(), lr=1e-4)

    def step():
        model.train()
        loss = mse_loss(model(batch), Tensor(batch["target"]))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return loss.item()

    value = benchmark(step)
    assert np.isfinite(value)


def test_vina_scoring_per_pose(benchmark, workbench):
    complexes = _sample_complexes(workbench)
    vina = VinaScorer()
    benchmark(lambda: [vina.score(c) for c in complexes])


def test_mmgbsa_scoring_per_pose(benchmark, workbench):
    complexes = _sample_complexes(workbench)
    mmgbsa = MMGBSARescorer()
    benchmark(lambda: [mmgbsa.score(c) for c in complexes])
