"""Table 6 — Fusion model performance on the PDBbind core-set crystal structures.

Trains nothing here (the workbench fixture owns training); the benchmark
measures core-set inference + metric computation and writes the regenerated
table next to the paper's values.  The qualitative claims checked are the
orderings the paper reports: Coherent Fusion is the best fusion variant by
RMSE and fusion beats the individual heads.
"""

from benchmarks.conftest import write_artifact
from repro.experiments import table6


def test_table6_core_set_metrics(benchmark, workbench):
    rows = benchmark.pedantic(table6.run_table6, args=(workbench,), rounds=1, iterations=1)
    text = table6.render(rows)
    write_artifact("table6_core_set.txt", text)

    claims = table6.qualitative_claims(rows)
    claims_text = "\n".join(f"{name}: {value}" for name, value in claims.items())
    write_artifact("table6_claims.txt", claims_text)

    # structural sanity of the regenerated table
    for metrics in rows.values():
        assert metrics["rmse"] > 0
        assert -1.0 <= metrics["pearson"] <= 1.0
    # the central claim of Table 6: fusing the heads does not hurt, and the
    # coherent variant is competitive with the best hand-crafted fusion
    assert rows["Coherent Fusion"]["rmse"] <= rows["Mid-level Fusion"]["rmse"] * 1.25
    benchmark.extra_info["rmse_coherent"] = rows["Coherent Fusion"]["rmse"]
    benchmark.extra_info["rmse_late"] = rows["Late Fusion"]["rmse"]
    benchmark.extra_info["rmse_mid"] = rows["Mid-level Fusion"]["rmse"]
