"""Featurization throughput — scalar reference vs the vectorized engine.

Featurization is the stage between docking output and fusion scoring,
so its complexes/s bounds campaign throughput whenever the scorer is
fast.  This benchmark sweeps grid dimension and batch size over
identical pose traffic and records scalar vs vectorized throughput (and
the fully cache-served replay) to a JSON artifact
(``benchmarks/artifacts/featurize_throughput.json``) — the perf
trajectory later PRs must not regress.  The engine is bit-identical to
the scalar path (see ``tests/test_featurize_engine.py``), so every
speedup row here is a pure win.

Scale knob: ``REPRO_BENCH_SCALE=tiny`` shrinks the traffic for the CI
smoke run; grid_dim 24 stays in the sweep at every scale because the
acceptance trajectory tracks the >= 5x speedup at that size.
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import write_artifact
from repro.chem.complexes import ProteinLigandComplex
from repro.chem.generator import GeneratorProfile, MoleculeGenerator
from repro.chem.prep import LigandPrepPipeline
from repro.chem.protein import make_sarscov2_targets
from repro.featurize.engine import FeaturePipeline, VectorizedVoxelizer
from repro.featurize.pipeline import ComplexFeaturizer
from repro.featurize.voxelize import VoxelGridConfig, Voxelizer

GRID_DIMS = (8, 16, 24)
MIN_SPEEDUP_AT_24 = 5.0


def _make_traffic(num_complexes: int, seed: int = 7) -> list[ProteinLigandComplex]:
    """Docked-pose-like traffic: generated ligands posed in one site."""
    site = make_sarscov2_targets(seed=2020)["protease1"]
    generator = MoleculeGenerator(GeneratorProfile(), seed=seed)
    prep = LigandPrepPipeline(minimize=False, seed=3)
    prepared = prep.process_many(generator.generate_many(num_complexes, prefix="bench"), library="bench")
    complexes = []
    for index, entry in enumerate(prepared):
        ligand = entry.molecule
        offset = np.array([0.3 * (index % 5) - 0.6, 0.2 * (index % 3), -2.0 + 0.25 * index])
        ligand = ligand.translate(-ligand.centroid() + offset)
        complexes.append(ProteinLigandComplex(site, ligand, complex_id=f"bench{index}", pose_id=index))
    return complexes


def _throughput(fn, batches: list[list[ProteinLigandComplex]]) -> float:
    start = time.perf_counter()
    total = 0
    for batch in batches:
        fn(batch)
        total += len(batch)
    elapsed = time.perf_counter() - start
    return total / elapsed if elapsed > 0 else float("inf")


def _sweep(traffic: list[ProteinLigandComplex], batch_sizes: tuple[int, ...]) -> list[dict]:
    rows = []
    for grid_dim in GRID_DIMS:
        config = VoxelGridConfig(grid_dim=grid_dim)
        scalar = Voxelizer(config)
        vectorized = VectorizedVoxelizer(config)
        vectorized.voxelize(traffic[0])  # build the per-site pocket block once
        for batch_size in batch_sizes:
            batches = [traffic[i : i + batch_size] for i in range(0, len(traffic), batch_size)]

            # both sides produce the stacked (N, C, D, D, D) batch product
            # that collation consumes, so the comparison is like-for-like
            scalar_cps = _throughput(lambda b: np.stack([scalar.voxelize(c) for c in b]), batches)
            vector_cps = _throughput(lambda b: vectorized.voxelize_many(b), batches)

            # full pipeline (voxel + graph), engine cold vs fully cached replay
            scalar_pipe = ComplexFeaturizer(config)
            engine = FeaturePipeline(config, cache_capacity=max(len(traffic), 16))
            pipeline_scalar_cps = _throughput(lambda b: scalar_pipe.featurize_many(b), batches)
            pipeline_engine_cps = _throughput(lambda b: engine.featurize_many(b), batches)
            pipeline_cached_cps = _throughput(lambda b: engine.featurize_many(b), batches)

            rows.append(
                {
                    "grid_dim": grid_dim,
                    "batch_size": batch_size,
                    "num_complexes": len(traffic),
                    "voxel_scalar_cps": scalar_cps,
                    "voxel_vectorized_cps": vector_cps,
                    "voxel_speedup": vector_cps / scalar_cps,
                    "pipeline_scalar_cps": pipeline_scalar_cps,
                    "pipeline_vectorized_cps": pipeline_engine_cps,
                    "pipeline_cached_cps": pipeline_cached_cps,
                    "pipeline_speedup": pipeline_engine_cps / pipeline_scalar_cps,
                }
            )
    return rows


def test_featurize_throughput_sweep(benchmark, bench_scale):
    """Sweep grid dim x batch size; emit the JSON perf-trajectory artifact."""
    if bench_scale == "tiny":
        traffic = _make_traffic(8)
        batch_sizes: tuple[int, ...] = (4,)
    else:
        traffic = _make_traffic(24)
        batch_sizes = (4, 16)

    rows = benchmark.pedantic(lambda: _sweep(traffic, batch_sizes), rounds=1, iterations=1)
    write_artifact("featurize_throughput.json", json.dumps(rows, indent=2))

    assert {row["grid_dim"] for row in rows} == set(GRID_DIMS)
    for row in rows:
        assert row["voxel_scalar_cps"] > 0 and row["voxel_vectorized_cps"] > 0
        # cache-served replay must never be slower than cold vectorized
        assert row["pipeline_cached_cps"] >= row["pipeline_vectorized_cps"] * 0.8

    at_24 = [row for row in rows if row["grid_dim"] == 24]
    best_speedup = max(row["voxel_speedup"] for row in at_24)
    assert best_speedup >= MIN_SPEEDUP_AT_24, (
        f"vectorized voxelization regressed: {best_speedup:.1f}x < {MIN_SPEEDUP_AT_24}x at grid_dim=24"
    )
    benchmark.extra_info["voxel_speedup_at_24"] = best_speedup
    benchmark.extra_info["best_pipeline_speedup"] = max(r["pipeline_speedup"] for r in rows)


def test_feature_cache_replay_throughput(benchmark, bench_scale):
    """A warm feature cache serves identical traffic at memory speed."""
    traffic = _make_traffic(6 if bench_scale == "tiny" else 16)
    config = VoxelGridConfig(grid_dim=16)
    engine = FeaturePipeline(config, cache_capacity=len(traffic))
    cold = engine.featurize_many(traffic)

    def replay():
        return engine.featurize_many(traffic)

    warm = benchmark.pedantic(replay, rounds=1, iterations=1)
    stats = engine.stats()
    assert stats.hits >= len(traffic)
    assert stats.ledger_closed
    for a, b in zip(cold, warm):
        assert np.array_equal(a.voxel, b.voxel)
