"""Figure 7 — top experimentally confirmed compounds per target."""

from benchmarks.conftest import write_artifact
from repro.experiments import figure7


def test_figure7_top_compounds(benchmark, workbench, campaign):
    compounds = benchmark.pedantic(
        figure7.run_figure7,
        args=(workbench, campaign),
        kwargs={"sites": ("protease1", "spike1"), "top_per_site": 2},
        rounds=1,
        iterations=1,
    )
    write_artifact("figure7_top_compounds.txt", figure7.render(compounds))
    claims = figure7.qualitative_claims(compounds)
    assert claims["has_compounds"]
    assert claims["top_compounds_active"]
    for compound in compounds:
        benchmark.extra_info[f"{compound.site_name}/{compound.compound_id}"] = round(compound.percent_inhibition, 1)
