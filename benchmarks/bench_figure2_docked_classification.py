"""Figure 2 / §3.4 — scoring docked poses of the core set.

Regenerates the Vina / MM/GBSA / Coherent Fusion comparison on docked
(rather than crystal) poses: Pearson correlations against the experimental
affinities and the strong-vs-weak binder precision/recall analysis.
"""

from benchmarks.conftest import write_artifact
from repro.eval.reports import format_table, render_pr_summary
from repro.experiments import figure2


def test_figure2_docked_core_set(benchmark, workbench):
    result = benchmark.pedantic(
        figure2.run_figure2,
        args=(workbench,),
        kwargs={"poses_per_compound": 4, "rmsd_filter": 8.0},
        rounds=1,
        iterations=1,
    )
    rows = [
        [method, result.correlations[method], result.spearman[method], result.paper_correlations.get(method, float("nan"))]
        for method in ("vina", "mmgbsa", "coherent_fusion")
    ]
    text = format_table(
        ["method", "Pearson (docked poses)", "Spearman", "paper Pearson"],
        rows,
        title=f"Figure 2 / §3.4 — docked core set ({result.num_compounds} compounds, "
        f"{result.num_strong} strong / {result.num_weak} weak)",
    )
    if result.classification:
        text += "\n\n" + render_pr_summary(result.classification, title="strong (pK>8) vs weak (pK<6) classification")
    write_artifact("figure2_docked_classification.txt", text)

    assert result.num_compounds > 0
    # the paper's ordering: the learned model handles docked-pose noise better
    # than the physics scorers
    assert result.correlations["coherent_fusion"] >= result.correlations["vina"] - 0.35
    benchmark.extra_info.update({f"pearson_{k}": v for k, v in result.correlations.items()})
