"""Streaming screening throughput and memory — the bounded-RSS claim.

The paper screens hundreds of millions of compounds on HPC; the
streaming engine (``repro.screening.stream``) claims peak memory
``O(shard_size + K)`` regardless of library size, with ``shard_size``
and ``workers`` as pure throughput knobs.  This benchmark pins both
claims into ``benchmarks/artifacts/streaming_throughput.json``:

* **memory flatness** — the real :class:`StreamingScreen.run` loop
  (work-stealing pool, reorder window, top-K + streaming-stats fold)
  drives 10k and then 100k compounds with a synthetic, vectorized shard
  executor standing in for the physics stages, under ``tracemalloc``.
  Peak traced memory must stay < ``MAX_MEMORY_GROWTH``x across the 10x
  library growth — the fold path, not the library, owns the RSS.
* **worker scaling** — the same synthetic engine (NumPy-heavy shard
  bodies that release the GIL) swept over ``workers`` ∈ {1, 4} for both
  execution backends; compounds/s must scale >= ``MIN_WORKER_SCALING``x
  on machines with >= 4 cores (recorded, not asserted, on smaller
  runners).  Process rows also record a *steady-state* throughput with
  the pool's one-time spawn/import cost (measured by a calibration run)
  subtracted — that is what a long campaign sees, and what the scaling
  assertion uses; raw elapsed wall clock is recorded next to it.
* **pipeline throughput** — the full prep → dock → MM/GBSA → fusion
  stream on a real (tiny) deck and model, swept over shard size and
  worker count, recording end-to-end compounds/s for the perf
  trajectory.  Shard size and worker count cannot move a bit of the
  results (``tests/test_streaming_screen.py`` pins that), so every
  throughput row is a pure win.

The synthetic executor replaces only ``_execute_shard`` — scores are a
pure vectorized function of the global compound index — so the measured
loop is exactly the code path a mega-library campaign runs.

A second benchmark pins the observability contract: full tracing
(``repro.telemetry``) must cost < ``MAX_TELEMETRY_OVERHEAD`` on the
smallest synthetic row (best-of-3, enabled vs disabled), and a traced
pipeline run must export a schema-valid run record
(``benchmarks/artifacts/streaming_run_record.json``).
"""

from __future__ import annotations

import json
import os
import resource
import time
import tracemalloc

import numpy as np

from benchmarks.conftest import write_artifact
from repro.chem.protein import make_sarscov2_targets
from repro.datasets.libraries import build_screening_deck
from repro.screening.stream import ShardOutcome, StreamConfig, StreamingScreen
from repro.telemetry import Telemetry, validate_run_record

MAX_MEMORY_GROWTH = 1.5
MIN_WORKER_SCALING = 2.0
MAX_TELEMETRY_OVERHEAD = 1.05
MEMORY_SIZES = (10_000, 100_000)
SCALING_COMPOUNDS = 20_000
PROCESS_SCALING_COMPOUNDS = 200_000
WORKER_COUNTS = (1, 4)


class _SyntheticRange:
    """A length-only compound source: the engine never materializes it."""

    def __init__(self, size: int) -> None:
        self._size = size

    def __len__(self) -> int:
        return self._size


class _SyntheticFoldEngine(StreamingScreen):
    """The real streaming loop over a synthetic, vectorized shard stage.

    ``_execute_shard`` derives each compound's best score as a pure
    function of its global index (sin-basis features through a fixed
    random MLP — dense NumPy work that releases the GIL, like the real
    batched docking/featurize kernels), so shard results are
    partition-invariant and the scheduler/fold machinery under test is
    byte-for-byte the production one.
    """

    FEATURE_DIM = 192
    ROUNDS = 4

    def __init__(self, sites, config: StreamConfig, telemetry: Telemetry | None = None) -> None:
        super().__init__(
            model=object(), featurizer=None, sites=sites, config=config, telemetry=telemetry
        )
        rng = np.random.default_rng(12345)
        self._freqs = rng.uniform(0.1, 3.0, self.FEATURE_DIM)
        self._weights = rng.standard_normal((self.FEATURE_DIM, self.FEATURE_DIM)) / np.sqrt(
            self.FEATURE_DIM
        )
        self._readout = rng.standard_normal(self.FEATURE_DIM) / self.FEATURE_DIM

    def _execute_shard(self, index: int, start: int, stop: int, source) -> ShardOutcome:
        indices = np.arange(start, stop, dtype=np.float64)
        activations = np.sin(np.outer(indices * 1e-4, self._freqs))
        for _ in range(self.ROUNDS):
            activations = np.tanh(activations @ self._weights)
        scores = activations @ self._readout
        ids = [f"SYN-{int(i):09d}" for i in range(start, stop)]
        best_scores = {
            name: list(zip(ids, (scores + site_offset).tolist()))
            for site_offset, name in enumerate(self.sites)
        }
        return ShardOutcome(
            index=index,
            start=start,
            stop=stop,
            status="executed",
            best_scores=best_scores,
            num_compounds=stop - start,
        )


def _run_synthetic(
    sites,
    compounds: int,
    workers: int,
    shard_size: int = 512,
    telemetry: Telemetry | None = None,
    backend: str = "thread",
) -> tuple[float, object]:
    config = StreamConfig(shard_size=shard_size, workers=workers, top_k=50, seed=0, backend=backend)
    engine = _SyntheticFoldEngine(sites, config, telemetry=telemetry)
    started = time.perf_counter()
    result = engine.run(_SyntheticRange(compounds))
    return time.perf_counter() - started, result


def _memory_rows(sites) -> list[dict]:
    rows = []
    for compounds in MEMORY_SIZES:
        tracemalloc.start()
        elapsed, result = _run_synthetic(sites, compounds, workers=2)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.num_compounds == compounds
        rows.append(
            {
                "compounds": compounds,
                "shard_size": 512,
                "top_k": 50,
                "workers": 2,
                "peak_traced_mb": peak / 2**20,
                "ru_maxrss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
                "compounds_per_s": compounds / elapsed if elapsed > 0 else float("inf"),
            }
        )
    return rows


def _scaling_rows(sites) -> list[dict]:
    rows = []
    for workers in WORKER_COUNTS:
        # best-of-2 wall clock: robust to runner preemption
        elapsed = min(_run_synthetic(sites, SCALING_COMPOUNDS, workers)[0] for _ in range(2))
        rows.append(
            {
                "backend": "thread",
                "workers": workers,
                "compounds": SCALING_COMPOUNDS,
                "compounds_per_s": SCALING_COMPOUNDS / elapsed if elapsed > 0 else float("inf"),
            }
        )
    rows.extend(_process_scaling_rows(sites))
    return rows


def _process_scaling_rows(sites) -> list[dict]:
    """Process-backend sweep with the one-time spawn cost factored out.

    A ``ProcessTaskPool`` pays a fixed startup toll — spawning children
    and importing the stack — that a campaign pays once per run, not per
    shard.  A calibration run (one trivial shard per worker, so the pool
    spawns its full width) measures that toll per worker count; the
    steady-state throughput divides by the remainder.  Raw elapsed wall
    clock is recorded alongside so the artifact keeps both truths.
    """
    rows = []
    for workers in WORKER_COUNTS:
        startup = _run_synthetic(sites, 512 * workers, workers, backend="process")[0]
        elapsed = _run_synthetic(sites, PROCESS_SCALING_COMPOUNDS, workers, backend="process")[0]
        steady = max(elapsed - startup, 1e-9)
        rows.append(
            {
                "backend": "process",
                "workers": workers,
                "compounds": PROCESS_SCALING_COMPOUNDS,
                "elapsed_s": elapsed,
                "startup_s": startup,
                "compounds_per_s": PROCESS_SCALING_COMPOUNDS / elapsed if elapsed > 0 else float("inf"),
                "steady_state_compounds_per_s": PROCESS_SCALING_COMPOUNDS / steady,
            }
        )
    return rows


def _pipeline_rows(workbench, bench_scale: str) -> list[dict]:
    sites = make_sarscov2_targets(seed=2020)
    sites = {"protease1": sites["protease1"]}
    deck = build_screening_deck(
        {"emolecules": 4 if bench_scale == "tiny" else 12}, seed=2020
    )
    rows = []
    for shard_size, workers, backend in (
        (2, 1, "thread"),
        (2, 4, "thread"),
        (2, 4, "process"),
        (len(deck), 1, "thread"),
    ):
        config = StreamConfig(
            shard_size=shard_size,
            workers=workers,
            backend=backend,
            top_k=10,
            poses_per_compound=2,
            docking_mc_steps=6,
            docking_restarts=1,
            mmgbsa_max_poses=2,
            seed=2020,
        )
        engine = StreamingScreen(workbench.coherent_fusion, workbench.featurizer, sites, config)
        started = time.perf_counter()
        result = engine.run(deck.molecules)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "compounds": len(deck),
                "shard_size": shard_size,
                "workers": workers,
                "backend": backend,
                "num_shards": result.num_shards,
                "steals": result.steals,
                "compounds_per_s": len(deck) / elapsed if elapsed > 0 else float("inf"),
            }
        )
    return rows


def test_streaming_throughput_and_memory(benchmark, workbench, bench_scale):
    """Memory-flatness + worker-scaling sweep; emit the JSON artifact."""
    sites = {"protease1": make_sarscov2_targets(seed=2020)["protease1"]}

    payload = benchmark.pedantic(
        lambda: {
            "memory": _memory_rows(sites),
            "scaling": _scaling_rows(sites),
            "pipeline": _pipeline_rows(workbench, bench_scale),
        },
        rounds=1,
        iterations=1,
    )

    memory = payload["memory"]
    growth = memory[-1]["peak_traced_mb"] / memory[0]["peak_traced_mb"]
    scaling = payload["scaling"]

    def speedup(backend: str, metric: str) -> float:
        by_workers = {r["workers"]: r[metric] for r in scaling if r["backend"] == backend}
        return by_workers[WORKER_COUNTS[-1]] / by_workers[WORKER_COUNTS[0]]

    worker_speedup = speedup("thread", "compounds_per_s")
    process_speedup = speedup("process", "steady_state_compounds_per_s")
    payload["memory_growth_10x_library"] = growth
    payload["worker_scaling_1_to_4"] = worker_speedup
    payload["process_worker_scaling_1_to_4"] = process_speedup
    payload["cpu_count"] = os.cpu_count()
    write_artifact("streaming_throughput.json", json.dumps(payload, indent=2))

    assert growth < MAX_MEMORY_GROWTH, (
        f"streaming fold memory is not flat: {memory[0]['compounds']} -> "
        f"{memory[-1]['compounds']} compounds grew peak memory {growth:.2f}x "
        f">= {MAX_MEMORY_GROWTH}x"
    )
    for row in payload["pipeline"]:
        assert row["compounds_per_s"] > 0
    if (os.cpu_count() or 1) >= 4:
        assert worker_speedup >= MIN_WORKER_SCALING, (
            f"worker scaling regressed: 1 -> 4 workers gave {worker_speedup:.2f}x "
            f"< {MIN_WORKER_SCALING}x on a {os.cpu_count()}-core machine"
        )
        assert process_speedup >= MIN_WORKER_SCALING, (
            f"process-backend scaling regressed: 1 -> 4 workers gave "
            f"{process_speedup:.2f}x steady-state < {MIN_WORKER_SCALING}x "
            f"on a {os.cpu_count()}-core machine"
        )
    benchmark.extra_info["memory_growth_10x_library"] = growth
    benchmark.extra_info["worker_scaling_1_to_4"] = worker_speedup
    benchmark.extra_info["process_worker_scaling_1_to_4"] = process_speedup


# --------------------------------------------------------------------------- #
# telemetry: overhead ceiling + run-record artifact
# --------------------------------------------------------------------------- #
def _telemetry_overhead(sites) -> dict:
    """Best-of-3 wall clock for the smallest synthetic row, traced vs not."""
    compounds = MEMORY_SIZES[0]

    def best_of_three(telemetry: Telemetry) -> float:
        return min(
            _run_synthetic(sites, compounds, workers=2, telemetry=telemetry)[0]
            for _ in range(3)
        )

    disabled_s = best_of_three(Telemetry.disabled())
    enabled_s = best_of_three(Telemetry(enabled=True))
    return {
        "compounds": compounds,
        "workers": 2,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "overhead": enabled_s / disabled_s if disabled_s > 0 else float("inf"),
    }


def test_telemetry_overhead_and_run_record(benchmark, workbench):
    """Full tracing must cost < 5% on the streaming loop; the traced
    pipeline run must export a schema-valid run record."""
    sites = {"protease1": make_sarscov2_targets(seed=2020)["protease1"]}
    overhead = benchmark.pedantic(lambda: _telemetry_overhead(sites), rounds=1, iterations=1)

    telemetry = Telemetry(enabled=True)
    deck = build_screening_deck({"emolecules": 4}, seed=2020)
    config = StreamConfig(
        shard_size=2,
        workers=2,
        top_k=10,
        poses_per_compound=2,
        docking_mc_steps=6,
        docking_restarts=1,
        mmgbsa_max_poses=2,
        seed=2020,
    )
    engine = StreamingScreen(
        workbench.coherent_fusion, workbench.featurizer, sites, config, telemetry=telemetry
    )
    result = engine.run(deck.molecules)
    record = engine.run_record()
    validate_run_record(record)
    assert record["stages"][0]["name"] == "streamed_screen"
    assert record["trace"]["num_spans"] > 0
    assert record["metrics"]["counters"]["stream.compounds"] == result.num_compounds

    write_artifact("streaming_run_record.json", json.dumps(record, indent=2))
    write_artifact("streaming_telemetry_overhead.json", json.dumps(overhead, indent=2))

    assert overhead["overhead"] < MAX_TELEMETRY_OVERHEAD, (
        f"telemetry overhead {overhead['overhead']:.3f}x exceeds "
        f"{MAX_TELEMETRY_OVERHEAD}x on the {overhead['compounds']}-compound row"
    )
    benchmark.extra_info["telemetry_overhead"] = overhead["overhead"]
