"""Docking throughput — scalar golden reference vs the batched lockstep engine.

Docking dominates the campaign's physics budget (§4.1: ~10 poses/s/node,
about one minute per compound per core), so poses/s here bounds campaign
throughput before featurization and scoring even start.  This benchmark
docks identical compound traffic through the scalar ``PoseGenerator``,
the lockstep ``BatchedMonteCarloDocker`` and the pooled ``dock_many``
path, sweeping restart counts and ligand sizes, and writes the poses/s
table to ``benchmarks/artifacts/docking_throughput.json`` — the perf
trajectory later PRs must not regress.  The batched engine is
bit-identical to the scalar docker (see ``tests/test_docking_engine.py``),
so every speedup row is a pure win.

A "pose" is one Monte-Carlo pose evaluation: ``restarts × (steps + 1)``
per compound.  The acceptance trajectory tracks the >= 5x batched
speedup at the paper-default configuration (``restarts=4``,
``monte_carlo_steps=60``), which stays in the sweep at every scale.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import write_artifact
from repro.chem.generator import GeneratorProfile, MoleculeGenerator
from repro.chem.prep import LigandPrepPipeline
from repro.chem.protein import make_sarscov2_targets
from repro.docking.engine import BatchedMonteCarloDocker, dock_many
from repro.docking.poses import PoseGenerator
from repro.docking.vina import VinaScorer
from repro.utils.rng import derive_seed

DEFAULT_RESTARTS = 4
DEFAULT_MC_STEPS = 60
MIN_SPEEDUP_AT_DEFAULT = 5.0


def _make_ligands(count: int, heavy_atoms: tuple[int, int], seed: int) -> list:
    """Prepared drug-like ligands whose sizes fall inside ``heavy_atoms``."""
    low, high = heavy_atoms
    profile = GeneratorProfile(
        heavy_atoms_mean=(low + high) / 2.0,
        heavy_atoms_sd=(high - low) / 4.0,
        heavy_atoms_min=low,
        heavy_atoms_max=high,
    )
    generator = MoleculeGenerator(profile, seed=derive_seed(seed, heavy_atoms))
    prep = LigandPrepPipeline(minimize=False, seed=3)
    ligands = []
    batch = 0
    while len(ligands) < count and batch < 10:
        for prepared in prep.process_many(
            generator.generate_many(count, prefix=f"bench{batch}"), library="bench"
        ):
            ligands.append(prepared)
            if len(ligands) == count:
                break
        batch += 1
    return ligands


def _poses_per_second(elapsed: float, compounds: int, restarts: int, steps: int) -> float:
    evaluated = compounds * restarts * (steps + 1)
    return evaluated / elapsed if elapsed > 0 else float("inf")


def _best_of(rounds: int, fn) -> float:
    """Minimum wall-clock over ``rounds`` runs — robust to runner preemption."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sweep(site, ligand_sets, restart_counts, mc_steps: int, workers: int, rounds: int) -> list[dict]:
    scorer = VinaScorer()
    rows = []
    for label, prepared in ligand_sets:
        pairs = [(p.compound_id, p.molecule) for p in prepared]
        sizes = [p.molecule.num_atoms for p in prepared]
        for restarts in restart_counts:
            kwargs = dict(num_poses=10, monte_carlo_steps=mc_steps, restarts=restarts)

            def run_scalar():
                for compound_id, molecule in pairs:
                    PoseGenerator(
                        scorer, seed=derive_seed(0, "dock", site.name, compound_id), **kwargs
                    ).dock(site, molecule, complex_id=compound_id)

            def run_batched():
                for compound_id, molecule in pairs:
                    BatchedMonteCarloDocker(
                        scorer, seed=derive_seed(0, "dock", site.name, compound_id), **kwargs
                    ).dock(site, molecule, complex_id=compound_id)

            def run_pooled():
                dock_many(site, pairs, scorer=scorer, seed=0, max_workers=workers, **kwargs)

            scalar_s = _best_of(rounds, run_scalar)
            batched_s = _best_of(rounds, run_batched)
            pooled_s = _best_of(rounds, run_pooled)

            rows.append(
                {
                    "ligand_set": label,
                    "ligand_atoms_min": min(sizes),
                    "ligand_atoms_max": max(sizes),
                    "compounds": len(pairs),
                    "restarts": restarts,
                    "monte_carlo_steps": mc_steps,
                    "scalar_pps": _poses_per_second(scalar_s, len(pairs), restarts, mc_steps),
                    "batched_pps": _poses_per_second(batched_s, len(pairs), restarts, mc_steps),
                    "pooled_pps": _poses_per_second(pooled_s, len(pairs), restarts, mc_steps),
                    "batched_speedup": scalar_s / batched_s if batched_s > 0 else float("inf"),
                    "pooled_speedup": scalar_s / pooled_s if pooled_s > 0 else float("inf"),
                }
            )
    return rows


def test_docking_throughput_sweep(benchmark, bench_scale):
    """Sweep restarts x ligand size; emit the JSON perf-trajectory artifact."""
    site = make_sarscov2_targets(seed=2020)["protease1"]
    if bench_scale == "tiny":
        # best-of-3 timing: the CI smoke asserts the 5x floor from this
        # single small row, so preemption noise must not fail the build
        ligand_sets = [("small", _make_ligands(2, (12, 24), seed=7))]
        restart_counts: tuple[int, ...] = (DEFAULT_RESTARTS,)
        rounds = 3
    else:
        ligand_sets = [
            ("small", _make_ligands(3, (12, 24), seed=7)),
            ("large", _make_ligands(3, (26, 40), seed=8)),
        ]
        restart_counts = (1, DEFAULT_RESTARTS, 8)
        rounds = 2

    rows = benchmark.pedantic(
        lambda: _sweep(site, ligand_sets, restart_counts, DEFAULT_MC_STEPS, workers=4, rounds=rounds),
        rounds=1,
        iterations=1,
    )
    write_artifact("docking_throughput.json", json.dumps(rows, indent=2))

    assert {row["restarts"] for row in rows} >= {DEFAULT_RESTARTS}
    for row in rows:
        assert row["scalar_pps"] > 0 and row["batched_pps"] > 0 and row["pooled_pps"] > 0

    at_default = [row for row in rows if row["restarts"] == DEFAULT_RESTARTS]
    best_speedup = max(row["batched_speedup"] for row in at_default)
    assert best_speedup >= MIN_SPEEDUP_AT_DEFAULT, (
        f"batched docking regressed: {best_speedup:.1f}x < {MIN_SPEEDUP_AT_DEFAULT}x "
        f"at restarts={DEFAULT_RESTARTS}, monte_carlo_steps={DEFAULT_MC_STEPS}"
    )
    benchmark.extra_info["batched_speedup_at_default"] = best_speedup
    benchmark.extra_info["best_pooled_speedup"] = max(r["pooled_speedup"] for r in rows)
