"""Table 7 — single-job and peak screening throughput.

Regenerates the throughput table from the analytic performance model and
benchmarks a real (small) in-process scoring job so the startup /
evaluation / output decomposition is exercised by actual code, not only by
the model.
"""

from benchmarks.conftest import write_artifact
from repro.experiments import table7
from repro.screening.job import FusionScoringJob


def test_table7_modelled_throughput(benchmark):
    rows = benchmark(table7.run_table7)
    write_artifact("table7_throughput.txt", table7.render(rows))
    claims = table7.qualitative_claims(rows)
    assert all(claims.values()), claims
    benchmark.extra_info["poses_per_second_single"] = rows["single_job"]["poses_per_second"]
    benchmark.extra_info["poses_per_second_peak"] = rows["peak"]["poses_per_second"]
    benchmark.extra_info["speedup_vs_vina"] = rows["speedups"]["fusion_vs_vina"]
    benchmark.extra_info["speedup_vs_mmgbsa"] = rows["speedups"]["fusion_vs_mmgbsa"]


def test_table7_measured_job_breakdown(benchmark, workbench, campaign):
    """Run one real in-process scoring job and record its phase breakdown."""
    site_name = campaign.database.sites()[0]
    records = [r for r in campaign.database.records() if r.site_name == site_name][:24]
    site = campaign.sites[site_name]

    def run_job():
        job = FusionScoringJob(
            model=workbench.coherent_fusion,
            featurizer=workbench.featurizer,
            site=site,
            records=records,
            num_nodes=2,
            gpus_per_node=2,
            batch_size_per_rank=8,
            job_name="bench-job",
        )
        return job.run()

    result = benchmark.pedantic(run_job, rounds=1, iterations=1)
    assert result.num_poses == len(records)
    lines = ["Measured in-process scoring job (not paper scale):"]
    for phase, seconds in result.timings.items():
        lines.append(f"  {phase:>12s}: {seconds:.3f} s")
    modelled = result.modelled
    lines.append("Modelled at paper scale (2M poses, 4 nodes, batch 56):")
    paper_scale = FusionScoringJob(
        model=workbench.coherent_fusion, featurizer=workbench.featurizer, site=site,
        records=records, num_nodes=4, batch_size_per_rank=56,
    ).modelled_estimate(num_poses=2_000_000)
    lines.append(f"  startup {paper_scale.startup_minutes:.1f} min, evaluation {paper_scale.evaluation_minutes:.1f} min, "
                 f"output {paper_scale.output_minutes:.1f} min, {paper_scale.poses_per_second:.0f} poses/s")
    write_artifact("table7_measured_job.txt", "\n".join(lines))
    assert modelled is not None
