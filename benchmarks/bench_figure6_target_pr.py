"""Figure 6 — precision/recall and F1 per SARS-CoV-2 target at 33 % inhibition."""

from benchmarks.conftest import write_artifact
from repro.eval.reports import render_pr_summary
from repro.experiments import figure6


def test_figure6_precision_recall_by_target(benchmark, workbench, campaign):
    result = benchmark.pedantic(figure6.run_figure6, args=(workbench, campaign), rounds=1, iterations=1)
    sections = []
    for site_name, per_method in sorted(result.per_site.items()):
        positives, negatives = result.counts[site_name]
        header = f"{site_name}: {positives} positive / {negatives} negative binders at >{result.threshold:.0f}% inhibition"
        if per_method:
            sections.append(header + "\n" + render_pr_summary(per_method))
        else:
            sections.append(header + "\n  (too few positives at this scale for a P/R analysis)")
    stats = figure6.hit_statistics(campaign, result.threshold)
    sections.append(
        f"campaign: {stats['num_tested']:.0f} compounds tested, {stats['num_hits']:.0f} hits (>33% inhibition), "
        f"hit rate {stats['hit_rate']:.1%}, {stats['num_full_inhibitors']:.0f} full inhibitors"
    )
    write_artifact("figure6_target_pr.txt", "\n\n".join(sections))

    assert set(result.counts) == set(campaign.selections)
    claims = figure6.qualitative_claims(result, campaign)
    assert claims["hit_rate_between_1_and_40_percent"] or stats["num_tested"] < 20
    benchmark.extra_info["hit_rate"] = stats["hit_rate"]
