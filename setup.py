"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that ``pip install -e .`` keeps working on minimal, offline
environments where the ``wheel`` package (needed for PEP 660 editable
wheels) is unavailable and pip falls back to the legacy develop install.
"""

from setuptools import setup

setup()
