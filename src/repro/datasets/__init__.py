"""Datasets: synthetic PDBbind, compound libraries, assay simulators."""

from repro.datasets.splits import quintile_split, random_split
from repro.datasets.pdbbind import PDBbindConfig, PDBbindDataset, PDBbindEntry, generate_pdbbind
from repro.datasets.libraries import (
    LIBRARY_PROFILES,
    CompoundLibrary,
    build_screening_deck,
)
from repro.datasets.assays import (
    InhibitionAssay,
    make_assay_panel,
    simulate_campaign_assays,
)

__all__ = [
    "quintile_split",
    "random_split",
    "PDBbindConfig",
    "PDBbindEntry",
    "PDBbindDataset",
    "generate_pdbbind",
    "CompoundLibrary",
    "LIBRARY_PROFILES",
    "build_screening_deck",
    "InhibitionAssay",
    "make_assay_panel",
    "simulate_campaign_assays",
]
