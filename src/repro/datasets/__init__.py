"""Datasets: synthetic PDBbind, compound libraries, assay simulators."""

from repro.datasets.splits import quintile_split, random_split
from repro.datasets.pdbbind import PDBbindConfig, PDBbindDataset, PDBbindEntry, generate_pdbbind
from repro.datasets.libraries import (
    LIBRARY_PROFILES,
    CompoundLibrary,
    StreamingLibrary,
    build_screening_deck,
    make_streaming_library,
)
from repro.datasets.assays import (
    InhibitionAssay,
    make_assay_panel,
    simulate_campaign_assays,
)

__all__ = [
    "quintile_split",
    "random_split",
    "PDBbindConfig",
    "PDBbindEntry",
    "PDBbindDataset",
    "generate_pdbbind",
    "CompoundLibrary",
    "LIBRARY_PROFILES",
    "StreamingLibrary",
    "build_screening_deck",
    "make_streaming_library",
    "InhibitionAssay",
    "make_assay_panel",
    "simulate_campaign_assays",
]
