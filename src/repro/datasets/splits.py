"""Train/validation splitting strategies.

The paper uses *quintile sub-sampling*: the affinity range is divided
into five quantile bins and 10 % of each bin is withdrawn into the
validation set, guaranteeing that training and validation cover the full
affinity range (simple random sampling risks training and validating on
different sub-ranges — Ellingson et al. 2020).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def quintile_split(
    values: np.ndarray,
    val_fraction: float = 0.10,
    num_bins: int = 5,
    rng=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Split indices into train/validation with per-quantile-bin sampling.

    Parameters
    ----------
    values:
        Label values (binding affinities) of each example.
    val_fraction:
        Fraction of each quantile bin moved to the validation set.
    num_bins:
        Number of quantile bins (five — quintiles — in the paper).
    rng:
        Seed or generator.

    Returns
    -------
    (train_indices, validation_indices):
        Disjoint integer index arrays covering every example.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    rng = ensure_rng(rng)
    n = len(values)
    if n < num_bins:
        num_bins = max(1, n)
    # quantile bin edges; duplicate edges (constant labels) collapse bins
    quantiles = np.quantile(values, np.linspace(0.0, 1.0, num_bins + 1))
    bin_ids = np.clip(np.searchsorted(quantiles, values, side="right") - 1, 0, num_bins - 1)

    val_indices: list[int] = []
    for bin_id in range(num_bins):
        members = np.where(bin_ids == bin_id)[0]
        if members.size == 0:
            continue
        n_val = int(round(val_fraction * members.size))
        if n_val == 0 and members.size > 1:
            n_val = 1
        chosen = rng.choice(members, size=min(n_val, members.size), replace=False)
        val_indices.extend(int(i) for i in chosen)
    val_array = np.array(sorted(set(val_indices)), dtype=int)
    train_array = np.setdiff1d(np.arange(n), val_array)
    return train_array, val_array


def random_split(n: int, val_fraction: float = 0.10, rng=None) -> tuple[np.ndarray, np.ndarray]:
    """Plain random split (used as an ablation baseline against quintile_split)."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    rng = ensure_rng(rng)
    order = rng.permutation(n)
    n_val = max(1, int(round(val_fraction * n)))
    val = np.sort(order[:n_val])
    train = np.sort(order[n_val:])
    return train, val


def coverage_by_bin(values: np.ndarray, indices: np.ndarray, num_bins: int = 5) -> np.ndarray:
    """Fraction of each quantile bin captured by ``indices`` (diagnostic for tests)."""
    values = np.asarray(values, dtype=np.float64)
    quantiles = np.quantile(values, np.linspace(0.0, 1.0, num_bins + 1))
    bin_ids = np.clip(np.searchsorted(quantiles, values, side="right") - 1, 0, num_bins - 1)
    fractions = np.zeros(num_bins)
    index_set = set(int(i) for i in indices)
    for bin_id in range(num_bins):
        members = np.where(bin_ids == bin_id)[0]
        if members.size:
            fractions[bin_id] = sum(1 for m in members if int(m) in index_set) / members.size
    return fractions
