"""Synthetic compound libraries mirroring the paper's screening decks.

§4 of the paper draws from four public libraries: a ZINC-derived
"world-approved 2018" drug set, 1.5 M ChEMBL compounds, 18 M eMolecules
compounds and the remainder (most of the >500 M) from Enamine's
synthetically-feasible drug-like space.  Each synthetic library here has
its own size scale, naming convention and property profile so that
library-level statistics differ in the same qualitative ways (approved
drugs are smaller and more polar; Enamine compounds are more numerous
and more uniform).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chem.elements import ORGANIC_SUBSET
from repro.chem.generator import GeneratorProfile, MoleculeGenerator
from repro.chem.molecule import Molecule
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class CompoundLibrary:
    """A named compound library with a generation profile.

    Attributes
    ----------
    name:
        Library key (``zinc_world_approved``, ``chembl``, ``emolecules``,
        ``enamine``).
    full_size:
        Nominal size of the real library (reported for bookkeeping and
        used to scale the screening campaign model).
    profile:
        Property distribution of generated compounds.
    id_prefix:
        Prefix of generated compound identifiers.
    input_format:
        ``"smiles"`` or ``"sdf"`` — the form the real library is
        distributed in (§4: SMILES for eMolecules/Enamine, 2-D SDF for
        ZINC/ChEMBL).
    """

    name: str
    full_size: int
    profile: GeneratorProfile
    id_prefix: str
    input_format: str = "smiles"

    def generator(self, seed: int = 0) -> MoleculeGenerator:
        """Return a molecule generator for this library."""
        return MoleculeGenerator(self.profile, seed=derive_seed(seed, "library", self.name))

    def generate(self, count: int, seed: int = 0) -> list[Molecule]:
        """Generate ``count`` compounds with library-specific identifiers."""
        generator = self.generator(seed)
        molecules = []
        for index in range(int(count)):
            molecule = generator.generate(name=f"{self.id_prefix}-{index + 1:08d}")
            molecules.append(molecule)
        return molecules


def _profile(**kwargs) -> GeneratorProfile:
    return GeneratorProfile(**kwargs)


LIBRARY_PROFILES: dict[str, CompoundLibrary] = {
    "zinc_world_approved": CompoundLibrary(
        name="zinc_world_approved",
        full_size=6_000,
        profile=_profile(
            heavy_atoms_mean=22.0, heavy_atoms_sd=6.0, ring_closure_rate=2.5,
            double_bond_fraction=0.22, salt_probability=0.25, metal_probability=0.03,
        ),
        id_prefix="ZINC",
        input_format="sdf",
    ),
    "chembl": CompoundLibrary(
        name="chembl",
        full_size=1_500_000,
        profile=_profile(
            heavy_atoms_mean=26.0, heavy_atoms_sd=7.0, ring_closure_rate=2.6,
            double_bond_fraction=0.20, salt_probability=0.15, metal_probability=0.01,
        ),
        id_prefix="CHEMBL",
        input_format="sdf",
    ),
    "emolecules": CompoundLibrary(
        name="emolecules",
        full_size=18_000_000,
        profile=_profile(
            heavy_atoms_mean=24.0, heavy_atoms_sd=6.5, ring_closure_rate=2.2,
            double_bond_fraction=0.18, salt_probability=0.08, metal_probability=0.005,
        ),
        id_prefix="EMOL",
        input_format="smiles",
    ),
    "enamine": CompoundLibrary(
        name="enamine",
        full_size=480_000_000,
        profile=_profile(
            heavy_atoms_mean=23.0, heavy_atoms_sd=4.5, ring_closure_rate=2.0,
            double_bond_fraction=0.16, salt_probability=0.02, metal_probability=0.0,
            element_frequencies=dict(ORGANIC_SUBSET),
        ),
        id_prefix="ENAM",
        input_format="smiles",
    ),
}

#: Total nominal size of the four libraries (the paper's "over 500 million").
TOTAL_LIBRARY_SIZE = sum(lib.full_size for lib in LIBRARY_PROFILES.values())


@dataclass(frozen=True)
class StreamingLibrary:
    """A lazily-generated mega-library for the streaming screening engine.

    :meth:`CompoundLibrary.generate` draws compounds from one sequential
    RNG stream, so compound ``i`` depends on every compound before it —
    fine for materialized decks, fatal for shard-parallel streaming
    (shard boundaries would change every molecule).  A
    ``StreamingLibrary`` instead derives an independent seed per
    compound *index*, so ``compound(i)`` is a pure function of
    ``(library, seed, i)``: any shard partitioning, any worker
    interleaving and any resume point generates bit-identical molecules,
    and nothing is held in memory until a shard asks for its slice.

    Sized to millions of compounds, iterating it costs O(shard) memory;
    ``len()`` is the only thing that scales with ``size``.
    """

    library: CompoundLibrary
    size: int
    seed: int = 0
    id_prefix: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be non-negative")

    @property
    def prefix(self) -> str:
        return self.id_prefix or f"{self.library.id_prefix}S"

    def __len__(self) -> int:
        return int(self.size)

    def compound_name(self, index: int) -> str:
        return f"{self.prefix}-{index + 1:09d}"

    def compound(self, index: int) -> Molecule:
        """Generate compound ``index`` from its own derived seed."""
        if not 0 <= index < self.size:
            raise IndexError(f"compound index {index} out of range [0, {self.size})")
        generator = MoleculeGenerator(
            self.library.profile,
            seed=derive_seed(self.seed, "stream", self.library.name, int(index)),
        )
        return generator.generate(name=self.compound_name(index))

    def generate_range(self, start: int, stop: int) -> list[Molecule]:
        """Materialize one shard ``[start, stop)`` — the streaming engine's slice hook."""
        start = max(int(start), 0)
        stop = min(int(stop), self.size)
        return [self.compound(index) for index in range(start, stop)]


def make_streaming_library(
    name: str = "enamine", size: int = 1_000_000, seed: int = 0
) -> StreamingLibrary:
    """A :class:`StreamingLibrary` over one of the named library profiles."""
    if name not in LIBRARY_PROFILES:
        raise KeyError(f"unknown library '{name}'; options: {sorted(LIBRARY_PROFILES)}")
    return StreamingLibrary(library=LIBRARY_PROFILES[name], size=int(size), seed=int(seed))


@dataclass
class ScreeningDeck:
    """A concrete, generated subset of the libraries used by a campaign."""

    molecules: list[Molecule]
    library_of: dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.molecules)

    def by_library(self, name: str) -> list[Molecule]:
        return [m for m in self.molecules if self.library_of.get(m.name) == name]


def build_screening_deck(counts: dict[str, int], seed: int = 0) -> ScreeningDeck:
    """Generate a screening deck with ``counts`` compounds per library.

    Example
    -------
    >>> deck = build_screening_deck({"emolecules": 5, "enamine": 5}, seed=1)
    >>> len(deck)
    10
    """
    molecules: list[Molecule] = []
    library_of: dict[str, str] = {}
    for library_name, count in counts.items():
        if library_name not in LIBRARY_PROFILES:
            raise KeyError(f"unknown library '{library_name}'; options: {sorted(LIBRARY_PROFILES)}")
        library = LIBRARY_PROFILES[library_name]
        for molecule in library.generate(count, seed=seed):
            molecules.append(molecule)
            library_of[molecule.name] = library_name
    return ScreeningDeck(molecules=molecules, library_of=library_of)
