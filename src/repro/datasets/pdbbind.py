"""Synthetic PDBbind-2019-like structure-affinity dataset.

The real PDBbind-2019 provides ~17k crystal structures with measured
binding affinities, stratified into ``general``, ``refined`` and ``core``
subsets.  The synthetic analogue reproduces the structure of the dataset
and the properties the evaluation depends on:

* every entry is a crystal-pose complex whose *latent* affinity comes from
  the interaction model and whose *experimental label* adds measurement
  noise (larger for ``general``, which includes IC50-only data, than for
  ``refined``);
* ``refined`` applies the paper's filters: ligand MW <= 1000 Da, Ki/Kd
  measurement available, crystal resolution < 2.5 A;
* ``core`` entries are drawn from protein (pocket) families never used by
  the general/refined strata, reproducing the sequence-clustering
  hold-out that makes the core set a meaningful generalization test;
* the training/validation split uses quintile sub-sampling with 10 % per
  stratum withdrawn, as in §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.complexes import InteractionModel, ProteinLigandComplex
from repro.chem.generator import GeneratorProfile, MoleculeGenerator
from repro.chem.prep import LigandPrepPipeline
from repro.chem.protein import BindingSite, PocketFamily, generate_binding_site
from repro.datasets.splits import quintile_split
from repro.docking.engine import BatchedMonteCarloDocker
from repro.docking.poses import MaximizePkScorer
from repro.featurize.pipeline import ComplexFeaturizer, FeaturizedComplex
from repro.utils.rng import derive_seed, ensure_rng


@dataclass
class PDBbindEntry:
    """One synthetic PDBbind entry (a crystal-pose complex with a label)."""

    entry_id: str
    complex: ProteinLigandComplex
    true_pk: float
    experimental_pk: float
    subset: str
    measurement: str
    resolution: float
    family_id: int
    ligand_mw: float

    @property
    def site(self) -> BindingSite:
        return self.complex.site


@dataclass
class PDBbindConfig:
    """Size and noise parameters of the synthetic dataset.

    Defaults are scaled down by roughly 50x relative to the real
    PDBbind-2019 counts (15,631 train / 1,731 validation / 290 core) so
    that NumPy training remains tractable; the proportions are preserved.
    """

    n_general: int = 220
    n_refined: int = 110
    n_core: int = 30
    n_families: int = 24
    n_core_families: int = 6
    label_noise_general: float = 0.85
    label_noise_refined: float = 0.40
    label_noise_core: float = 0.35
    refined_mw_limit: float = 1000.0
    refined_resolution_limit: float = 2.5
    pose_search_steps: int = 30
    pose_search_restarts: int = 2
    seed: int = 2019
    ligand_profile: GeneratorProfile = field(default_factory=GeneratorProfile)


class PDBbindDataset:
    """Container for the generated entries with split / featurization helpers."""

    def __init__(self, entries: list[PDBbindEntry], config: PDBbindConfig) -> None:
        self.entries = list(entries)
        self.config = config

    # -- subsets -------------------------------------------------------- #
    @property
    def general(self) -> list[PDBbindEntry]:
        return [e for e in self.entries if e.subset == "general"]

    @property
    def refined(self) -> list[PDBbindEntry]:
        return [e for e in self.entries if e.subset == "refined"]

    @property
    def core(self) -> list[PDBbindEntry]:
        return [e for e in self.entries if e.subset == "core"]

    def __len__(self) -> int:
        return len(self.entries)

    # -- splits --------------------------------------------------------- #
    def train_val_split(self, val_fraction: float = 0.10, rng=None) -> tuple[list[PDBbindEntry], list[PDBbindEntry]]:
        """Quintile sub-sampling split of general+refined, done per stratum as in the paper."""
        rng = ensure_rng(rng if rng is not None else self.config.seed)
        train: list[PDBbindEntry] = []
        val: list[PDBbindEntry] = []
        for stratum in (self.general, self.refined):
            if not stratum:
                continue
            labels = np.array([e.experimental_pk for e in stratum])
            train_idx, val_idx = quintile_split(labels, val_fraction=val_fraction, rng=rng)
            train.extend(stratum[i] for i in train_idx)
            val.extend(stratum[i] for i in val_idx)
        return train, val

    # -- featurization --------------------------------------------------- #
    @staticmethod
    def featurize_entries(
        entries: list[PDBbindEntry],
        featurizer: ComplexFeaturizer,
        training: bool = False,
    ) -> list[FeaturizedComplex]:
        """Featurize entries into model-ready samples labelled with experimental pK."""
        return [
            featurizer.featurize(entry.complex, target=entry.experimental_pk, training=training)
            for entry in entries
        ]

    # -- summaries ------------------------------------------------------- #
    def label_statistics(self) -> dict[str, dict[str, float]]:
        """Mean/std/min/max of experimental labels per subset."""
        out: dict[str, dict[str, float]] = {}
        for subset in ("general", "refined", "core"):
            labels = np.array([e.experimental_pk for e in self.entries if e.subset == subset])
            if labels.size == 0:
                continue
            out[subset] = {
                "count": float(labels.size),
                "mean": float(labels.mean()),
                "std": float(labels.std()),
                "min": float(labels.min()),
                "max": float(labels.max()),
            }
        return out


# --------------------------------------------------------------------------- #
# Generation
# --------------------------------------------------------------------------- #
_MEASUREMENTS_REFINED = ("Ki", "Kd")
_MEASUREMENTS_GENERAL = ("Ki", "Kd", "IC50")


def generate_pdbbind(
    config: PDBbindConfig | None = None,
    interaction_model: InteractionModel | None = None,
) -> PDBbindDataset:
    """Generate the synthetic PDBbind dataset described by ``config``."""
    config = config or PDBbindConfig()
    interaction_model = interaction_model or InteractionModel()
    rng = ensure_rng(config.seed)

    families = [PocketFamily.random(family_id=i, rng=rng) for i in range(config.n_families)]
    if config.n_core_families >= config.n_families:
        raise ValueError("n_core_families must be smaller than n_families")
    core_families = families[: config.n_core_families]
    train_families = families[config.n_core_families:]

    generator = MoleculeGenerator(config.ligand_profile, seed=derive_seed(config.seed, "ligands"))
    prep = LigandPrepPipeline(minimize=False, seed=derive_seed(config.seed, "prep"))
    scorer = MaximizePkScorer(interaction_model)

    entries: list[PDBbindEntry] = []
    specs = (
        [("general", train_families, config.label_noise_general, _MEASUREMENTS_GENERAL)] * config.n_general
        + [("refined", train_families, config.label_noise_refined, _MEASUREMENTS_REFINED)] * config.n_refined
        + [("core", core_families, config.label_noise_core, _MEASUREMENTS_REFINED)] * config.n_core
    )
    for index, (subset, family_pool, noise, measurements) in enumerate(specs):
        entry_rng = ensure_rng(derive_seed(config.seed, "entry", index))
        family = family_pool[int(entry_rng.integers(0, len(family_pool)))]
        site = generate_binding_site(
            family, rng=entry_rng, name=f"fam{family.family_id}-site{index}", target=f"family-{family.family_id}"
        )
        ligand = None
        while ligand is None:
            candidate = generator.generate(name=f"pdb{index:05d}")
            prepared = prep.process(candidate, library="pdbbind", compound_id=f"pdb{index:05d}")
            if prepared is None:
                continue
            mw = prepared.descriptors["molecular_weight"]
            if subset in ("refined", "core") and mw > config.refined_mw_limit:
                continue
            ligand = prepared.molecule

        pose_generator = BatchedMonteCarloDocker(
            scorer,
            num_poses=1,
            monte_carlo_steps=config.pose_search_steps,
            restarts=config.pose_search_restarts,
            seed=derive_seed(config.seed, "crystal-pose", index),
        )
        poses = pose_generator.dock(site, ligand, complex_id=f"pdb{index:05d}")
        crystal = poses[0].complex
        true_pk = interaction_model.true_pk(crystal)
        experimental_pk = float(np.clip(true_pk + entry_rng.normal(scale=noise), 0.0, 14.0))

        if subset in ("refined", "core"):
            resolution = float(entry_rng.uniform(1.2, config.refined_resolution_limit - 0.05))
        else:
            resolution = float(entry_rng.uniform(1.5, 3.6))
        measurement = str(entry_rng.choice(measurements))

        entries.append(
            PDBbindEntry(
                entry_id=f"pdb{index:05d}",
                complex=crystal,
                true_pk=float(true_pk),
                experimental_pk=experimental_pk,
                subset=subset,
                measurement=measurement,
                resolution=resolution,
                family_id=family.family_id,
                ligand_mw=float(ligand.molecular_weight()),
            )
        )
    return PDBbindDataset(entries, config)
