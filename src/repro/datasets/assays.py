"""Experimental assay simulators for the SARS-CoV-2 campaign.

The paper's experimental follow-up measures *percent inhibition* at a
fixed compound concentration: a FRET / SDS-PAGE protease activity assay
at 100 µM for the two Mpro sites and a pseudo-typed virus / BLI
competition assay at 10 µM for the two spike sites.  The reproduction
maps a compound's latent binding affinity to fractional target occupancy
at the assay concentration and then to a noisy percent-inhibition
readout.

Crucially, the *assay-relevant* affinity is not identical to the
structure-derived latent affinity: each compound-target pair carries a
deterministic "biology penalty" (solubility, aggregation, off-mechanism
effects, cell permeability for the infection assay) that structure-based
scoring cannot see.  This is what produces the paper's regime of mostly
inactive compounds, low (0-0.3) correlations between any scoring method
and percent inhibition, and a ~10 % hit rate above the 33 % inhibition
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.complexes import InteractionModel, ProteinLigandComplex
from repro.chem.protein import BindingSite
from repro.utils.rng import derive_seed, ensure_rng


@dataclass
class AssayResult:
    """Measured percent inhibition of one compound against one target site."""

    compound_id: str
    site_name: str
    percent_inhibition: float
    concentration_um: float
    assay_type: str


class InhibitionAssay:
    """Simulated percent-inhibition assay for one binding site.

    Parameters
    ----------
    site:
        The target binding site.
    concentration_um:
        Compound concentration in micro-molar (100 for Mpro, 10 for spike).
    assay_type:
        Label recorded on results (``"FRET"``, ``"pseudovirus"``, ``"BLI"``...).
    biology_penalty_mean:
        Mean of the exponential per-compound penalty (in pK units) applied
        to the latent affinity before computing occupancy. Larger values
        make hits rarer and decouple structure-based predictions from
        assay outcomes.
    readout_noise:
        Standard deviation of the additive percent-inhibition noise.
    hill_coefficient:
        Hill coefficient of the occupancy curve.
    seed:
        Seed of the deterministic penalty / noise streams.
    """

    def __init__(
        self,
        site: BindingSite,
        concentration_um: float,
        assay_type: str = "FRET",
        biology_penalty_mean: float = 2.6,
        readout_noise: float = 6.0,
        hill_coefficient: float = 1.0,
        interaction_model: InteractionModel | None = None,
        seed: int = 11,
    ) -> None:
        if concentration_um <= 0:
            raise ValueError("concentration must be positive")
        self.site = site
        self.concentration_um = float(concentration_um)
        self.assay_type = assay_type
        self.biology_penalty_mean = float(biology_penalty_mean)
        self.readout_noise = float(readout_noise)
        self.hill_coefficient = float(hill_coefficient)
        self.interaction_model = interaction_model or InteractionModel()
        self.seed = int(seed)

    # ------------------------------------------------------------------ #
    def effective_pk(self, compound_id: str, structural_pk: float) -> float:
        """Assay-relevant affinity: structural affinity minus the biology penalty."""
        key = derive_seed(self.seed, "biology", self.site.name, compound_id)
        rng = np.random.default_rng(key)
        penalty = rng.exponential(self.biology_penalty_mean)
        return float(structural_pk - penalty)

    def occupancy(self, pk: float) -> float:
        """Fractional target occupancy at the assay concentration."""
        kd_um = 10.0 ** (6.0 - pk)  # Kd in micro-molar
        ratio = (self.concentration_um / kd_um) ** self.hill_coefficient
        return float(ratio / (1.0 + ratio))

    def measure_pk(self, compound_id: str, structural_pk: float) -> AssayResult:
        """Measure percent inhibition given the compound's structural affinity."""
        pk = self.effective_pk(compound_id, structural_pk)
        expected = 100.0 * self.occupancy(pk)
        key = derive_seed(self.seed, "readout", self.site.name, compound_id)
        noise = np.random.default_rng(key).normal(scale=self.readout_noise)
        observed = float(np.clip(expected + noise, 0.0, 100.0))
        return AssayResult(
            compound_id=compound_id,
            site_name=self.site.name,
            percent_inhibition=observed,
            concentration_um=self.concentration_um,
            assay_type=self.assay_type,
        )

    def measure_complex(self, complex_: ProteinLigandComplex) -> AssayResult:
        """Measure a complex: its latent affinity defines the structural pK."""
        structural_pk = self.interaction_model.true_pk(complex_)
        return self.measure_pk(complex_.complex_id, structural_pk)


#: Assay concentrations per SARS-CoV-2 site (µM), from §5.1/§5.2.
ASSAY_CONCENTRATIONS_UM = {
    "protease1": 100.0,
    "protease2": 100.0,
    "spike1": 10.0,
    "spike2": 10.0,
}

#: Assay modality per site.
ASSAY_TYPES = {
    "protease1": "FRET",
    "protease2": "FRET",
    "spike1": "pseudovirus",
    "spike2": "BLI",
}


def make_assay_panel(
    sites: dict[str, BindingSite],
    seed: int = 11,
    biology_penalty_mean: float = 2.6,
    readout_noise: float = 6.0,
) -> dict[str, InhibitionAssay]:
    """Create the four-site assay panel used by the campaign analysis."""
    panel: dict[str, InhibitionAssay] = {}
    for name, site in sites.items():
        panel[name] = InhibitionAssay(
            site=site,
            concentration_um=ASSAY_CONCENTRATIONS_UM.get(name, 10.0),
            assay_type=ASSAY_TYPES.get(name, "FRET"),
            biology_penalty_mean=biology_penalty_mean,
            readout_noise=readout_noise,
            seed=derive_seed(seed, "assay", name),
        )
    return panel


@dataclass
class CampaignAssayTable:
    """Percent-inhibition results of experimentally tested compounds."""

    results: list[AssayResult] = field(default_factory=list)

    def for_site(self, site_name: str) -> list[AssayResult]:
        return [r for r in self.results if r.site_name == site_name]

    def inhibition_of(self, site_name: str, compound_id: str) -> float | None:
        for result in self.results:
            if result.site_name == site_name and result.compound_id == compound_id:
                return result.percent_inhibition
        return None

    def hit_rate(self, threshold: float = 33.0) -> float:
        """Fraction of measurements above the inhibition threshold."""
        if not self.results:
            return 0.0
        hits = sum(1 for r in self.results if r.percent_inhibition > threshold)
        return hits / len(self.results)


def simulate_campaign_assays(
    panel: dict[str, InhibitionAssay],
    tested: dict[str, list[tuple[str, float]]],
) -> CampaignAssayTable:
    """Run the assay panel over the selected compounds.

    Parameters
    ----------
    panel:
        Per-site assays (from :func:`make_assay_panel`).
    tested:
        Mapping ``site_name -> [(compound_id, structural_pk), ...]`` of the
        compounds purchased for experimental evaluation against that site,
        with the structural affinity of their best pose.
    """
    table = CampaignAssayTable()
    for site_name, compounds in tested.items():
        if site_name not in panel:
            raise KeyError(f"no assay configured for site '{site_name}'")
        assay = panel[site_name]
        for compound_id, structural_pk in compounds:
            table.results.append(assay.measure_pk(compound_id, structural_pk))
    return table
