"""Regression and classification metrics.

These are the metrics of the paper's evaluation: RMSE / MAE / R² /
Pearson / Spearman for the core-set regression comparison (Table 6),
precision-recall curves, F1-scores and Cohen's kappa for the binary
classification analyses (Figures 2 and 6), and Pearson / Spearman for
the retrospective correlation table (Table 8).
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def _validate_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("metrics require at least one example")
    return y_true, y_pred


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def mae(y_true, y_pred) -> float:
    """Mean absolute error."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination R²."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def pearson_r(y_true, y_pred) -> float:
    """Pearson correlation coefficient (0 when either input is constant)."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if y_true.size < 2 or np.std(y_true) == 0 or np.std(y_pred) == 0:
        return 0.0
    return float(stats.pearsonr(y_true, y_pred)[0])


def spearman_r(y_true, y_pred) -> float:
    """Spearman rank correlation coefficient (0 when either input is constant)."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if y_true.size < 2 or np.std(y_true) == 0 or np.std(y_pred) == 0:
        return 0.0
    return float(stats.spearmanr(y_true, y_pred)[0])


def regression_report(y_true, y_pred) -> dict[str, float]:
    """All Table 6 regression metrics in one dictionary."""
    return {
        "rmse": rmse(y_true, y_pred),
        "mae": mae(y_true, y_pred),
        "r2": r2_score(y_true, y_pred),
        "pearson": pearson_r(y_true, y_pred),
        "spearman": spearman_r(y_true, y_pred),
    }


# --------------------------------------------------------------------------- #
# Classification metrics
# --------------------------------------------------------------------------- #
def _validate_labels(labels, scores) -> tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels).astype(bool).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have matching shapes")
    if labels.size == 0:
        raise ValueError("classification metrics require at least one example")
    return labels, scores


def precision_recall_curve(labels, scores) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision-recall curve over descending score thresholds.

    Returns ``(precision, recall, thresholds)`` where element ``i`` uses the
    threshold ``scores >= thresholds[i]``. Matches the construction used
    for Figures 2 and 6.
    """
    labels, scores = _validate_labels(labels, scores)
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    sorted_scores = scores[order]
    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(~sorted_labels)
    total_pos = labels.sum()
    # evaluate at the last index of each distinct threshold value
    distinct = np.where(np.diff(sorted_scores) != 0)[0]
    idx = np.concatenate([distinct, [labels.size - 1]])
    precision = tp[idx] / np.maximum(tp[idx] + fp[idx], 1)
    recall = tp[idx] / max(total_pos, 1)
    thresholds = sorted_scores[idx]
    return precision, recall, thresholds


def average_precision(labels, scores) -> float:
    """Area under the precision-recall curve (step-wise interpolation)."""
    precision, recall, _ = precision_recall_curve(labels, scores)
    recall = np.concatenate([[0.0], recall])
    return float(np.sum(np.diff(recall) * precision))


def f1_score(labels, predictions) -> float:
    """F1 score for boolean predictions."""
    labels = np.asarray(labels).astype(bool).ravel()
    predictions = np.asarray(predictions).astype(bool).ravel()
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must have matching shapes")
    tp = float(np.sum(labels & predictions))
    fp = float(np.sum(~labels & predictions))
    fn = float(np.sum(labels & ~predictions))
    if tp == 0.0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return float(2 * precision * recall / (precision + recall))


def best_f1_score(labels, scores) -> tuple[float, float]:
    """Best F1 over all score thresholds; returns ``(f1, threshold)``.

    The paper reports a single F1 per method/target; sweeping the
    threshold gives each scoring method its best operating point, which
    is how F1 is annotated on the P/R plots.
    """
    labels, scores = _validate_labels(labels, scores)
    best = (0.0, float(scores.max()) if scores.size else 0.0)
    for threshold in np.unique(scores):
        value = f1_score(labels, scores >= threshold)
        if value > best[0]:
            best = (value, float(threshold))
    return best


def cohens_kappa(labels, predictions) -> float:
    """Cohen's kappa agreement statistic (Equation 2 of the paper)."""
    labels = np.asarray(labels).astype(bool).ravel()
    predictions = np.asarray(predictions).astype(bool).ravel()
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must have matching shapes")
    n = labels.size
    if n == 0:
        raise ValueError("cohens_kappa requires at least one example")
    observed = float(np.mean(labels == predictions))
    p_yes = float(labels.mean()) * float(predictions.mean())
    p_no = (1.0 - float(labels.mean())) * (1.0 - float(predictions.mean()))
    expected = p_yes + p_no
    if expected >= 1.0:
        return 0.0
    return float((observed - expected) / (1.0 - expected))


def random_classifier_precision(labels) -> float:
    """Expected precision of a random classifier (the dashed line in Figures 2/6)."""
    labels = np.asarray(labels).astype(bool).ravel()
    if labels.size == 0:
        raise ValueError("labels must be non-empty")
    return float(labels.mean())
