"""Correlation analyses of predictions against experimental outcomes (Table 8)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.metrics import pearson_r, spearman_r


@dataclass
class CorrelationRow:
    """One row of the Table 8 analysis: a (method, target) pair."""

    method: str
    target: str
    pearson: float
    spearman: float
    n: int


def per_target_correlations(
    predictions: dict[str, dict[str, np.ndarray]],
    observations: dict[str, np.ndarray],
    min_observation: float | None = None,
) -> list[CorrelationRow]:
    """Compute per-method, per-target correlations with experimental values.

    Parameters
    ----------
    predictions:
        ``method -> target -> prediction array`` (aligned with observations).
    observations:
        ``target -> experimental array`` (percent inhibition).
    min_observation:
        If given, only examples with observation strictly greater than this
        value are retained — the paper restricts Table 8 to compounds with
        >1 % inhibition so the sea of non-binders does not dominate.
    """
    rows: list[CorrelationRow] = []
    for method, per_target in predictions.items():
        for target, preds in per_target.items():
            if target not in observations:
                raise KeyError(f"no observations for target '{target}'")
            obs = np.asarray(observations[target], dtype=np.float64)
            preds = np.asarray(preds, dtype=np.float64)
            if obs.shape != preds.shape:
                raise ValueError(f"{method}/{target}: predictions and observations differ in length")
            mask = np.isfinite(obs) & np.isfinite(preds)
            if min_observation is not None:
                mask &= obs > min_observation
            obs_kept, preds_kept = obs[mask], preds[mask]
            if obs_kept.size < 2:
                rows.append(CorrelationRow(method, target, float("nan"), float("nan"), int(obs_kept.size)))
                continue
            rows.append(
                CorrelationRow(
                    method=method,
                    target=target,
                    pearson=pearson_r(obs_kept, preds_kept),
                    spearman=spearman_r(obs_kept, preds_kept),
                    n=int(obs_kept.size),
                )
            )
    return rows


def correlation_table(rows: list[CorrelationRow]) -> dict[tuple[str, str], dict[str, float]]:
    """Index correlation rows by (method, target) for easy lookup in tests/benchmarks."""
    return {
        (row.method, row.target): {"pearson": row.pearson, "spearman": row.spearman, "n": float(row.n)}
        for row in rows
    }


def best_method_per_target(rows: list[CorrelationRow], by: str = "pearson") -> dict[str, str]:
    """Name of the best-correlated method for each target (ties broken by method name)."""
    best: dict[str, tuple[float, str]] = {}
    for row in rows:
        value = getattr(row, by)
        if np.isnan(value):
            continue
        current = best.get(row.target)
        if current is None or value > current[0] or (value == current[0] and row.method < current[1]):
            best[row.target] = (value, row.method)
    return {target: method for target, (_value, method) in best.items()}
