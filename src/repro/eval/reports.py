"""Plain-text rendering of tables and figure summaries.

The benchmark harness prints the same rows/series the paper reports;
these helpers format them consistently.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float) or isinstance(cell, np.floating):
        if np.isnan(cell):
            return "-"
        return f"{cell:.3f}"
    return str(cell)


def render_pr_summary(results: Mapping[str, "object"], title: str = "") -> str:
    """Render the scalar summaries of several BinaryClassificationResult objects."""
    headers = ["method", "F1", "AP", "kappa", "random precision", "positives", "negatives"]
    rows = []
    for method, result in results.items():
        summary = result.summary()
        rows.append(
            [
                method,
                summary["f1"],
                summary["average_precision"],
                summary["kappa"],
                summary["random_precision"],
                int(summary["num_positive"]),
                int(summary["num_negative"]),
            ]
        )
    return format_table(headers, rows, title=title)


def render_series(name: str, xs: Sequence[float], ys: Sequence[float], x_label: str, y_label: str) -> str:
    """Render a figure series as aligned x/y pairs (used for Figures 4 and 5)."""
    lines = [f"{name}  ({x_label} vs {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x:>10.3f}  {y:>12.4f}")
    return "\n".join(lines)
