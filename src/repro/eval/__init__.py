"""Evaluation metrics and analyses used across the paper's tables and figures."""

from repro.eval.metrics import (
    cohens_kappa,
    f1_score,
    mae,
    pearson_r,
    precision_recall_curve,
    r2_score,
    regression_report,
    rmse,
    spearman_r,
)
from repro.eval.classification import (
    BinaryClassificationResult,
    classify_by_threshold,
    evaluate_scores,
)
from repro.eval.correlation import correlation_table, per_target_correlations
from repro.eval.reports import format_table, render_pr_summary

__all__ = [
    "rmse",
    "mae",
    "r2_score",
    "pearson_r",
    "spearman_r",
    "f1_score",
    "precision_recall_curve",
    "cohens_kappa",
    "regression_report",
    "BinaryClassificationResult",
    "classify_by_threshold",
    "evaluate_scores",
    "per_target_correlations",
    "correlation_table",
    "format_table",
    "render_pr_summary",
]
