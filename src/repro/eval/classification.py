"""Binary-classification framing of binding-affinity prediction.

The paper repeatedly recasts affinity prediction as binary classification:
Figure 2 separates "stronger" (pK > 8) from "weaker" (pK < 6) core-set
binders, and Figure 6 separates experimentally tested compounds at the
33 % inhibition threshold. This module packages that framing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.metrics import (
    average_precision,
    best_f1_score,
    cohens_kappa,
    precision_recall_curve,
    random_classifier_precision,
)


@dataclass
class BinaryClassificationResult:
    """Precision-recall analysis of one scoring method on one task."""

    method: str
    precision: np.ndarray
    recall: np.ndarray
    thresholds: np.ndarray
    f1: float
    f1_threshold: float
    average_precision: float
    kappa: float
    random_precision: float
    num_positive: int
    num_negative: int

    def summary(self) -> dict[str, float]:
        """Scalar summary (what the paper annotates on the plots)."""
        return {
            "f1": self.f1,
            "average_precision": self.average_precision,
            "kappa": self.kappa,
            "random_precision": self.random_precision,
            "num_positive": float(self.num_positive),
            "num_negative": float(self.num_negative),
        }


def classify_by_threshold(
    values: np.ndarray,
    positive_threshold: float,
    negative_threshold: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Build binary labels from continuous ground-truth values.

    Parameters
    ----------
    values:
        Ground-truth values (experimental pK or percent inhibition).
    positive_threshold:
        Values strictly greater than this are positives.
    negative_threshold:
        Values strictly below this are negatives; defaults to
        ``positive_threshold`` (no excluded middle). When the two
        thresholds differ (e.g. pK > 8 positive, pK < 6 negative as in
        Figure 2), intermediate examples are excluded.

    Returns
    -------
    (labels, kept_indices):
        Boolean labels for the retained examples and the indices of the
        retained examples in the original array.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    negative_threshold = positive_threshold if negative_threshold is None else negative_threshold
    if negative_threshold > positive_threshold:
        raise ValueError("negative_threshold must not exceed positive_threshold")
    positives = values > positive_threshold
    negatives = values < negative_threshold
    if negative_threshold == positive_threshold:
        negatives = ~positives
    kept = np.where(positives | negatives)[0]
    labels = positives[kept]
    return labels, kept


def evaluate_scores(method: str, labels: np.ndarray, scores: np.ndarray) -> BinaryClassificationResult:
    """Full precision-recall evaluation of one method's scores."""
    labels = np.asarray(labels).astype(bool).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have matching shapes")
    precision, recall, thresholds = precision_recall_curve(labels, scores)
    f1, f1_threshold = best_f1_score(labels, scores)
    kappa = cohens_kappa(labels, scores >= f1_threshold)
    return BinaryClassificationResult(
        method=method,
        precision=precision,
        recall=recall,
        thresholds=thresholds,
        f1=f1,
        f1_threshold=f1_threshold,
        average_precision=average_precision(labels, scores),
        kappa=kappa,
        random_precision=random_classifier_precision(labels),
        num_positive=int(labels.sum()),
        num_negative=int((~labels).sum()),
    )
