"""Stage graph of the fault-tolerant campaign runtime.

The screening campaign is a linear-looking pipeline (library build,
ligand prep, docking, MM/GBSA, fusion scoring, cost function, assays),
but treating it as one monolithic pass means any fault restarts it from
scratch — the opposite of what a days-long Sierra-class campaign can
afford.  The runtime instead models the campaign as a graph of named
stages with explicit dependencies; every stage's output can be
checkpointed under a content key, and a resumed campaign restores
completed stages instead of re-executing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class StageFailure(RuntimeError):
    """A stage exhausted its retries (or raised) and the campaign stopped.

    Checkpoints of previously completed stages remain on disk, so a
    re-run resumes from the last completed stage.
    """

    def __init__(self, stage: str, cause: BaseException) -> None:
        super().__init__(f"stage '{stage}' failed: {cause}")
        self.stage = stage
        self.cause = cause


@dataclass(frozen=True)
class Stage:
    """One named, checkpointable unit of campaign work.

    Attributes
    ----------
    name:
        Unique stage name (used in checkpoint filenames and reports).
    provides:
        Names of the context artifacts this stage produces.  A stage's
        payload is exactly ``{name: value for name in provides}``, which
        is what gets pickled into its checkpoint.
    deps:
        Names of stages that must complete first.  Checkpoint keys chain
        through ``deps``, so invalidating a stage invalidates everything
        downstream of it.
    """

    name: str
    provides: tuple[str, ...]
    deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage name must be non-empty")
        if not self.provides:
            raise ValueError(f"stage '{self.name}' must provide at least one artifact")


class StageGraph:
    """An ordered collection of stages with validated dependencies.

    Stages must be declared after every stage they depend on (the
    campaign graph is built statically, so declaration order doubles as
    a topological order).
    """

    def __init__(self, stages: list[Stage]) -> None:
        seen: set[str] = set()
        for stage in stages:
            if stage.name in seen:
                raise ValueError(f"duplicate stage name '{stage.name}'")
            for dep in stage.deps:
                if dep not in seen:
                    raise ValueError(
                        f"stage '{stage.name}' depends on '{dep}', which is not declared before it"
                    )
            seen.add(stage.name)
        self._stages = list(stages)
        self._by_name = {stage.name: stage for stage in stages}

    def __iter__(self):
        return iter(self._stages)

    def __len__(self) -> int:
        return len(self._stages)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        return [stage.name for stage in self._stages]

    def stage(self, name: str) -> Stage:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise KeyError(f"unknown stage '{name}'; stages: {self.names()}") from exc

    def downstream_of(self, name: str) -> list[str]:
        """Names of every stage that (transitively) depends on ``name``."""
        self.stage(name)
        tainted = {name}
        for stage in self._stages:
            if any(dep in tainted for dep in stage.deps):
                tainted.add(stage.name)
        tainted.discard(name)
        return [s.name for s in self._stages if s.name in tainted]


@dataclass
class StageReport:
    """What happened to one stage during one :meth:`CampaignRuntime.run`.

    ``extra`` carries stage-specific observability payloads; the fusion
    scoring stage records ``"modelled_schedule"`` (simulated-LSF
    projection) and ``"feature_cache"`` (hit/miss/eviction counters of
    the featurization engine's content-addressed cache) there.
    """

    name: str
    key: str
    status: str  # "executed" | "restored"
    duration_s: float = 0.0
    attempts: int = 1
    retries: int = 0
    faults: list[str] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def executed(self) -> bool:
        return self.status == "executed"

    @property
    def restored(self) -> bool:
        return self.status == "restored"


@dataclass
class RuntimeReport:
    """Per-run record of stage execution, restores, retries and faults."""

    stages: list[StageReport] = field(default_factory=list)

    def stage(self, name: str) -> StageReport:
        for report in self.stages:
            if report.name == name:
                return report
        raise KeyError(f"no report for stage '{name}'")

    def executed_stages(self) -> list[str]:
        return [r.name for r in self.stages if r.executed]

    def restored_stages(self) -> list[str]:
        return [r.name for r in self.stages if r.restored]

    def total_retries(self) -> int:
        return sum(r.retries for r in self.stages)

    def as_dict(self) -> dict:
        return {
            "executed": self.executed_stages(),
            "restored": self.restored_stages(),
            "total_retries": self.total_retries(),
            "stages": [
                {
                    "name": r.name,
                    "status": r.status,
                    "duration_s": r.duration_s,
                    "attempts": r.attempts,
                    "retries": r.retries,
                    "faults": list(r.faults),
                    **({"extra": dict(r.extra)} if r.extra else {}),
                }
                for r in self.stages
            ],
        }
