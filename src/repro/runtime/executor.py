"""Stage execution: scoring routes, bounded worker pool, fault retries.

Two layers live here:

* :class:`StageExecutor` — the scoring route.  The fusion-scoring stage
  produces one :class:`~repro.screening.job.JobResult` per job, either
  through the offline batch path (:class:`BatchStageExecutor`, wrapping
  :class:`~repro.screening.job.FusionScoringJob`) or through the online
  service (:class:`ServingStageExecutor`, sharing one warm
  :class:`~repro.serving.ScoringService` across every site).  The
  runtime only sees the common interface, so routing a campaign through
  serving is a one-line configuration change.

* :class:`JobRunner` — the execution engine.  Independent jobs (e.g.
  per-site scoring jobs) run concurrently on a bounded thread pool, and
  every attempt passes through a
  :class:`~repro.hpc.faults.FaultInjector` draw: an injected fault
  aborts the attempt and the runner retries with exponential backoff,
  exactly the requeue behaviour the paper's LSF campaigns relied on.
"""

from __future__ import annotations

import abc
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.chem.complexes import ProteinLigandComplex
from repro.chem.protein import BindingSite
from repro.docking.conveyorlc import DockingRecord
from repro.featurize.engine import FeaturePipeline
from repro.featurize.pipeline import ComplexFeaturizer
from repro.hpc.faults import FaultEvent, FaultInjector
from repro.hpc.h5store import H5Store
from repro.nn.module import Module
from repro.screening.job import FusionScoringJob, JobResult
from repro.screening.output import write_job_output
from repro.screening.partition import partition_poses_into_jobs
from repro.serving import ScoringService, ServingConfig
from repro.utils.logging import get_logger
from repro.utils.timer import Timer

logger = get_logger("repro.runtime")


class StageJobError(RuntimeError):
    """A job kept drawing faults until its retry budget ran out."""

    def __init__(self, job_name: str, fault: FaultEvent, attempts: int) -> None:
        super().__init__(f"job '{job_name}' failed after {attempts} attempts (last fault: {fault.mode})")
        self.job_name = job_name
        self.fault = fault
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff schedule for fault-injected job attempts."""

    max_retries: int = 3
    backoff_s: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")

    def backoff_for(self, attempt: int) -> float:
        """Seconds to wait before re-running after a failed ``attempt``."""
        return self.backoff_s * self.backoff_factor ** max(attempt - 1, 0)


@dataclass
class StageJob:
    """One retryable unit of stage work executed by the :class:`JobRunner`."""

    name: str
    fn: Callable[[], Any]
    num_nodes: int = 1
    #: paper-scale duration used when projecting the job set onto the
    #: simulated LSF cluster (see ``CampaignRuntime`` / ``JobScheduler``)
    modelled_seconds: float = 60.0


class JobRunner:
    """Run independent jobs concurrently with fault-injected retries.

    Results come back in submission order regardless of which worker
    finished first, so concurrent execution cannot perturb downstream
    determinism.
    """

    def __init__(
        self,
        max_workers: int = 4,
        fault_injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = int(max_workers)
        self.faults = fault_injector or FaultInjector(enabled=False)
        self.retry = retry or RetryPolicy()
        self.attempts: dict[str, int] = {}
        self.fault_log: list[FaultEvent] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def total_attempts(self) -> int:
        return sum(self.attempts.values())

    @property
    def total_retries(self) -> int:
        """Attempts beyond the first, summed over all jobs seen so far."""
        return sum(count - 1 for count in self.attempts.values())

    # ------------------------------------------------------------------ #
    def run_all(self, jobs: Sequence[StageJob]) -> list[Any]:
        """Execute every job; raises :class:`StageJobError` on retry exhaustion."""
        jobs = list(jobs)
        if not jobs:
            return []
        if self.max_workers == 1 or len(jobs) == 1:
            return [self._run_one(job) for job in jobs]
        with ThreadPoolExecutor(
            max_workers=min(self.max_workers, len(jobs)), thread_name_prefix="stage-job"
        ) as pool:
            futures = [pool.submit(self._run_one, job) for job in jobs]
            return [future.result() for future in futures]

    def _run_one(self, job: StageJob) -> Any:
        attempt = 0
        while True:
            attempt += 1
            with self._lock:
                self.attempts[job.name] = attempt
            fault = self.faults.check(job.name, job.num_nodes, attempt=attempt)
            if fault is None:
                return job.fn()
            with self._lock:
                self.fault_log.append(fault)
            if attempt > self.retry.max_retries:
                raise StageJobError(job.name, fault, attempt)
            delay = self.retry.backoff_for(attempt)
            logger.info("fault %s; retrying '%s' (attempt %d) after %.3fs", fault.mode, job.name, attempt + 1, delay)
            if delay > 0:
                time.sleep(delay)


# --------------------------------------------------------------------------- #
# Scoring routes
# --------------------------------------------------------------------------- #
class StageExecutor(abc.ABC):
    """Common interface of the fusion-scoring routes.

    ``site_jobs`` turns one binding site's docked poses into a list of
    :class:`StageJob` thunks, each resolving to a
    :class:`~repro.screening.job.JobResult`.  Executors are context
    managers so routes with background machinery (the serving route's
    replica pool) get a clean lifecycle.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def site_jobs(
        self,
        site: BindingSite,
        records: Sequence[DockingRecord],
        use_threads: bool | None = None,
    ) -> list[StageJob]:
        """Jobs scoring ``records`` against ``site`` (empty when no poses)."""

    def start(self) -> "StageExecutor":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "StageExecutor":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()


class BatchStageExecutor(StageExecutor):
    """Offline route: partition poses into distributed Fusion scoring jobs."""

    name = "batch"

    def __init__(
        self,
        model: Module,
        featurizer: ComplexFeaturizer | FeaturePipeline,
        poses_per_job: int = 200,
        num_nodes: int = 4,
        gpus_per_node: int = 4,
        batch_size_per_rank: int = 8,
    ) -> None:
        self.model = model
        self.featurizer = featurizer
        self.poses_per_job = int(poses_per_job)
        self.num_nodes = int(num_nodes)
        self.gpus_per_node = int(gpus_per_node)
        self.batch_size_per_rank = int(batch_size_per_rank)

    def site_jobs(
        self,
        site: BindingSite,
        records: Sequence[DockingRecord],
        use_threads: bool | None = None,
    ) -> list[StageJob]:
        jobs: list[StageJob] = []
        for job_index, job_records in enumerate(partition_poses_into_jobs(list(records), self.poses_per_job)):
            if not job_records:
                continue
            scoring_job = FusionScoringJob(
                model=self.model,
                featurizer=self.featurizer,
                site=site,
                records=job_records,
                num_nodes=self.num_nodes,
                gpus_per_node=self.gpus_per_node,
                batch_size_per_rank=self.batch_size_per_rank,
                job_name=f"{site.name}-job{job_index}",
            )
            jobs.append(
                StageJob(
                    name=scoring_job.job_name,
                    fn=lambda job=scoring_job: job.run(use_threads=use_threads),
                    num_nodes=self.num_nodes,
                    modelled_seconds=scoring_job.modelled_estimate().total_minutes * 60.0,
                )
            )
        return jobs


class ServingStageExecutor(StageExecutor):
    """Online route: rescore sites through one shared :class:`ScoringService`.

    One service (and therefore one warm result cache) spans every site,
    so repeated poses — e.g. a campaign re-run after adding compounds —
    cost nothing.  Each site still produces a ``JobResult`` with the
    store layout the retrospective analysis expects.
    """

    name = "serving"

    def __init__(
        self,
        model: Module,
        featurizer: ComplexFeaturizer | FeaturePipeline,
        serving_config: ServingConfig | None = None,
        timeout_s: float = 300.0,
    ) -> None:
        self.service = ScoringService(model=model, featurizer=featurizer, config=serving_config or ServingConfig())
        self.timeout_s = float(timeout_s)

    def start(self) -> "ServingStageExecutor":
        self.service.start()
        return self

    def close(self) -> None:
        self.service.close()

    def site_jobs(
        self,
        site: BindingSite,
        records: Sequence[DockingRecord],
        use_threads: bool | None = None,
    ) -> list[StageJob]:
        records = list(records)
        if not records:
            return []
        job_name = f"{site.name}-serving"
        return [
            StageJob(
                name=job_name,
                fn=lambda: self._score_site(site, records, job_name),
                num_nodes=1,
            )
        ]

    def _score_site(self, site: BindingSite, records: list[DockingRecord], job_name: str) -> JobResult:
        timer = Timer()
        with timer.section("evaluation"):
            complexes = [
                ProteinLigandComplex(site=site, ligand=r.pose, complex_id=r.compound_id, pose_id=r.pose_id)
                for r in records
            ]
            responses = self.service.score_many(complexes, timeout=self.timeout_s)
        store = H5Store()
        with timer.section("output"):
            write_job_output(
                store,
                site.name,
                [r.complex_id for r in responses],
                [r.pose_id for r in responses],
                np.array([r.score for r in responses]),
                job_name=job_name,
                timings=timer.as_dict(),
            )
        predictions = {(r.complex_id, r.pose_id): r.score for r in responses}
        for record in records:
            record.fusion_pk = predictions[(record.compound_id, record.pose_id)]
        return JobResult(
            job_name=job_name,
            site_name=site.name,
            predictions=predictions,
            store=store,
            timings=timer.as_dict(),
            num_ranks=self.service.pool.num_replicas,
        )
