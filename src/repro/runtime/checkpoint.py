"""Content-keyed stage checkpoints persisted through :class:`H5Store`.

Every stage of the campaign runtime is identified by a content key: a
hash of the stage name, the configuration ingredients that influence its
output (seeds, library counts, model weights, ...) and the keys of its
upstream stages.  A checkpoint is only ever restored when its stored key
matches the key recomputed from the current configuration, so stale
results — a different seed, a swapped model checkpoint, a changed cost
function — can never leak into a resumed campaign; they simply miss.

Payloads are arbitrary Python stage outputs (docking databases, job
results, assay tables), pickled and carried as a ``uint8`` dataset
inside an :class:`repro.hpc.h5store.H5Store`, one ``.npz`` container per
stage.  Only load checkpoint directories you (or your own campaign
runs) wrote: pickle is not a sandbox.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.hpc.h5store import H5Store
from repro.utils.logging import get_logger

logger = get_logger("repro.runtime")


def checkpoint_key(stage_name: str, ingredients: Mapping[str, object], dep_keys: Sequence[str] = ()) -> str:
    """Content key of one stage: name + config ingredients + upstream keys.

    ``ingredients`` values are hashed by ``repr``, so use stable,
    deterministic values (numbers, strings, sorted tuples, digests).
    """
    hasher = hashlib.sha256()
    hasher.update(stage_name.encode())
    for name in sorted(ingredients):
        hasher.update(f"|{name}={ingredients[name]!r}".encode())
    for dep_key in dep_keys:
        hasher.update(f"|dep:{dep_key}".encode())
    return hasher.hexdigest()


class CheckpointStore:
    """Stage-name -> (content key, payload) store, one H5Store file per stage.

    Parameters
    ----------
    directory:
        Where checkpoint ``.npz`` containers live.  ``None`` keeps
        checkpoints in memory only — useful for tests and for snapshot
        isolation without touching disk.
    """

    GROUP = "runtime/checkpoint"

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, tuple[str, bytes]] = {}

    # ------------------------------------------------------------------ #
    def _path(self, stage_name: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{stage_name}.npz"

    def save(self, stage_name: str, key: str, payload: Any) -> None:
        """Persist one stage's payload under its content key."""
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if self.directory is None:
            self._memory[stage_name] = (key, blob)
            return
        store = H5Store()
        prefix = f"{self.GROUP}/{stage_name}"
        store.write(f"{prefix}/payload", np.frombuffer(blob, dtype=np.uint8))
        store.write_attr(prefix, "key", key)
        store.write_attr(prefix, "stage", stage_name)
        store.write_attr(prefix, "num_bytes", len(blob))
        # Write-then-rename so a kill mid-save can never leave a truncated
        # container at the final path (a leftover *.tmp.npz is ignored:
        # its attrs live under the real stage name, so stored_key misses).
        tmp_path = self.directory / f"{stage_name}.tmp.npz"
        store.save(tmp_path)
        os.replace(tmp_path, self._path(stage_name))

    def load(self, stage_name: str, key: str) -> Any | None:
        """Restore a payload; ``None`` on a missing, stale or corrupt checkpoint."""
        if self.directory is None:
            entry = self._memory.get(stage_name)
            if entry is None or entry[0] != key:
                return None
            return pickle.loads(entry[1])
        # Compare keys via the metadata-only path first: a stale or
        # missing checkpoint never pays for decompressing its payload.
        if self.stored_key(stage_name) != key:
            return None
        path = self._path(stage_name)
        prefix = f"{self.GROUP}/{stage_name}"
        try:
            store = H5Store.load(path)
            blob = store.read(f"{prefix}/payload").astype(np.uint8).tobytes()
            return pickle.loads(blob)
        except Exception as error:  # a broken checkpoint is a cache miss, not a crash
            logger.warning("discarding unreadable checkpoint %s: %s", path, error)
            return None

    # ------------------------------------------------------------------ #
    def stored_key(self, stage_name: str) -> str | None:
        """The content key a stage was checkpointed under, if any.

        Reads only the container's metadata member — the (potentially
        large) pickled payload dataset is never decompressed.
        """
        if self.directory is None:
            entry = self._memory.get(stage_name)
            return entry[0] if entry else None
        attrs = self._read_stage_attrs(stage_name)
        if attrs is None:
            return None
        key = attrs.get("key")
        return str(key) if key is not None else None

    def _read_stage_attrs(self, stage_name: str) -> dict | None:
        """Attributes of one checkpoint file without materializing its payload."""
        path = self._path(stage_name)
        if not path.exists():
            return None
        try:
            attrs = H5Store.peek_attrs(path)
        except Exception:
            return None
        return attrs.get(f"{self.GROUP}/{stage_name}", {})

    def completed_stages(self) -> dict[str, str]:
        """Mapping of checkpointed stage name -> stored content key."""
        if self.directory is None:
            return {name: key for name, (key, _blob) in self._memory.items()}
        out: dict[str, str] = {}
        for path in sorted(self.directory.glob("*.npz")):
            name = path.stem
            key = self.stored_key(name)
            if key is not None:
                out[name] = key
        return out

    def discard(self, stage_name: str) -> None:
        """Drop one stage's checkpoint (no-op if absent)."""
        if self.directory is None:
            self._memory.pop(stage_name, None)
            return
        path = self._path(stage_name)
        if path.exists():
            path.unlink()

    def clear(self) -> None:
        if self.directory is None:
            self._memory.clear()
            return
        for path in self.directory.glob("*.npz"):
            path.unlink()
