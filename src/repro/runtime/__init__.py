"""Fault-tolerant campaign runtime: stage graph, checkpoints, resumption.

Decomposes the screening campaign into named, resumable stages with
content-keyed checkpoints persisted through the HDF5-like store, retries
fault-injected stage jobs with backoff on a bounded worker pool, and
routes fusion scoring through either batch jobs or the online serving
service behind one :class:`StageExecutor` interface.
"""

from repro.runtime.campaign import (
    CAMPAIGN_STAGES,
    STREAMING_CAMPAIGN_STAGES,
    CampaignRuntime,
    RuntimeConfig,
)
from repro.runtime.checkpoint import CheckpointStore, checkpoint_key
from repro.runtime.executor import (
    BatchStageExecutor,
    JobRunner,
    RetryPolicy,
    ServingStageExecutor,
    StageExecutor,
    StageJob,
    StageJobError,
)
from repro.runtime.stages import (
    RuntimeReport,
    Stage,
    StageFailure,
    StageGraph,
    StageReport,
)

__all__ = [
    "CAMPAIGN_STAGES",
    "STREAMING_CAMPAIGN_STAGES",
    "CampaignRuntime",
    "RuntimeConfig",
    "CheckpointStore",
    "checkpoint_key",
    "BatchStageExecutor",
    "JobRunner",
    "RetryPolicy",
    "ServingStageExecutor",
    "StageExecutor",
    "StageJob",
    "StageJobError",
    "Stage",
    "StageGraph",
    "StageFailure",
    "StageReport",
    "RuntimeReport",
]
