"""The fault-tolerant campaign runtime.

:class:`CampaignRuntime` decomposes the screening campaign into the
stage graph below, executes stages in order, checkpoints every completed
stage under a content key and restores completed stages on re-runs —
a killed campaign resumes from the last completed stage instead of
restarting, which is what makes days-long screening allotments under a
12-hour wall-time limit (and the paper's §4.3 fault rates) survivable.

::

    library ──> ligand_prep ──> docking ──> mmgbsa ──> fusion_scoring ──> cost_function ──> assays

Stage keys chain: each key hashes the stage's own configuration
ingredients (seeds, library counts, docking knobs, the fusion model's
weight fingerprint, cost-function weights, ...) together with the keys
of its dependencies.  Changing the seed invalidates everything; swapping
the fusion model checkpoint invalidates ``fusion_scoring`` and its
downstream stages while docking checkpoints keep being reused.

The fusion stage fans out into per-site scoring jobs executed by a
bounded worker pool with fault-injected retries (:class:`JobRunner`),
and the same job set is projected onto the simulated LSF cluster
(:class:`~repro.hpc.scheduler.JobScheduler`) to report paper-scale
makespan and attempt statistics.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.chem.complexes import InteractionModel, ProteinLigandComplex
from repro.chem.protein import make_sarscov2_targets
from repro.datasets.assays import make_assay_panel, simulate_campaign_assays
from repro.datasets.libraries import build_screening_deck
from repro.docking.ampl import AMPLSurrogate
from repro.docking.conveyorlc import CDT1Receptor, CDT2Ligand, CDT3Docking, CDT4Mmgbsa, DockingDatabase
from repro.featurize.engine import FeaturePipeline
from repro.featurize.pipeline import ComplexFeaturizer
from repro.hpc.cluster import SimulatedCluster
from repro.hpc.faults import FaultInjector
from repro.hpc.h5store import H5Store
from repro.hpc.scheduler import Job, JobScheduler, SchedulerConfig
from repro.nn.module import Module
from repro.runtime.checkpoint import CheckpointStore, checkpoint_key
from repro.runtime.executor import (
    BatchStageExecutor,
    JobRunner,
    RetryPolicy,
    ServingStageExecutor,
    StageExecutor,
    StageJob,
)
from repro.runtime.stages import RuntimeReport, Stage, StageFailure, StageGraph, StageReport
from repro.screening.costfunction import CompoundCostFunction, CompoundScore
from repro.screening.job import JobResult
from repro.screening.output import write_job_output, write_topk
from repro.screening.pipeline import CampaignConfig, CampaignResult
from repro.serving.requests import model_fingerprint, site_digest
from repro.telemetry import Telemetry, activate, build_run_record, stage_entry
from repro.telemetry import current as current_telemetry
from repro.telemetry.spans import phase_totals_of
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

logger = get_logger("repro.runtime")

#: The campaign's stage graph (a chain: each stage depends on the previous).
CAMPAIGN_STAGES = StageGraph(
    [
        Stage("library", provides=("sites", "deck")),
        Stage("ligand_prep", provides=("receptors", "ligands"), deps=("library",)),
        Stage("docking", provides=("database",), deps=("ligand_prep",)),
        Stage("mmgbsa", provides=("database",), deps=("docking",)),
        Stage("fusion_scoring", provides=("database", "job_results"), deps=("mmgbsa",)),
        Stage("cost_function", provides=("selections", "ampl_models"), deps=("fusion_scoring",)),
        Stage("assays", provides=("assays", "structural_pk"), deps=("cost_function",)),
    ]
)

#: The streaming campaign's stage graph: prep/dock/rescore/score collapse
#: into one shard-streamed stage (:mod:`repro.screening.stream`) whose
#: *internal* progress checkpoints at shard granularity through the same
#: store, while the downstream selection/assay stages are unchanged.
STREAMING_CAMPAIGN_STAGES = StageGraph(
    [
        Stage("library", provides=("sites", "deck")),
        Stage(
            "streamed_screen",
            provides=("receptors", "database", "job_results", "topk", "stream_stats"),
            deps=("library",),
        ),
        Stage("cost_function", provides=("selections", "ampl_models"), deps=("streamed_screen",)),
        Stage("assays", provides=("assays", "structural_pk"), deps=("cost_function",)),
    ]
)


@dataclass
class RuntimeConfig:
    """Execution policy of the campaign runtime."""

    #: directory for stage checkpoints; ``None`` disables checkpointing
    #: (the thin ``ScreeningCampaign.run()`` facade default)
    checkpoint_dir: str | None = None
    #: restore completed stages from matching checkpoints (disable to
    #: force re-execution while still writing fresh checkpoints)
    resume: bool = True
    #: bound on concurrently running stage jobs (per-site scoring)
    max_workers: int = 4
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: fault source for stage jobs; ``None`` means no injected faults
    fault_injector: FaultInjector | None = None
    #: fusion-scoring route: "auto" follows ``CampaignConfig.use_serving``,
    #: or force "batch" / "serving" explicitly
    executor: str = "auto"
    #: opt-in: project the fusion job set onto the simulated LSF cluster
    #: and record makespan/attempts in the stage report (off by default
    #: so the plain facade run does exactly the monolith's work)
    modelled_schedule: bool = False


class CampaignRuntime:
    """Resumable, fault-tolerant execution of one screening campaign."""

    def __init__(
        self,
        model: Module,
        featurizer: ComplexFeaturizer | FeaturePipeline,
        campaign: CampaignConfig | None = None,
        runtime: RuntimeConfig | None = None,
        cost_function: CompoundCostFunction | None = None,
        interaction_model: InteractionModel | None = None,
        checkpoints: CheckpointStore | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.model = model
        self.featurizer = featurizer
        self.campaign = campaign or CampaignConfig()
        self.runtime = runtime or RuntimeConfig()
        self.cost_function = cost_function or CompoundCostFunction()
        self.interaction_model = interaction_model or InteractionModel()
        if self.runtime.executor not in ("auto", "batch", "serving"):
            raise ValueError(f"unknown executor '{self.runtime.executor}'")
        self.campaign.validate_streaming()
        if checkpoints is not None:
            self.checkpoints: CheckpointStore | None = checkpoints
        elif self.runtime.checkpoint_dir is not None:
            self.checkpoints = CheckpointStore(self.runtime.checkpoint_dir)
        else:
            self.checkpoints = None
        self.stages = STREAMING_CAMPAIGN_STAGES if self.campaign.streaming else CAMPAIGN_STAGES
        self.report = RuntimeReport()
        #: how many times each stage actually executed over this
        #: runtime's lifetime (restores do not count) — the counters the
        #: kill/resume tests assert on
        self.execution_counts: dict[str, int] = {name: 0 for name in self.stages.names()}
        self._model_fp: str | None = None
        #: optional telemetry bundle; activated around :meth:`run` so
        #: nested components (docking kernels, featurization, serving,
        #: the streamed screen) trace into the same tracer.  Observation
        #: only — never part of stage ingredients or checkpoint keys.
        self.telemetry = telemetry
        self._run_duration: float | None = None
        self._run_telemetry: Telemetry | None = None

    # ------------------------------------------------------------------ #
    @property
    def executor_name(self) -> str:
        if self.runtime.executor != "auto":
            return self.runtime.executor
        return "serving" if self.campaign.use_serving else "batch"

    def model_fp(self) -> str:
        """Fingerprint of the fusion model's weights (memoized)."""
        if self._model_fp is None:
            self._model_fp = model_fingerprint(self.model)
        return self._model_fp

    def _featurizer_digest(self) -> tuple:
        """Deterministic identity of the featurization that feeds the model.

        A changed grid resolution or graph cutoff changes model inputs
        (and therefore scores), so it must invalidate the fusion
        checkpoint just like a model-weight swap does.  The scalar
        ``ComplexFeaturizer`` and the vectorized ``FeaturePipeline``
        expose the same config attributes and produce bit-identical
        features, so swapping one for the other deliberately leaves the
        digest (and every fusion checkpoint) intact.
        """
        f = self.featurizer
        return (
            tuple(sorted(vars(f.voxelizer.config).items())),
            repr(f.graph_builder.config),
            f.augment,
            f.rotation_probability,
        )

    # ------------------------------------------------------------------ #
    def run(self, use_threads: bool | None = None, stop_after: str | None = None) -> CampaignResult | None:
        """Execute (or resume) the campaign.

        Parameters
        ----------
        use_threads:
            Forwarded to the batch scoring jobs (see
            :meth:`repro.screening.job.FusionScoringJob.run`).
        stop_after:
            Stop once the named stage has completed and checkpointed —
            simulating a campaign killed mid-flight.  Returns ``None``
            in that case; a later :meth:`run` resumes from the
            checkpoints.

        Raises
        ------
        StageFailure
            When a stage's jobs exhaust their retry budget or its body
            raises.  Checkpoints of completed stages survive, so a
            re-run resumes; the failed stage's report (attempts,
            retries, faults) is preserved in :attr:`report`.
        """
        if stop_after is not None:
            self.stages.stage(stop_after)  # validate the name early
            if self.checkpoints is None:
                raise ValueError(
                    "stop_after requires a checkpoint store: without one the "
                    "completed stages would be silently discarded"
                )
        self.report = RuntimeReport()
        context: dict[str, Any] = {}
        keys: dict[str, str] = {}
        run_started = time.perf_counter()
        telemetry = self.telemetry if self.telemetry is not None else current_telemetry()
        scope = activate(self.telemetry) if self.telemetry is not None else nullcontext()
        tracer = telemetry.tracer
        feature_cache = getattr(self.featurizer, "cache", None)
        if feature_cache is not None:
            telemetry.registry.register_probe("feature_cache", lambda: vars(feature_cache.stats()))
        try:
            with scope:
                for stage in self.stages:
                    key = self.stage_key(stage.name, keys)
                    keys[stage.name] = key
                    started = time.perf_counter()
                    span_index = len(tracer)
                    payload = None
                    with tracer.span(stage.name, stage=stage.name):
                        if self.checkpoints is not None and self.runtime.resume:
                            payload = self.checkpoints.load(stage.name, key)
                            if payload is not None and not set(stage.provides) <= set(payload):
                                # e.g. a checkpoint written before a stage grew a new
                                # artifact: treat as a miss, not a permanent failure
                                logger.warning(
                                    "checkpoint for '%s' lacks required artifacts; re-executing", stage.name
                                )
                                self.checkpoints.discard(stage.name)
                                payload = None
                        if payload is not None:
                            report = StageReport(name=stage.name, key=key, status="restored", attempts=0)
                        else:
                            report = StageReport(name=stage.name, key=key, status="executed")
                            try:
                                payload = self._execute_stage(stage, context, report, use_threads)
                                missing = set(stage.provides) - set(payload)
                                if missing:
                                    raise RuntimeError(f"stage payload missing artifacts {sorted(missing)}")
                            except BaseException as error:
                                # keep the attempt/retry/fault record of the failed stage
                                report.duration_s = time.perf_counter() - started
                                report.extra["phases"] = phase_totals_of(tracer.records()[span_index:])
                                self.report.stages.append(report)
                                if isinstance(error, Exception):
                                    raise StageFailure(stage.name, error) from error
                                raise  # KeyboardInterrupt and friends pass through untouched
                            self.execution_counts[stage.name] += 1
                            if self.checkpoints is not None:
                                try:
                                    self.checkpoints.save(stage.name, key, payload)
                                except Exception as error:
                                    # Checkpointing is a durability optimization: a full
                                    # disk or unpicklable payload must not kill a stage
                                    # that just executed successfully — the campaign
                                    # continues, this stage simply won't restore.
                                    logger.warning("could not checkpoint stage '%s': %s", stage.name, error)
                        context.update(payload)
                    report.duration_s = time.perf_counter() - started
                    # Table 7 phase attribution from the spans this stage's
                    # window emitted (Timer sections in the scoring jobs, the
                    # streamed screen's coordinator sections, ...)
                    report.extra["phases"] = phase_totals_of(tracer.records()[span_index:])
                    self.report.stages.append(report)
                    logger.info("stage %-14s %s in %.3fs", stage.name, report.status, report.duration_s)
                    if stop_after == stage.name:
                        return None
            return self._assemble_result(context)
        finally:
            self._run_duration = time.perf_counter() - run_started
            self._run_telemetry = telemetry

    # ------------------------------------------------------------------ #
    # run record
    # ------------------------------------------------------------------ #
    def run_record(self) -> dict:
        """Run-record document of the most recent :meth:`run`.

        One schema-valid document (see :mod:`repro.telemetry.runrecord`):
        per-stage wall time split into the paper's Table 7 phases
        (startup / evaluation / output, measured from real spans, with
        the unattributed remainder in ``other`` so the four always sum
        to the stage's duration), restore/attempt/retry accounting, the
        metrics-registry snapshot and the aggregated fault history.
        Works after successful, stopped (``stop_after``) and failed runs.
        """
        if self._run_duration is None:
            raise RuntimeError("run_record() requires a prior run()")
        telemetry = self._run_telemetry or Telemetry.disabled()
        stages = []
        for report in self.report.stages:
            extra = {k: v for k, v in report.extra.items() if k != "phases"}
            stages.append(
                stage_entry(
                    report.name,
                    report.status,
                    report.duration_s,
                    report.extra.get("phases"),
                    attempts=report.attempts,
                    retries=report.retries,
                    faults=report.faults,
                    extra=extra or None,
                )
            )
        faults = [fault for report in self.report.stages for fault in report.faults]
        return build_run_record(
            "campaign",
            duration_s=self._run_duration,
            stages=stages,
            metrics=telemetry.snapshot(),
            trace={"num_spans": len(telemetry.tracer)},
            faults=faults,
        )

    # ------------------------------------------------------------------ #
    # content keys
    # ------------------------------------------------------------------ #
    def stage_key(self, stage_name: str, upstream: dict[str, str] | None = None) -> str:
        """Content key of one stage given (or recomputing) upstream keys."""
        stage = self.stages.stage(stage_name)
        if upstream is None:
            upstream = {}
            for prior in self.stages:
                upstream[prior.name] = self.stage_key(prior.name, upstream)
                if prior.name == stage_name:
                    break
            return upstream[stage_name]
        dep_keys = [upstream[dep] for dep in stage.deps]
        return checkpoint_key(stage_name, self._stage_ingredients(stage_name), dep_keys)

    def _stage_ingredients(self, stage_name: str) -> dict[str, object]:
        cfg = self.campaign
        if stage_name == "library":
            sites = "sarscov2-default"
            if cfg.sites is not None:
                sites = tuple(sorted((name, site_digest(site)) for name, site in cfg.sites.items()))
            return {"seed": cfg.seed, "library_counts": tuple(sorted(cfg.library_counts.items())), "sites": sites}
        if stage_name == "ligand_prep":
            return {"seed": cfg.seed}
        if stage_name == "docking":
            return {
                "seed": cfg.seed,
                "poses_per_compound": cfg.poses_per_compound,
                "monte_carlo_steps": cfg.docking_mc_steps,
                "restarts": cfg.docking_restarts,
            }
        if stage_name == "mmgbsa":
            return {"seed": cfg.seed, "subset_fraction": cfg.mmgbsa_subset_fraction}
        if stage_name == "fusion_scoring":
            ingredients: dict[str, object] = {
                "model": self.model_fp(),
                "featurizer": self._featurizer_digest(),
                "executor": self.executor_name,
                "poses_per_job": cfg.poses_per_job,
                "nodes_per_job": cfg.nodes_per_job,
                "gpus_per_node": cfg.gpus_per_node,
                "batch_size_per_rank": cfg.batch_size_per_rank,
            }
            if self.executor_name == "serving":
                # batch composition (and therefore ulp-level rounding) follows these
                ingredients["serving_max_batch_size"] = cfg.serving.max_batch_size
            return ingredients
        if stage_name == "streamed_screen":
            ingredients = dict(self._stream_shard_ingredients())
            # top_k shapes the folded artifact but not shard payloads, so
            # it salts the stage key only — a resumed run with a different
            # K reuses every shard checkpoint and just re-folds
            ingredients["top_k"] = cfg.resolved_top_k()
            return ingredients
        if stage_name == "cost_function":
            weights = tuple(
                sorted((k, v) for k, v in vars(self.cost_function).items() if not k.startswith("_"))
            )
            return {"weights": weights, "compounds_tested_per_site": cfg.compounds_tested_per_site}
        if stage_name == "assays":
            return {
                "seed": cfg.seed,
                "biology_penalty_mean": cfg.biology_penalty_mean,
                "interaction_model": tuple(sorted(vars(self.interaction_model).items())),
            }
        raise KeyError(f"no ingredients defined for stage '{stage_name}'")

    def _stream_shard_ingredients(self) -> dict[str, object]:
        """Everything that shapes one streamed shard's payload.

        ``shard_size`` and worker count are deliberately absent: shard
        results are bit-identical across both (the same invariance —
        and the same reasoning — as ``docking_engine``'s exclusion from
        the docking stage key), so retuning throughput must keep shard
        checkpoints warm.  ``fusion_batch_size`` *is* included because
        NN batch composition moves ulps.
        """
        cfg = self.campaign
        sites = "sarscov2-default"
        if cfg.sites is not None:
            sites = tuple(sorted((name, site_digest(site)) for name, site in cfg.sites.items()))
        return {
            "seed": cfg.seed,
            "sites": sites,
            "poses_per_compound": cfg.poses_per_compound,
            "monte_carlo_steps": cfg.docking_mc_steps,
            "restarts": cfg.docking_restarts,
            "mmgbsa_subset_fraction": cfg.mmgbsa_subset_fraction,
            "model": self.model_fp(),
            "featurizer": self._featurizer_digest(),
            "executor": self.executor_name,
            "fusion_batch_size": cfg.fusion_batch_size,
            **(
                {"serving_max_batch_size": cfg.serving.max_batch_size}
                if self.executor_name == "serving"
                else {}
            ),
        }

    # ------------------------------------------------------------------ #
    # stage bodies (each mirrors the corresponding slice of the original
    # monolithic ScreeningCampaign.run, with identical seeding)
    # ------------------------------------------------------------------ #
    def _execute_stage(
        self, stage: Stage, context: dict[str, Any], report: StageReport, use_threads: bool | None
    ) -> dict[str, Any]:
        fn = getattr(self, f"_stage_{stage.name}")
        return fn(context, report, use_threads)

    def _stage_library(self, context: dict, report: StageReport, use_threads: bool | None) -> dict:
        cfg = self.campaign
        sites = cfg.sites or make_sarscov2_targets(seed=derive_seed(cfg.seed, "targets"))
        deck = build_screening_deck(cfg.library_counts, seed=cfg.seed)
        return {"sites": sites, "deck": deck}

    def _stage_ligand_prep(self, context: dict, report: StageReport, use_threads: bool | None) -> dict:
        receptors = CDT1Receptor().run(list(context["sites"].values()))
        ligands = CDT2Ligand().run(context["deck"].molecules, library="campaign")
        return {"receptors": receptors, "ligands": ligands}

    def _stage_docking(self, context: dict, report: StageReport, use_threads: bool | None) -> dict:
        cfg = self.campaign
        # engine/workers are deliberately absent from the stage's
        # checkpoint ingredients: the batched and scalar dockers are
        # bit-identical, so switching engines must keep checkpoints warm
        docking = CDT3Docking(
            num_poses=cfg.poses_per_compound,
            monte_carlo_steps=cfg.docking_mc_steps,
            restarts=cfg.docking_restarts,
            seed=derive_seed(cfg.seed, "docking"),
            engine=cfg.docking_engine,
            max_workers=cfg.docking_workers,
            backend=cfg.backend,
        )
        database = docking.run(context["receptors"], context["ligands"])
        return {"database": database}

    def _stage_mmgbsa(self, context: dict, report: StageReport, use_threads: bool | None) -> dict:
        cfg = self.campaign
        mmgbsa = CDT4Mmgbsa(
            subset_fraction=cfg.mmgbsa_subset_fraction,
            seed=derive_seed(cfg.seed, "mmgbsa"),
            engine=cfg.docking_engine,
        )
        site_map = {name: receptor.site for name, receptor in context["receptors"].items()}
        database = mmgbsa.run(context["database"], site_map)
        return {"database": database}

    def _stage_fusion_scoring(self, context: dict, report: StageReport, use_threads: bool | None) -> dict:
        database = context["database"]
        sites = context["sites"]
        feature_cache = getattr(self.featurizer, "cache", None)
        cache_before = feature_cache.stats() if feature_cache is not None else None
        runner = JobRunner(
            max_workers=self.runtime.max_workers,
            fault_injector=self.runtime.fault_injector,
            retry=self.runtime.retry,
        )
        with self._make_executor() as executor:
            jobs: list[StageJob] = []
            for site_name, site in sites.items():
                site_records = [r for r in database.records() if r.site_name == site_name]
                jobs.extend(executor.site_jobs(site, site_records, use_threads=use_threads))
            try:
                job_results = runner.run_all(jobs)
            finally:
                report.attempts = runner.total_attempts
                report.retries = runner.total_retries
                report.faults = [str(fault) for fault in runner.fault_log]
        if self.runtime.modelled_schedule and jobs:
            report.extra["modelled_schedule"] = self._modelled_schedule(jobs)
        if feature_cache is not None:
            # observability: how much featurization this stage's scoring put
            # through the engine's cache.  Counters are deltas over the stage
            # (the workbench featurizer is shared across runs, so lifetime
            # totals would conflate unrelated work); size/capacity/bytes are
            # current values.
            stats = feature_cache.stats()
            report.extra["feature_cache"] = {
                "lookups": stats.lookups - cache_before.lookups,
                "hits": stats.hits - cache_before.hits,
                "misses": stats.misses - cache_before.misses,
                "evictions": stats.evictions - cache_before.evictions,
                "size": stats.size,
                "capacity": stats.capacity,
                "bytes": stats.bytes,
            }
        return {"database": database, "job_results": job_results}

    def _stage_streamed_screen(self, context: dict, report: StageReport, use_threads: bool | None) -> dict:
        """Shard-streamed prep → dock → MM/GBSA → fusion with bounded memory.

        Shards checkpoint individually through the runtime's store (under
        a salt derived from :meth:`_stream_shard_ingredients`), so a
        campaign killed mid-stage resumes at shard granularity; once the
        stage completes, its own stage-level checkpoint carries the
        folded payload and the shard files are never consulted again.
        """
        # imported lazily: repro.screening.stream uses the runtime's
        # checkpoint store and retry policy, and this module is imported
        # by the runtime package __init__
        from repro.screening.stream import StreamConfig, StreamingScreen, StreamShardError

        cfg = self.campaign
        sites = context["sites"]
        deck = context["deck"]
        stream_config = StreamConfig(
            shard_size=cfg.shard_size,
            workers=self.runtime.max_workers,
            backend=cfg.backend,
            top_k=cfg.resolved_top_k(),
            fusion_batch_size=cfg.fusion_batch_size,
            poses_per_compound=cfg.poses_per_compound,
            docking_mc_steps=cfg.docking_mc_steps,
            docking_restarts=cfg.docking_restarts,
            docking_engine=cfg.docking_engine,
            mmgbsa=True,
            seed=cfg.seed,
            retry=self.runtime.retry,
        )
        salt = checkpoint_key("stream-shard-salt", self._stream_shard_ingredients())
        service = None
        if self.executor_name == "serving":
            from repro.serving import ScoringService

            service = ScoringService(
                model=self.model,
                featurizer=self.featurizer,
                config=cfg.serving,
                registry=current_telemetry().registry,
            ).start()
        try:
            engine = StreamingScreen(
                self.model,
                self.featurizer,
                sites,
                stream_config,
                service=service,
                checkpoints=self.checkpoints,
                checkpoint_salt=salt,
                fault_injector=self.runtime.fault_injector,
            )
            try:
                result = engine.run(deck.molecules, collect_predictions=True, collect_records=True)
            except StreamShardError as error:
                # the stage failed, but the shards folded before the
                # failure are checkpointed; preserve that progress — and
                # the fault history, like _stage_fusion_scoring does —
                # in the (kept) failure report so operators and the
                # resume tests can see what a re-run will skip
                report.attempts = error.total_attempts
                report.retries = error.total_retries
                report.faults = list(error.faults)
                report.extra["stream"] = {
                    "num_shards": float(error.num_shards),
                    "shards_executed": float(error.shards_executed),
                    "shards_restored": float(error.shards_restored),
                }
                raise
        finally:
            if service is not None:
                service.close()

        database = DockingDatabase()
        database.extend(result.records or [])
        job_results: list[JobResult] = []
        for site_name in sorted(sites):
            site_predictions = (result.predictions or {}).get(site_name, {})
            store = H5Store()
            keys = list(site_predictions)
            write_job_output(
                store,
                site_name,
                [cid for cid, _pid in keys],
                [pid for _cid, pid in keys],
                np.array([site_predictions[key] for key in keys], dtype=np.float64),
                job_name=f"{site_name}-stream",
                timings={"evaluation": result.duration_s},
            )
            ids, scores = result.topk_arrays(site_name)
            write_topk(store, site_name, list(ids), scores, stats=result.stats[site_name].as_dict())
            job_results.append(
                JobResult(
                    job_name=f"{site_name}-stream",
                    site_name=site_name,
                    predictions=dict(site_predictions),
                    store=store,
                    timings={"evaluation": result.duration_s},
                    num_ranks=stream_config.workers,
                )
            )
        report.attempts = result.total_attempts
        report.retries = result.total_retries
        report.faults = list(result.faults)
        report.extra["stream"] = result.summary()
        return {
            "receptors": engine.receptors,
            "database": database,
            "job_results": job_results,
            "topk": result.top_k,
            "stream_stats": {name: stats.as_dict() for name, stats in result.stats.items()},
        }

    def _stage_cost_function(self, context: dict, report: StageReport, use_threads: bool | None) -> dict:
        database = context["database"]
        sites = context["sites"]
        ampl_models = self._fit_ampl_models(database, sites)
        selections: dict[str, list[CompoundScore]] = {}
        for site_name in sites:
            selections[site_name] = self.cost_function.select_top(
                database, site_name, self.campaign.compounds_tested_per_site
            )
        return {"selections": selections, "ampl_models": ampl_models}

    def _stage_assays(self, context: dict, report: StageReport, use_threads: bool | None) -> dict:
        cfg = self.campaign
        database = context["database"]
        sites = context["sites"]
        structural_pk: dict[str, dict[str, float]] = {}
        tested: dict[str, list[tuple[str, float]]] = {}
        for site_name, scores in context["selections"].items():
            site = sites[site_name]
            structural_pk[site_name] = {}
            tested[site_name] = []
            for score in scores:
                best = database.best_pose(site_name, score.compound_id, by="vina")
                complex_ = ProteinLigandComplex(site, best.pose, complex_id=score.compound_id, pose_id=best.pose_id)
                latent = self.interaction_model.true_pk(complex_)
                structural_pk[site_name][score.compound_id] = latent
                tested[site_name].append((score.compound_id, latent))
        panel = make_assay_panel(
            sites, seed=derive_seed(cfg.seed, "assays"), biology_penalty_mean=cfg.biology_penalty_mean
        )
        assays = simulate_campaign_assays(panel, tested)
        return {"assays": assays, "structural_pk": structural_pk}

    # ------------------------------------------------------------------ #
    def _make_executor(self) -> StageExecutor:
        cfg = self.campaign
        if self.executor_name == "serving":
            return ServingStageExecutor(self.model, self.featurizer, serving_config=cfg.serving)
        return BatchStageExecutor(
            self.model,
            self.featurizer,
            poses_per_job=cfg.poses_per_job,
            num_nodes=cfg.nodes_per_job,
            gpus_per_node=cfg.gpus_per_node,
            batch_size_per_rank=cfg.batch_size_per_rank,
        )

    def _fit_ampl_models(self, database, sites) -> dict[str, AMPLSurrogate]:
        """Fit one AMPL surrogate per site on the MM/GBSA-rescored poses."""
        models: dict[str, AMPLSurrogate] = {}
        for site_name in sites:
            ligands, scores = [], []
            for compound_id in database.compounds(site_name):
                best = database.best_pose(site_name, compound_id, by="mmgbsa")
                if best is None or not np.isfinite(best.mmgbsa_score):
                    continue
                ligands.append(best.pose)
                scores.append(best.mmgbsa_score)
            if len(ligands) >= 3:
                models[site_name] = AMPLSurrogate(target=site_name).fit(ligands, np.array(scores))
        return models

    def _modelled_schedule(self, jobs: list[StageJob]) -> dict[str, float]:
        """Project the fusion job set onto the simulated LSF cluster.

        The scheduler shares the runner's fault statistics (same seed,
        same per-(job, attempt) draws), so the simulated requeue pattern
        matches the retries the real execution just performed — while
        virtual time reports what the job set would cost at paper scale.
        """
        max_nodes = max(job.num_nodes for job in jobs)
        cluster = SimulatedCluster(num_nodes=max(self.runtime.max_workers, 1) * max_nodes)
        source = self.runtime.fault_injector
        injector = FaultInjector(
            failure_rates=source.failure_rates if source else None,
            seed=source.seed if source else 0,
            enabled=bool(source and source.enabled),
        )
        scheduler = JobScheduler(cluster, SchedulerConfig(), fault_injector=injector)
        for job in jobs:
            scheduler.submit(
                Job(
                    name=job.name,
                    num_nodes=job.num_nodes,
                    duration_seconds=max(job.modelled_seconds, 1.0),
                    max_retries=self.runtime.retry.max_retries,
                )
            )
        scheduler.run()
        completed = scheduler.completed_jobs()
        return {
            "makespan_s": scheduler.makespan(),
            "jobs": float(len(jobs)),
            "completed": float(len(completed)),
            "attempts": float(sum(j.attempts for j in scheduler.jobs.values())),
        }

    # ------------------------------------------------------------------ #
    def _assemble_result(self, context: dict[str, Any]) -> CampaignResult:
        job_results = context["job_results"]
        return CampaignResult(
            sites=context["sites"],
            database=context["database"],
            selections=context["selections"],
            assays=context["assays"],
            job_results=job_results,
            stores=[result.store for result in job_results],
            ampl_models=context["ampl_models"],
            structural_pk=context["structural_pk"],
            topk=context.get("topk"),
            stream_stats=context.get("stream_stats"),
        )
