"""Serialization helpers for checkpoints and experiment artifacts.

Model checkpoints and screening outputs are stored as flat dictionaries
of NumPy arrays.  ``numpy.savez`` provides a portable container; nested
keys are flattened with ``"/"`` separators so that the same helpers can
back both model checkpoints and the HDF5-like hierarchical store in
:mod:`repro.hpc.h5store`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping

import numpy as np


def save_npz_dict(path: str | os.PathLike, data: Mapping[str, np.ndarray], meta: Mapping[str, Any] | None = None) -> None:
    """Save ``data`` (a flat str->ndarray mapping) plus optional JSON metadata.

    Parameters
    ----------
    path:
        Output path; ``.npz`` is appended by NumPy if missing.
    data:
        Mapping of array name to array. Keys may contain ``"/"`` to encode
        hierarchy.
    meta:
        Optional JSON-serializable metadata stored under the reserved key
        ``__meta__``.
    """
    arrays = {_escape_key(k): np.asarray(v) for k, v in data.items()}
    if meta is not None:
        arrays["__meta__"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(os.fspath(path), **arrays)


def load_npz_dict(path: str | os.PathLike) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Load a dictionary previously written by :func:`save_npz_dict`.

    Returns
    -------
    (data, meta):
        ``data`` maps original keys to arrays, ``meta`` is the stored
        metadata dictionary (empty if none was written).
    """
    with np.load(_resolve_npz_path(path), allow_pickle=False) as archive:
        data: dict[str, np.ndarray] = {}
        meta: dict[str, Any] = {}
        for key in archive.files:
            if key == "__meta__":
                meta = _decode_meta(archive)
            else:
                data[_unescape_key(key)] = archive[key]
    return data, meta


def load_npz_meta(path: str | os.PathLike) -> dict[str, Any]:
    """Read only the metadata block of a :func:`save_npz_dict` container.

    npz members decompress lazily, so this never touches the (potentially
    large) array payloads — useful for peeking at attributes of stored
    checkpoints without materializing them.
    """
    with np.load(_resolve_npz_path(path), allow_pickle=False) as archive:
        if "__meta__" in archive.files:
            return _decode_meta(archive)
    return {}


def _resolve_npz_path(path: str | os.PathLike) -> str:
    path = os.fspath(path)
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    return path


def _decode_meta(archive: Any) -> dict[str, Any]:
    return json.loads(bytes(archive["__meta__"].tobytes()).decode("utf-8"))


def _escape_key(key: str) -> str:
    # np.savez forbids keys that collide with file names badly; slashes are fine
    # inside zip members but keep them portable by substituting.
    return key.replace("/", "__SLASH__")


def _unescape_key(key: str) -> str:
    return key.replace("__SLASH__", "/")
