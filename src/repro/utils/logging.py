"""Library-wide logging configuration."""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


def get_logger(name: str, level: int = logging.WARNING) -> logging.Logger:
    """Return a namespaced logger configured once with a stream handler.

    The library never configures the root logger; applications remain in
    control of global logging. Each ``repro.*`` logger gets a single
    stream handler the first time it is requested.
    """
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
        logger.setLevel(level)
        logger.propagate = False
    return logger
