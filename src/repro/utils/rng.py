"""Deterministic random-number helpers.

Every stochastic component of the library (dataset synthesis, pose
generation, model initialization, PB2 exploration, fault injection)
receives an explicit seed or ``numpy.random.Generator`` so that paper
experiments are exactly reproducible. The helpers here derive
statistically independent child seeds from a parent seed and a string
label, which keeps the per-rank / per-trial streams stable regardless of
execution order — the same property the paper relies on when restarting
jobs under the LSF wall-time limit.
"""

from __future__ import annotations

import hashlib

import numpy as np

# Public alias used across the code base.
RandomState = np.random.Generator


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and an arbitrary label tuple.

    The derivation hashes the parent seed together with the labels so
    that different labels produce independent streams and the mapping is
    stable across processes and Python hash randomization.

    Parameters
    ----------
    seed:
        Parent seed (any non-negative integer).
    labels:
        Arbitrary objects identifying the child stream; their ``repr`` is
        hashed, so use stable values (strings, ints, tuples).

    Returns
    -------
    int
        A 63-bit child seed.
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode("utf-8"))
    for label in labels:
        h.update(b"|")
        h.update(repr(label).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little") & ((1 << 63) - 1)


def spawn_rng(seed: int | np.random.Generator | None, *labels: object) -> np.random.Generator:
    """Create a ``numpy.random.Generator`` for the stream named by ``labels``.

    Parameters
    ----------
    seed:
        Either an integer parent seed, an existing generator (in which
        case a child is spawned from it), or ``None`` for OS entropy.
    labels:
        Stream labels passed to :func:`derive_seed` when ``seed`` is an
        integer.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return np.random.default_rng(seed.integers(0, 2**63 - 1))
    return np.random.default_rng(derive_seed(int(seed), *labels))


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize ``rng`` into a ``numpy.random.Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
