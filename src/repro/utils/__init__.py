"""Shared utilities: seeded RNG helpers, logging, timing and serialization."""

from repro.utils.rng import RandomState, derive_seed, spawn_rng
from repro.utils.timer import Timer, WallClock
from repro.utils.logging import get_logger
from repro.utils.serialization import load_npz_dict, save_npz_dict
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "RandomState",
    "derive_seed",
    "spawn_rng",
    "Timer",
    "WallClock",
    "get_logger",
    "save_npz_dict",
    "load_npz_dict",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_shape",
]
