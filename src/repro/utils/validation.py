"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly by default)."""
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    value = float(value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_shape(name: str, array: np.ndarray, shape: Sequence[int | None]) -> np.ndarray:
    """Validate ``array.shape`` against ``shape`` where ``None`` matches anything."""
    array = np.asarray(array)
    if len(array.shape) != len(shape):
        raise ValueError(f"{name} must have {len(shape)} dimensions, got shape {array.shape}")
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                f"{name} has shape {array.shape}, expected axis {axis} to be {expected}"
            )
    return array
