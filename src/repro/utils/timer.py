"""Timing utilities used by throughput accounting and benchmarks."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.telemetry.spans import PHASES


class Timer:
    """A thread-safe accumulating stopwatch, routed through the tracer.

    ``Timer`` is used by the screening job to break run time into the
    startup / evaluation / output phases reported in the paper's Table 7.
    Sections may enter/exit concurrently from worker-pool threads — the
    per-section totals accumulate under a lock, so no update is lost.

    Each ``section()`` also opens a span on the active tracer
    (:func:`repro.telemetry.current`, or an explicit ``tracer=``), with
    the section name doubling as its Table 7 phase when it is one of
    ``startup`` / ``evaluation`` / ``output`` — so existing Timer call
    sites show up in exported traces without any further wiring.

    Examples
    --------
    >>> t = Timer()
    >>> with t.section("startup"):
    ...     pass
    >>> "startup" in t.sections
    True
    """

    def __init__(self, tracer=None, stage: str | None = None) -> None:
        self.sections: dict[str, float] = {}
        self.stage = stage
        self._tracer = tracer
        self._lock = threading.Lock()

    def _resolve_tracer(self):
        if self._tracer is not None:
            return self._tracer
        from repro.telemetry import current

        return current().tracer

    def section(self, name: str) -> "_TimerSection":
        """Return a context manager accumulating elapsed time under ``name``."""
        return _TimerSection(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to section ``name`` (creating it if needed)."""
        with self._lock:
            self.sections[name] = self.sections.get(name, 0.0) + float(seconds)

    def total(self) -> float:
        """Total seconds accumulated across all sections."""
        with self._lock:
            return float(sum(self.sections.values()))

    def as_dict(self) -> dict[str, float]:
        """Copy of the per-section totals."""
        with self._lock:
            return dict(self.sections)


class _TimerSection:
    def __init__(self, timer: Timer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0
        self._span = None

    def __enter__(self) -> "_TimerSection":
        tracer = self._timer._resolve_tracer()
        self._span = tracer.span(
            self._name,
            phase=self._name if self._name in PHASES else None,
            stage=self._timer.stage,
        )
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.add(self._name, time.perf_counter() - self._start)
        if self._span is not None:
            self._span.__exit__(*exc)
            self._span = None


@dataclass
class WallClock:
    """A virtual wall clock used by the simulated cluster and scheduler.

    The simulated HPC components (LSF-like scheduler, MPI jobs, fault
    injector) advance this clock with *modelled* durations rather than
    real time, which lets the benchmarks reproduce multi-hour screening
    campaigns in milliseconds while keeping the arithmetic of the
    paper's timing tables intact.
    """

    now: float = 0.0
    history: list[tuple[float, str]] = field(default_factory=list)

    def advance(self, seconds: float, label: str = "") -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by a negative duration: {seconds}")
        self.now += float(seconds)
        if label:
            self.history.append((self.now, label))
        return self.now

    def reset(self) -> None:
        """Reset the clock to zero and clear history."""
        self.now = 0.0
        self.history.clear()
