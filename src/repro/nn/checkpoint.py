"""Model / optimizer checkpointing.

Checkpoints serve two roles in the reproduction, exactly as in the
paper: (1) pausing and resuming PB2 trials across the LSF wall-time
limit, and (2) loading the individually pre-trained 3D-CNN and SG-CNN
heads into the Coherent Fusion model (its ``Pre-trained = T``
hyper-parameter).
"""

from __future__ import annotations

import os
from typing import Any

from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.utils.serialization import load_npz_dict, save_npz_dict


def save_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    meta: dict[str, Any] | None = None,
) -> None:
    """Serialize ``model`` (and optionally optimizer state) to ``path``."""
    data = {f"model/{k}": v for k, v in model.state_dict().items()}
    if optimizer is not None:
        data.update({f"optim/{k}": v for k, v in optimizer.state_dict().items()})
    save_npz_dict(path, data, meta=meta or {})


def load_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    strict: bool = True,
) -> dict[str, Any]:
    """Load a checkpoint into ``model`` / ``optimizer`` and return its metadata."""
    data, meta = load_npz_dict(path)
    model_state = {k[len("model/"):]: v for k, v in data.items() if k.startswith("model/")}
    model.load_state_dict(model_state, strict=strict)
    if optimizer is not None:
        optim_state = {k[len("optim/"):]: v for k, v in data.items() if k.startswith("optim/")}
        optimizer.load_state_dict(optim_state)
    return meta
