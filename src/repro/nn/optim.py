"""Optimizers explored by the PB2 hyper-parameter search (Table 1)."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter


class ParameterPack:
    """Contiguous flat storage for a parameter list.

    Packing copies every parameter into one float64 buffer and rebinds
    each ``p.data`` to a view into it, so per-parameter access (forward
    passes, ``load_state_dict`` writes via ``data[...] = value``) keeps
    working while whole-model updates become single vector operations
    over :attr:`buffer`.  Optimizer moment slots are packed the same way
    with :meth:`pack_slots`, which is what the fused ``step_fused`` path
    operates on.

    Code that *replaces* ``p.data`` (rather than writing into it) breaks
    the aliasing; the trainer owns the model lifecycle while a pack is
    live.
    """

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("cannot pack an empty parameter list")
        self._slices: list[tuple[int, int, tuple[int, ...]]] = []
        offset = 0
        for p in self.params:
            size = int(p.data.size)
            self._slices.append((offset, size, p.data.shape))
            offset += size
        self.size = offset
        self.buffer = np.empty(self.size, dtype=np.float64)
        for p, (off, size, shape) in zip(self.params, self._slices):
            self.buffer[off : off + size] = np.asarray(p.data, dtype=np.float64).ravel()
            p.data = self.buffer[off : off + size].reshape(shape)

    def views(self, flat: np.ndarray) -> list[np.ndarray]:
        """Per-parameter reshaped views into ``flat`` (same layout as the buffer)."""
        flat = np.asarray(flat)
        if flat.shape != (self.size,):
            raise ValueError(f"expected a flat ({self.size},) vector, got {flat.shape}")
        return [flat[off : off + size].reshape(shape) for off, size, shape in self._slices]

    def pack_slots(self, slots: list[np.ndarray]) -> np.ndarray:
        """Pack per-parameter slot arrays (moments) into one flat buffer.

        The list entries are replaced in place by views into the returned
        buffer, so both the per-parameter ``step()`` loop and the fused
        vector path see the same storage.
        """
        flat = np.empty(self.size, dtype=np.float64)
        views = self.views(flat)
        if len(slots) != len(views):
            raise ValueError("slot list does not match the packed parameter list")
        for view, slot in zip(views, slots):
            view[...] = slot
        slots[:] = views
        return flat

    def grad_vector(self) -> np.ndarray:
        """Concatenated parameter gradients (zeros where a grad is unset)."""
        out = np.zeros(self.size, dtype=np.float64)
        for p, (off, size, _shape) in zip(self.params, self._slices):
            if p.grad is not None:
                out[off : off + size] = np.asarray(p.grad, dtype=np.float64).ravel()
        return out

    def get_flat(self) -> np.ndarray:
        """Copy of the packed parameter values."""
        return self.buffer.copy()

    def set_flat(self, values: np.ndarray) -> None:
        """Overwrite every packed parameter from a flat vector."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.size,):
            raise ValueError(f"expected a flat ({self.size},) vector, got {values.shape}")
        self.buffer[...] = values


class Optimizer:
    """Base class holding a parameter list and a learning rate.

    The learning rate is exposed as a mutable attribute because PB2
    perturbs it between perturbation intervals without rebuilding the
    optimizer (the "learned schedule of hyper-parameters" the paper
    credits for the final models).
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.step_count = 0
        self._pack: ParameterPack | None = None

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored on the parameters."""
        raise NotImplementedError

    # -- fused vector path --------------------------------------------------
    def fuse(self) -> ParameterPack:
        """Pack parameters (and moment slots) into contiguous flat buffers.

        After fusing, :meth:`step_fused` applies whole-model updates as
        single vector operations — elementwise identical (bitwise) to the
        per-parameter :meth:`step` loop, since every update formula is
        purely elementwise.  Idempotent; returns the pack.
        """
        if self._pack is None:
            self._pack = ParameterPack(self.params)
            self._fuse_state(self._pack)
        return self._pack

    def _fuse_state(self, pack: ParameterPack) -> None:
        """Pack optimizer moment slots; overridden by stateful optimizers."""

    def step_fused(self, grad_flat: np.ndarray) -> None:
        """Apply one update from an explicit flat gradient vector.

        Unlike :meth:`step`, the gradient is supplied by the caller (the
        distributed trainer hands in the exactly-reduced global
        gradient) and *every* packed parameter is updated — a parameter
        without gradient signal contributes zeros rather than being
        skipped.
        """
        if self._pack is None:
            raise RuntimeError("step_fused requires fuse() to have been called")
        grad_flat = np.asarray(grad_flat, dtype=np.float64)
        if grad_flat.shape != (self._pack.size,):
            raise ValueError(f"expected a flat ({self._pack.size},) gradient, got {grad_flat.shape}")
        self.step_count += 1
        self._step_fused(grad_flat)

    def _step_fused(self, grad: np.ndarray) -> None:
        raise NotImplementedError

    # -- state (for checkpoint / PB2 exploit) -------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return optimizer state (moment estimates etc.) keyed by slot name.

        Every optimizer saves ``step`` so restored step accounting (bias
        correction, schedules keyed on it) resumes where it left off —
        previously only Adam did, and a restored SGD/RMSprop/Adadelta
        silently restarted from step 0.
        """
        return {"step": np.asarray(self.step_count)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore optimizer state produced by :meth:`state_dict`."""
        if "step" in state:
            self.step_count = int(state["step"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.step_count += 1
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data -= self.lr * update

    def _fuse_state(self, pack):
        self._velocity_flat = pack.pack_slots(self._velocity)

    def _step_fused(self, grad):
        if self.weight_decay:
            grad = grad + self.weight_decay * self._pack.buffer
        if self.momentum:
            self._velocity_flat *= self.momentum
            self._velocity_flat += grad
            update = self._velocity_flat
        else:
            update = grad
        self._pack.buffer -= self.lr * update

    def state_dict(self):
        state = super().state_dict()
        state.update({f"velocity/{i}": v.copy() for i, v in enumerate(self._velocity)})
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        for i in range(len(self._velocity)):
            key = f"velocity/{i}"
            if key in state:
                self._velocity[i][...] = state[key]


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _apply_weight_decay(self, p: Parameter, grad: np.ndarray) -> np.ndarray:
        # classic (L2-coupled) weight decay; AdamW overrides.
        if self.weight_decay:
            return grad + self.weight_decay * p.data
        return grad

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = self._apply_weight_decay(p, p.grad)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            if isinstance(self, AdamW) and self.weight_decay:
                update = update + self.lr * self.weight_decay * p.data
            p.data -= update

    def _fuse_state(self, pack):
        self._m_flat = pack.pack_slots(self._m)
        self._v_flat = pack.pack_slots(self._v)

    def _step_fused(self, grad):
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        if self.weight_decay and not isinstance(self, AdamW):
            grad = grad + self.weight_decay * self._pack.buffer
        self._m_flat *= self.beta1
        self._m_flat += (1.0 - self.beta1) * grad
        self._v_flat *= self.beta2
        self._v_flat += (1.0 - self.beta2) * grad * grad
        m_hat = self._m_flat / bias1
        v_hat = self._v_flat / bias2
        update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        if isinstance(self, AdamW) and self.weight_decay:
            update = update + self.lr * self.weight_decay * self._pack.buffer
        self._pack.buffer -= update

    def state_dict(self):
        state = super().state_dict()
        state.update({f"m/{i}": m.copy() for i, m in enumerate(self._m)})
        state.update({f"v/{i}": v.copy() for i, v in enumerate(self._v)})
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        for i in range(len(self._m)):
            if f"m/{i}" in state:
                self._m[i][...] = state[f"m/{i}"]
            if f"v/{i}" in state:
                self._v[i][...] = state[f"v/{i}"]


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter 2017)."""

    def _apply_weight_decay(self, p: Parameter, grad: np.ndarray) -> np.ndarray:
        # Decoupled: decay is applied directly to the weights in step().
        return grad


class RMSprop(Optimizer):
    """RMSprop (Graves 2013)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2, alpha: float = 0.99, eps: float = 1e-8) -> None:
        super().__init__(params, lr)
        self.alpha = float(alpha)
        self.eps = float(eps)
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.step_count += 1
        for p, sq in zip(self.params, self._sq):
            if p.grad is None:
                continue
            sq *= self.alpha
            sq += (1.0 - self.alpha) * p.grad * p.grad
            p.data -= self.lr * p.grad / (np.sqrt(sq) + self.eps)

    def _fuse_state(self, pack):
        self._sq_flat = pack.pack_slots(self._sq)

    def _step_fused(self, grad):
        self._sq_flat *= self.alpha
        self._sq_flat += (1.0 - self.alpha) * grad * grad
        self._pack.buffer -= self.lr * grad / (np.sqrt(self._sq_flat) + self.eps)

    def state_dict(self):
        state = super().state_dict()
        state.update({f"sq/{i}": s.copy() for i, s in enumerate(self._sq)})
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        for i in range(len(self._sq)):
            if f"sq/{i}" in state:
                self._sq[i][...] = state[f"sq/{i}"]


class Adadelta(Optimizer):
    """Adadelta (Zeiler 2012; listed in the paper under Duchi et al. adaptive methods)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1.0, rho: float = 0.9, eps: float = 1e-6) -> None:
        super().__init__(params, lr)
        self.rho = float(rho)
        self.eps = float(eps)
        self._acc_grad = [np.zeros_like(p.data) for p in self.params]
        self._acc_delta = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.step_count += 1
        for p, acc_g, acc_d in zip(self.params, self._acc_grad, self._acc_delta):
            if p.grad is None:
                continue
            acc_g *= self.rho
            acc_g += (1.0 - self.rho) * p.grad * p.grad
            delta = np.sqrt(acc_d + self.eps) / np.sqrt(acc_g + self.eps) * p.grad
            acc_d *= self.rho
            acc_d += (1.0 - self.rho) * delta * delta
            p.data -= self.lr * delta

    def _fuse_state(self, pack):
        self._acc_grad_flat = pack.pack_slots(self._acc_grad)
        self._acc_delta_flat = pack.pack_slots(self._acc_delta)

    def _step_fused(self, grad):
        self._acc_grad_flat *= self.rho
        self._acc_grad_flat += (1.0 - self.rho) * grad * grad
        delta = np.sqrt(self._acc_delta_flat + self.eps) / np.sqrt(self._acc_grad_flat + self.eps) * grad
        self._acc_delta_flat *= self.rho
        self._acc_delta_flat += (1.0 - self.rho) * delta * delta
        self._pack.buffer -= self.lr * delta

    def state_dict(self):
        state = super().state_dict()
        state.update({f"acc_grad/{i}": g.copy() for i, g in enumerate(self._acc_grad)})
        state.update({f"acc_delta/{i}": d.copy() for i, d in enumerate(self._acc_delta)})
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        for i in range(len(self._acc_grad)):
            if f"acc_grad/{i}" in state:
                self._acc_grad[i][...] = state[f"acc_grad/{i}"]
            if f"acc_delta/{i}" in state:
                self._acc_delta[i][...] = state[f"acc_delta/{i}"]


OPTIMIZERS = {
    "sgd": SGD,
    "adam": Adam,
    "adamw": AdamW,
    "rmsprop": RMSprop,
    "adadelta": Adadelta,
}


def build_optimizer(name: str, params: Iterable[Parameter], lr: float, **kwargs) -> Optimizer:
    """Instantiate an optimizer by the lowercase names used in Table 1."""
    key = name.lower()
    if key not in OPTIMIZERS:
        raise ValueError(f"unknown optimizer '{name}'; options: {sorted(OPTIMIZERS)}")
    return OPTIMIZERS[key](params, lr=lr, **kwargs)
