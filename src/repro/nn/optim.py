"""Optimizers explored by the PB2 hyper-parameter search (Table 1)."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a parameter list and a learning rate.

    The learning rate is exposed as a mutable attribute because PB2
    perturbs it between perturbation intervals without rebuilding the
    optimizer (the "learned schedule of hyper-parameters" the paper
    credits for the final models).
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored on the parameters."""
        raise NotImplementedError

    # -- state (for checkpoint / PB2 exploit) -------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return optimizer state (moment estimates etc.) keyed by slot name."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore optimizer state produced by :meth:`state_dict`."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.step_count += 1
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data -= self.lr * update

    def state_dict(self):
        return {f"velocity/{i}": v.copy() for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state):
        for i in range(len(self._velocity)):
            key = f"velocity/{i}"
            if key in state:
                self._velocity[i][...] = state[key]


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _apply_weight_decay(self, p: Parameter, grad: np.ndarray) -> np.ndarray:
        # classic (L2-coupled) weight decay; AdamW overrides.
        if self.weight_decay:
            return grad + self.weight_decay * p.data
        return grad

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = self._apply_weight_decay(p, p.grad)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            if isinstance(self, AdamW) and self.weight_decay:
                update = update + self.lr * self.weight_decay * p.data
            p.data -= update

    def state_dict(self):
        state = {f"m/{i}": m.copy() for i, m in enumerate(self._m)}
        state.update({f"v/{i}": v.copy() for i, v in enumerate(self._v)})
        state["step"] = np.asarray(self.step_count)
        return state

    def load_state_dict(self, state):
        for i in range(len(self._m)):
            if f"m/{i}" in state:
                self._m[i][...] = state[f"m/{i}"]
            if f"v/{i}" in state:
                self._v[i][...] = state[f"v/{i}"]
        if "step" in state:
            self.step_count = int(state["step"])


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter 2017)."""

    def _apply_weight_decay(self, p: Parameter, grad: np.ndarray) -> np.ndarray:
        # Decoupled: decay is applied directly to the weights in step().
        return grad


class RMSprop(Optimizer):
    """RMSprop (Graves 2013)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2, alpha: float = 0.99, eps: float = 1e-8) -> None:
        super().__init__(params, lr)
        self.alpha = float(alpha)
        self.eps = float(eps)
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.step_count += 1
        for p, sq in zip(self.params, self._sq):
            if p.grad is None:
                continue
            sq *= self.alpha
            sq += (1.0 - self.alpha) * p.grad * p.grad
            p.data -= self.lr * p.grad / (np.sqrt(sq) + self.eps)

    def state_dict(self):
        return {f"sq/{i}": s.copy() for i, s in enumerate(self._sq)}

    def load_state_dict(self, state):
        for i in range(len(self._sq)):
            if f"sq/{i}" in state:
                self._sq[i][...] = state[f"sq/{i}"]


class Adadelta(Optimizer):
    """Adadelta (Zeiler 2012; listed in the paper under Duchi et al. adaptive methods)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1.0, rho: float = 0.9, eps: float = 1e-6) -> None:
        super().__init__(params, lr)
        self.rho = float(rho)
        self.eps = float(eps)
        self._acc_grad = [np.zeros_like(p.data) for p in self.params]
        self._acc_delta = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.step_count += 1
        for p, acc_g, acc_d in zip(self.params, self._acc_grad, self._acc_delta):
            if p.grad is None:
                continue
            acc_g *= self.rho
            acc_g += (1.0 - self.rho) * p.grad * p.grad
            delta = np.sqrt(acc_d + self.eps) / np.sqrt(acc_g + self.eps) * p.grad
            acc_d *= self.rho
            acc_d += (1.0 - self.rho) * delta * delta
            p.data -= self.lr * delta

    def state_dict(self):
        state = {f"acc_grad/{i}": g.copy() for i, g in enumerate(self._acc_grad)}
        state.update({f"acc_delta/{i}": d.copy() for i, d in enumerate(self._acc_delta)})
        return state

    def load_state_dict(self, state):
        for i in range(len(self._acc_grad)):
            if f"acc_grad/{i}" in state:
                self._acc_grad[i][...] = state[f"acc_grad/{i}"]
            if f"acc_delta/{i}" in state:
                self._acc_delta[i][...] = state[f"acc_delta/{i}"]


OPTIMIZERS = {
    "sgd": SGD,
    "adam": Adam,
    "adamw": AdamW,
    "rmsprop": RMSprop,
    "adadelta": Adadelta,
}


def build_optimizer(name: str, params: Iterable[Parameter], lr: float, **kwargs) -> Optimizer:
    """Instantiate an optimizer by the lowercase names used in Table 1."""
    key = name.lower()
    if key not in OPTIMIZERS:
        raise ValueError(f"unknown optimizer '{name}'; options: {sorted(OPTIMIZERS)}")
    return OPTIMIZERS[key](params, lr=lr, **kwargs)
