"""Graph neural-network layers for the SG-CNN (PotentialNet-style) head.

The spatial-graph model in the paper is based on Gated Graph Sequence
Neural Networks (Li et al. 2015) as used by PotentialNet (Feinberg et
al. 2018): per-edge-type message passing followed by a GRU state update,
a covalent-only propagation stage, a covalent+non-covalent stage, and a
gated "graph gather" pooling restricted to ligand atoms.

Graphs are batched by block-diagonal stacking (the PyTorch-Geometric
convention): node features of every graph in a batch are concatenated
and a membership matrix maps nodes back to their graph for pooling, so
every operation remains a dense NumPy matrix product that the autograd
engine can differentiate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng

#: Edge types used by the SG-CNN; order matters for parameter naming.
EDGE_TYPES = ("covalent", "noncovalent")


@dataclass
class GraphBatch:
    """A batch of molecular graphs stacked block-diagonally.

    Attributes
    ----------
    node_features:
        ``(total_nodes, F)`` array of per-atom feature vectors.
    adjacency:
        Mapping from edge type (``"covalent"`` / ``"noncovalent"``) to a
        dense ``(total_nodes, total_nodes)`` adjacency matrix. Matrices
        are block-diagonal: no edges connect atoms of different graphs.
    graph_index:
        ``(total_nodes,)`` integer array giving the graph id of each node.
    ligand_mask:
        ``(total_nodes,)`` boolean array marking ligand atoms; graph
        gather pools only over these nodes, as in PotentialNet.
    num_graphs:
        Number of graphs in the batch.
    """

    node_features: np.ndarray
    adjacency: dict[str, np.ndarray]
    graph_index: np.ndarray
    ligand_mask: np.ndarray
    num_graphs: int
    ids: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.node_features = np.asarray(self.node_features, dtype=np.float64)
        self.graph_index = np.asarray(self.graph_index, dtype=np.int64)
        self.ligand_mask = np.asarray(self.ligand_mask, dtype=bool)
        n = self.node_features.shape[0]
        if self.graph_index.shape != (n,):
            raise ValueError("graph_index length must match number of nodes")
        if self.ligand_mask.shape != (n,):
            raise ValueError("ligand_mask length must match number of nodes")
        for etype, matrix in self.adjacency.items():
            matrix = np.asarray(matrix, dtype=np.float64)
            if matrix.shape != (n, n):
                raise ValueError(f"adjacency['{etype}'] must be ({n}, {n}), got {matrix.shape}")
            self.adjacency[etype] = matrix

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def feature_dim(self) -> int:
        return int(self.node_features.shape[1])

    def membership_matrix(self) -> np.ndarray:
        """Return the ``(num_graphs, total_nodes)`` one-hot membership matrix."""
        matrix = np.zeros((self.num_graphs, self.num_nodes))
        matrix[self.graph_index, np.arange(self.num_nodes)] = 1.0
        return matrix

    @staticmethod
    def from_graphs(graphs: Sequence[Mapping[str, np.ndarray]]) -> "GraphBatch":
        """Stack individual graph dictionaries into one batch.

        Each graph mapping must provide ``node_features`` (n_i, F),
        per-edge-type adjacency matrices under ``adjacency`` (dict), a
        ``ligand_mask`` (n_i,), and optionally an ``id`` string.
        """
        if not graphs:
            raise ValueError("cannot build a GraphBatch from an empty sequence")
        feature_dim = np.asarray(graphs[0]["node_features"]).shape[1]
        features, masks, index, ids = [], [], [], []
        blocks: dict[str, list[np.ndarray]] = {etype: [] for etype in EDGE_TYPES}
        for g_id, graph in enumerate(graphs):
            nf = np.asarray(graph["node_features"], dtype=np.float64)
            if nf.shape[1] != feature_dim:
                raise ValueError("all graphs in a batch must share the node feature dimension")
            n_i = nf.shape[0]
            features.append(nf)
            masks.append(np.asarray(graph["ligand_mask"], dtype=bool))
            index.append(np.full(n_i, g_id, dtype=np.int64))
            ids.append(str(graph.get("id", g_id)))
            adjacency = graph["adjacency"]
            for etype in EDGE_TYPES:
                blocks[etype].append(np.asarray(adjacency.get(etype, np.zeros((n_i, n_i)))))
        total = int(sum(f.shape[0] for f in features))
        stacked_adj = {}
        for etype in EDGE_TYPES:
            matrix = np.zeros((total, total))
            offset = 0
            for block in blocks[etype]:
                n_i = block.shape[0]
                matrix[offset : offset + n_i, offset : offset + n_i] = block
                offset += n_i
            stacked_adj[etype] = matrix
        return GraphBatch(
            node_features=np.concatenate(features, axis=0),
            adjacency=stacked_adj,
            graph_index=np.concatenate(index),
            ligand_mask=np.concatenate(masks),
            num_graphs=len(graphs),
            ids=ids,
        )


class _ScatterPlan:
    """Deterministic segment-sum: sort the scatter index once, ``reduceat`` forever.

    ``np.add.at`` is the obvious scatter-add but is both slow (no
    vectorized fast path for repeated indices) and, more importantly
    here, accumulation-order *opaque*.  Sorting edge values by target
    with a stable argsort and summing each run with ``np.add.reduceat``
    fixes the accumulation order to (target, original edge position) —
    deterministic for a given edge list, which is what makes flat-path
    training reproducible bit-for-bit.
    """

    __slots__ = ("size", "order", "starts", "targets")

    def __init__(self, index: np.ndarray, size: int) -> None:
        index = np.asarray(index, dtype=np.int64)
        self.size = int(size)
        self.order = np.argsort(index, kind="stable")
        sorted_index = index[self.order]
        if sorted_index.size:
            change = np.flatnonzero(np.diff(sorted_index)) + 1
            self.starts = np.concatenate([np.zeros(1, dtype=np.int64), change])
            self.targets = sorted_index[self.starts]
        else:
            self.starts = np.zeros(0, dtype=np.int64)
            self.targets = np.zeros(0, dtype=np.int64)

    def scatter(self, values: np.ndarray) -> np.ndarray:
        """Sum ``values`` (one row per edge) into ``(size, ...)`` rows by index."""
        out = np.zeros((self.size,) + values.shape[1:], dtype=values.dtype)
        if self.order.size:
            out[self.targets] = np.add.reduceat(values[self.order], self.starts, axis=0)
        return out


@dataclass
class FlatEdges:
    """One edge type of a flat graph batch, as parallel edge arrays.

    ``src``/``dst`` are node indices into the batch's stacked node array
    and ``weight`` carries the adjacency entry (distance kernel x bond
    order), so the dense contribution ``A @ X`` becomes
    ``scatter_dst(weight * X[src])`` without materialising the
    ``(total, total)`` block-diagonal matrix.
    """

    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    num_nodes: int

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.weight = np.asarray(self.weight, dtype=np.float64)
        self.num_nodes = int(self.num_nodes)
        if not (self.src.shape == self.dst.shape == self.weight.shape):
            raise ValueError("src, dst and weight must have identical shapes")
        self._dst_plan: _ScatterPlan | None = None
        self._src_plan: _ScatterPlan | None = None

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    def scatter_dst(self, values: np.ndarray) -> np.ndarray:
        """Sum per-edge rows into destination nodes (forward message passing)."""
        if self._dst_plan is None:
            self._dst_plan = _ScatterPlan(self.dst, self.num_nodes)
        return self._dst_plan.scatter(values)

    def scatter_src(self, values: np.ndarray) -> np.ndarray:
        """Sum per-edge rows into source nodes (the transposed/backward pass)."""
        if self._src_plan is None:
            self._src_plan = _ScatterPlan(self.src, self.num_nodes)
        return self._src_plan.scatter(values)


def _edge_propagate(hw: Tensor, edges: FlatEdges) -> Tensor:
    """Flat message passing: ``out[d] += w * hw[s]`` over all edges ``(s, d, w)``.

    Equivalent to the dense ``Tensor(A).matmul(hw)`` with ``A[d, s] = w``;
    the backward pass is the transposed scatter (``grad[s] += w * g[d]``).
    """
    weight = edges.weight[:, None]
    data = edges.scatter_dst(weight * hw.data[edges.src])

    def backward(grad):
        return (edges.scatter_src(weight * grad[edges.dst]),)

    return hw._make(data, (hw,), backward)


def _segment_pool(values: Tensor, graph_index: np.ndarray, num_graphs: int) -> Tensor:
    """Sum node rows into per-graph rows; the flat form of membership matmul.

    Nodes of a batch are stored graph-contiguously, so pooling is a
    single ``reduceat`` over the run starts; the backward pass is a row
    gather.
    """
    counts = np.bincount(graph_index, minlength=num_graphs)
    if np.any(counts == 0):
        raise ValueError("segment pooling requires every graph to have at least one node")
    starts = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]])
    data = np.add.reduceat(values.data, starts, axis=0)

    def backward(grad):
        return (grad[graph_index],)

    return values._make(data, (values,), backward)


@dataclass
class FlatGraphBatch:
    """A batch of molecular graphs in flat edge-list layout.

    The vectorized counterpart of :class:`GraphBatch`: node features are
    stacked exactly the same way, but adjacency is kept as per-edge-type
    :class:`FlatEdges` (parallel ``src``/``dst``/``weight`` arrays)
    instead of dense ``(total, total)`` block-diagonal matrices.  Message
    passing and pooling then cost O(edges) instead of O(total^2), which
    is what makes the data-parallel trainer's hot loop batched rather
    than per-graph.  The attribute surface matches ``GraphBatch``
    (``node_features`` / ``adjacency`` / ``ligand_mask`` / ...) so
    :class:`~repro.models.sgcnn.SGCNN` runs on either layout unchanged.
    """

    node_features: np.ndarray
    edges: dict[str, FlatEdges]
    graph_index: np.ndarray
    ligand_mask: np.ndarray
    num_graphs: int
    ids: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.node_features = np.asarray(self.node_features, dtype=np.float64)
        self.graph_index = np.asarray(self.graph_index, dtype=np.int64)
        self.ligand_mask = np.asarray(self.ligand_mask, dtype=bool)
        n = self.node_features.shape[0]
        if self.graph_index.shape != (n,):
            raise ValueError("graph_index length must match number of nodes")
        if self.ligand_mask.shape != (n,):
            raise ValueError("ligand_mask length must match number of nodes")
        for etype, edges in self.edges.items():
            if edges.num_nodes != n:
                raise ValueError(f"edges['{etype}'] indexes {edges.num_nodes} nodes, batch has {n}")

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def feature_dim(self) -> int:
        return int(self.node_features.shape[1])

    @property
    def adjacency(self) -> dict[str, FlatEdges]:
        """Edge-type mapping under the dense batch's attribute name.

        Model code written against ``GraphBatch`` reads
        ``batch.adjacency[etype]``; here the entries are
        :class:`FlatEdges`, which the graph layers dispatch on.
        """
        return self.edges

    @staticmethod
    def from_graphs(graphs: Sequence[Mapping[str, np.ndarray]]) -> "FlatGraphBatch":
        """Stack individual graph dictionaries into one flat batch.

        Accepts the same graph mappings as :meth:`GraphBatch.from_graphs`
        (dense per-graph adjacency), extracting each graph's nonzero
        entries as edges with the batch-level node offset applied.
        """
        if not graphs:
            raise ValueError("cannot build a FlatGraphBatch from an empty sequence")
        feature_dim = np.asarray(graphs[0]["node_features"]).shape[1]
        features, masks, index, ids = [], [], [], []
        src: dict[str, list[np.ndarray]] = {etype: [] for etype in EDGE_TYPES}
        dst: dict[str, list[np.ndarray]] = {etype: [] for etype in EDGE_TYPES}
        weight: dict[str, list[np.ndarray]] = {etype: [] for etype in EDGE_TYPES}
        offset = 0
        for g_id, graph in enumerate(graphs):
            nf = np.asarray(graph["node_features"], dtype=np.float64)
            if nf.shape[1] != feature_dim:
                raise ValueError("all graphs in a batch must share the node feature dimension")
            n_i = nf.shape[0]
            features.append(nf)
            masks.append(np.asarray(graph["ligand_mask"], dtype=bool))
            index.append(np.full(n_i, g_id, dtype=np.int64))
            ids.append(str(graph.get("id", g_id)))
            adjacency = graph["adjacency"]
            for etype in EDGE_TYPES:
                block = np.asarray(adjacency.get(etype, np.zeros((n_i, n_i))), dtype=np.float64)
                if block.shape != (n_i, n_i):
                    raise ValueError(f"adjacency['{etype}'] must be ({n_i}, {n_i}), got {block.shape}")
                # dense message is A @ X: entry [d, s] sends node s to node d
                rows, cols = np.nonzero(block)
                dst[etype].append(rows + offset)
                src[etype].append(cols + offset)
                weight[etype].append(block[rows, cols])
            offset += n_i
        edges = {
            etype: FlatEdges(
                src=np.concatenate(src[etype]) if src[etype] else np.zeros(0, dtype=np.int64),
                dst=np.concatenate(dst[etype]) if dst[etype] else np.zeros(0, dtype=np.int64),
                weight=np.concatenate(weight[etype]) if weight[etype] else np.zeros(0),
                num_nodes=offset,
            )
            for etype in EDGE_TYPES
        }
        return FlatGraphBatch(
            node_features=np.concatenate(features, axis=0),
            edges=edges,
            graph_index=np.concatenate(index),
            ligand_mask=np.concatenate(masks),
            num_graphs=len(graphs),
            ids=ids,
        )


class GatedGraphConv(Module):
    """Gated graph convolution: K rounds of message passing + GRU update.

    Parameters
    ----------
    hidden_dim:
        Dimensionality of node states (inputs with fewer features are
        zero-padded, as in the reference GGNN formulation).
    num_steps:
        Number of propagation steps ``K`` (the paper's "Non-covalent /
        Covalent K" hyper-parameter).
    edge_types:
        Edge types whose adjacency matrices contribute messages.
    """

    def __init__(self, hidden_dim: int, num_steps: int, edge_types: Sequence[str] = EDGE_TYPES, rng=None) -> None:
        super().__init__()
        if hidden_dim <= 0:
            raise ValueError("hidden_dim must be positive")
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        self.hidden_dim = int(hidden_dim)
        self.num_steps = int(num_steps)
        self.edge_types = tuple(edge_types)
        rng = ensure_rng(rng)
        for etype in self.edge_types:
            setattr(self, f"edge_weight_{etype}", Parameter(init.xavier_uniform((hidden_dim, hidden_dim), rng)))
        # GRU update gates
        self.w_z = Parameter(init.xavier_uniform((hidden_dim, hidden_dim), rng))
        self.u_z = Parameter(init.xavier_uniform((hidden_dim, hidden_dim), rng))
        self.w_r = Parameter(init.xavier_uniform((hidden_dim, hidden_dim), rng))
        self.u_r = Parameter(init.xavier_uniform((hidden_dim, hidden_dim), rng))
        self.w_h = Parameter(init.xavier_uniform((hidden_dim, hidden_dim), rng))
        self.u_h = Parameter(init.xavier_uniform((hidden_dim, hidden_dim), rng))
        self.bias_z = Parameter(np.zeros(hidden_dim))
        self.bias_r = Parameter(np.zeros(hidden_dim))
        self.bias_h = Parameter(np.zeros(hidden_dim))

    def forward(self, h: Tensor, adjacency: Mapping[str, np.ndarray]) -> Tensor:
        """Propagate node states ``h`` (total_nodes, hidden_dim)."""
        if h.shape[1] < self.hidden_dim:
            pad = self.hidden_dim - h.shape[1]
            h = Tensor.cat([h, Tensor(np.zeros((h.shape[0], pad)))], axis=1)
        elif h.shape[1] > self.hidden_dim:
            raise ValueError(
                f"node state dimension {h.shape[1]} exceeds hidden_dim {self.hidden_dim}"
            )
        for _ in range(self.num_steps):
            message = None
            for etype in self.edge_types:
                matrix = adjacency.get(etype)
                if matrix is None:
                    continue
                weight = getattr(self, f"edge_weight_{etype}")
                if isinstance(matrix, FlatEdges):
                    contribution = _edge_propagate(h.matmul(weight), matrix)
                else:
                    contribution = Tensor(matrix).matmul(h.matmul(weight))
                message = contribution if message is None else message + contribution
            if message is None:
                raise ValueError("no adjacency matrices matched the configured edge types")
            z = (message.matmul(self.w_z) + h.matmul(self.u_z) + self.bias_z).sigmoid()
            r = (message.matmul(self.w_r) + h.matmul(self.u_r) + self.bias_r).sigmoid()
            h_tilde = (message.matmul(self.w_h) + (r * h).matmul(self.u_h) + self.bias_h).tanh()
            h = (1.0 - z) * h + z * h_tilde
        return h


class GraphGather(Module):
    """Gated graph-level pooling over ligand atoms (PotentialNet gather).

    Produces a fixed-width vector per graph:
    ``sum_{v in ligand} sigmoid(i([h_v, x_v])) * tanh(j(h_v))``
    where ``i`` and ``j`` are learned linear maps and ``x_v`` is the
    original input feature vector of the node.
    """

    def __init__(self, node_dim: int, input_dim: int, gather_width: int, rng=None) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.node_dim = int(node_dim)
        self.input_dim = int(input_dim)
        self.gather_width = int(gather_width)
        self.i_weight = Parameter(init.xavier_uniform((gather_width, node_dim + input_dim), rng))
        self.i_bias = Parameter(np.zeros(gather_width))
        self.j_weight = Parameter(init.xavier_uniform((gather_width, node_dim), rng))
        self.j_bias = Parameter(np.zeros(gather_width))

    def forward(self, h: Tensor, batch: "GraphBatch | FlatGraphBatch") -> Tensor:
        """Pool node states ``h`` into per-graph vectors ``(num_graphs, gather_width)``."""
        x0 = Tensor(batch.node_features)
        gate_input = Tensor.cat([h, x0], axis=1)
        gate = (gate_input.matmul(self.i_weight.T) + self.i_bias).sigmoid()
        value = (h.matmul(self.j_weight.T) + self.j_bias).tanh()
        gated = gate * value
        mask = batch.ligand_mask.astype(np.float64)[:, None]
        gated = gated * Tensor(mask)
        if isinstance(batch, FlatGraphBatch):
            return _segment_pool(gated, batch.graph_index, batch.num_graphs)
        membership = Tensor(batch.membership_matrix())
        return membership.matmul(gated)
