"""Functional neural-network operations built on :class:`repro.nn.Tensor`.

The 3D convolution / pooling kernels here power the voxel-based 3D-CNN
head of the Fusion model; they are implemented with
``numpy.lib.stride_tricks.sliding_window_view`` so the forward pass is a
single ``einsum`` over pre-extracted patches (vectorised, no Python loop
over voxels), following the optimization guidance for numerical NumPy
code (vectorize the hot loop, avoid copies).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.tensor import Tensor, is_grad_enabled


# --------------------------------------------------------------------------- #
# Dense / activation helpers
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias``.

    ``weight`` has shape ``(out_features, in_features)`` following the
    PyTorch convention so checkpoints map one-to-one.
    """
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectified linear unit (Xu et al. 2015)."""
    return x.leaky_relu(negative_slope)


def selu(x: Tensor) -> Tensor:
    """Self-normalizing SELU activation (Klambauer et al. 2017)."""
    return x.selu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` during training."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over the batch (and spatial) axes.

    ``x`` may be ``(N, F)`` or ``(N, C, D, H, W)``; statistics are computed
    over every axis except the feature/channel axis (axis 1 for 5-D input,
    axis 1 for 2-D input). Running statistics are updated in place when
    ``training`` is true.
    """
    if x.ndim == 2:
        axes = (0,)
        stat_shape = (1, x.shape[1])
    elif x.ndim == 5:
        axes = (0, 2, 3, 4)
        stat_shape = (1, x.shape[1], 1, 1, 1)
    else:
        raise ValueError(f"batch_norm supports 2-D or 5-D input, got {x.ndim}-D")

    if training:
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.data.reshape(running_mean.shape)
        running_var *= 1.0 - momentum
        running_var += momentum * var.data.reshape(running_var.shape)
    else:
        mean = Tensor(running_mean.reshape(stat_shape))
        var = Tensor(running_var.reshape(stat_shape))

    inv_std = (var + eps) ** -0.5
    normalized = (x - mean) * inv_std
    return normalized * gamma.reshape(stat_shape) + beta.reshape(stat_shape)


# --------------------------------------------------------------------------- #
# 3-D convolution / pooling
# --------------------------------------------------------------------------- #
def conv3d(x: Tensor, weight: Tensor, bias: Tensor | None = None, padding: int = 0) -> Tensor:
    """3-D cross-correlation with stride 1.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, D, H, W)``.
    weight:
        Kernels of shape ``(C_out, C_in, kD, kH, kW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    padding:
        Symmetric zero padding applied to each spatial axis.

    Returns
    -------
    Tensor of shape ``(N, C_out, D', H', W')`` where ``D' = D + 2p - kD + 1``.
    """
    if x.ndim != 5:
        raise ValueError(f"conv3d expects 5-D input (N, C, D, H, W), got shape {x.shape}")
    if weight.ndim != 5:
        raise ValueError(f"conv3d expects 5-D weight (F, C, kD, kH, kW), got shape {weight.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"input channels ({x.shape[1]}) do not match kernel channels ({weight.shape[1]})"
        )
    padding = int(padding)
    x_data = x.data
    if padding > 0:
        x_data = np.pad(
            x_data, ((0, 0), (0, 0), (padding, padding), (padding, padding), (padding, padding))
        )
    kd, kh, kw = weight.shape[2:]
    for axis, k in zip((2, 3, 4), (kd, kh, kw)):
        if x_data.shape[axis] < k:
            raise ValueError(
                f"spatial size {x_data.shape[2:]} smaller than kernel {(kd, kh, kw)} after padding"
            )

    # patches: (N, C, D', H', W', kd, kh, kw) — a view, not a copy.
    patches = sliding_window_view(x_data, (kd, kh, kw), axis=(2, 3, 4))
    out_data = np.einsum("ncdhwxyz,fcxyz->nfdhw", patches, weight.data, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        # grad: (N, F, D', H', W')
        grad_w = np.einsum("nfdhw,ncdhwxyz->fcxyz", grad, patches, optimize=True)
        grad_b = grad.sum(axis=(0, 2, 3, 4)) if bias is not None else None

        # Gradient wrt input: scatter each kernel offset's contribution.
        grad_x_padded = np.zeros_like(x_data)
        n, f, do, ho, wo = grad.shape
        for dz in range(kd):
            for dy in range(kh):
                for dx in range(kw):
                    # contribution of kernel element (dz,dy,dx) to the input window
                    contrib = np.einsum(
                        "nfdhw,fc->ncdhw", grad, weight.data[:, :, dz, dy, dx], optimize=True
                    )
                    grad_x_padded[:, :, dz : dz + do, dy : dy + ho, dx : dx + wo] += contrib
        if padding > 0:
            grad_x = grad_x_padded[
                :, :, padding:-padding or None, padding:-padding or None, padding:-padding or None
            ]
        else:
            grad_x = grad_x_padded
        grads = [grad_x, grad_w]
        if bias is not None:
            grads.append(grad_b)
        return tuple(grads)

    return x._make(out_data, tuple(parents), backward)


def max_pool3d(x: Tensor, kernel_size: int = 2, stride: int | None = None) -> Tensor:
    """3-D max pooling with cubic windows.

    Trailing voxels that do not fill a complete window are dropped, the
    same behaviour as the default (non-ceil) mode in the reference
    implementation.
    """
    if x.ndim != 5:
        raise ValueError(f"max_pool3d expects 5-D input, got shape {x.shape}")
    k = int(kernel_size)
    s = int(stride) if stride is not None else k
    n, c, d, h, w = x.shape
    do, ho, wo = (d - k) // s + 1, (h - k) // s + 1, (w - k) // s + 1
    if do <= 0 or ho <= 0 or wo <= 0:
        raise ValueError(f"pooling window {k} too large for input spatial shape {(d, h, w)}")

    windows = sliding_window_view(x.data, (k, k, k), axis=(2, 3, 4))[:, :, ::s, ::s, ::s]
    flat = windows.reshape(n, c, do, ho, wo, k * k * k)
    argmax = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward(grad):
        grad_x = np.zeros_like(x.data)
        # offsets of the argmax inside each window
        oz, rem = np.divmod(argmax, k * k)
        oy, ox = np.divmod(rem, k)
        idx_n, idx_c, idx_d, idx_h, idx_w = np.indices((n, c, do, ho, wo), sparse=False)
        src_d = idx_d * s + oz
        src_h = idx_h * s + oy
        src_w = idx_w * s + ox
        np.add.at(grad_x, (idx_n, idx_c, src_d, src_h, src_w), grad)
        return (grad_x,)

    return x._make(out_data, (x,), backward)


def global_avg_pool3d(x: Tensor) -> Tensor:
    """Average over the spatial axes of a ``(N, C, D, H, W)`` tensor."""
    if x.ndim != 5:
        raise ValueError(f"global_avg_pool3d expects 5-D input, got shape {x.shape}")
    return x.mean(axis=(2, 3, 4))


def flatten(x: Tensor, start_axis: int = 1) -> Tensor:
    """Flatten all axes from ``start_axis`` onwards."""
    lead = x.shape[:start_axis]
    tail = int(np.prod(x.shape[start_axis:])) if x.ndim > start_axis else 1
    return x.reshape(*lead, tail)
