"""Loss functions. The paper's models are all trained with MSE on pK values."""

from __future__ import annotations

from repro.nn.tensor import Tensor


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between predictions and targets."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error between predictions and targets."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (prediction - target).abs().mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss, useful as a robustness ablation against affinity label noise."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = abs_diff.clip(0.0, delta)
    linear = abs_diff - quadratic
    return (0.5 * quadratic * quadratic + delta * linear).mean()
