"""A small NumPy autograd engine and neural-network toolkit.

This sub-package stands in for PyTorch / PyTorch-Geometric in the paper's
stack.  It provides reverse-mode automatic differentiation over NumPy
arrays (:class:`repro.nn.tensor.Tensor`), the layers needed by the FAST
model family (3D convolutions, pooling, dense layers, batch
normalization, dropout, gated graph convolutions and graph gather
pooling), the optimizers explored by the PB2 search (Adam, AdamW,
RMSprop, Adadelta, SGD), and data-loading utilities with parallel
pre-fetch workers mirroring the paper's per-rank data loaders.
"""

from repro.nn.tensor import Tensor, no_grad, is_grad_enabled
from repro.nn import functional
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    SELU,
    BatchNorm1d,
    Conv3d,
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool3d,
    ReLU,
    Residual,
)
from repro.nn.graph_layers import FlatEdges, FlatGraphBatch, GatedGraphConv, GraphGather, GraphBatch
from repro.nn.optim import SGD, Adadelta, Adam, AdamW, Optimizer, ParameterPack, RMSprop, build_optimizer
from repro.nn.loss import l1_loss, mse_loss
from repro.nn.dataloader import DataLoader, Dataset, InMemoryDataset
from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.nn.schedules import ConstantLR, ExponentialDecayLR, StepLR

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv3d",
    "MaxPool3d",
    "BatchNorm1d",
    "Dropout",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "SELU",
    "Residual",
    "GatedGraphConv",
    "GraphGather",
    "FlatEdges",
    "FlatGraphBatch",
    "GraphBatch",
    "Optimizer",
    "ParameterPack",
    "SGD",
    "Adam",
    "AdamW",
    "RMSprop",
    "Adadelta",
    "build_optimizer",
    "mse_loss",
    "l1_loss",
    "Dataset",
    "InMemoryDataset",
    "DataLoader",
    "save_checkpoint",
    "load_checkpoint",
    "ConstantLR",
    "StepLR",
    "ExponentialDecayLR",
]
