"""Datasets and data loaders with parallel pre-fetch workers.

The paper attributes much of its screening throughput to per-rank
parallel data loaders (12–24 workers per rank) that read and featurize
poses while the GPU evaluates the previous batch.  ``DataLoader`` mirrors
that design: samples of the next batches are materialized by a thread
pool while the caller consumes the current batch, and the number of
workers is a constructor argument so the screening throughput benchmarks
can sweep it.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.utils.rng import ensure_rng


class Dataset:
    """Abstract random-access dataset."""

    def __len__(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def __getitem__(self, index: int):  # pragma: no cover - interface
        raise NotImplementedError


class InMemoryDataset(Dataset):
    """A dataset backed by a list of already-materialized samples."""

    def __init__(self, samples: Sequence) -> None:
        self._samples = list(samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __getitem__(self, index: int):
        return self._samples[index]


def default_collate(samples: Sequence):
    """Default collation: stack arrays, list anything else.

    If samples are dictionaries, each key is collated independently;
    numeric values are stacked into arrays.
    """
    first = samples[0]
    if isinstance(first, dict):
        return {key: default_collate([s[key] for s in samples]) for key in first}
    if isinstance(first, np.ndarray):
        return np.stack(samples, axis=0)
    if isinstance(first, (int, float, np.floating, np.integer)):
        return np.asarray(samples)
    return list(samples)


class DataLoader:
    """Mini-batch iterator with optional shuffling and pre-fetch workers.

    Parameters
    ----------
    dataset:
        Random-access dataset.
    batch_size:
        Number of samples per batch (the per-rank batch size of the paper,
        up to 56 poses per V100).
    shuffle:
        Shuffle sample order each epoch.
    num_workers:
        Number of pre-fetch threads. ``0`` loads synchronously.
    collate_fn:
        Function combining a list of samples into a batch.
    drop_last:
        Drop the final incomplete batch.
    rng:
        Seed or generator controlling the shuffle order.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 8,
        shuffle: bool = False,
        num_workers: int = 0,
        collate_fn: Callable[[Sequence], object] | None = None,
        drop_last: bool = False,
        rng=None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.num_workers = int(num_workers)
        self.collate_fn = collate_fn or default_collate
        self.drop_last = bool(drop_last)
        self._rng = ensure_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _batch_indices(self) -> list[np.ndarray]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        batches = []
        for start in range(0, len(order), self.batch_size):
            chunk = order[start : start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                continue
            batches.append(chunk)
        return batches

    def _load_batch(self, indices: np.ndarray):
        return self.collate_fn([self.dataset[int(i)] for i in indices])

    def __iter__(self) -> Iterator:
        batches = self._batch_indices()
        if self.num_workers == 0:
            for indices in batches:
                yield self._load_batch(indices)
            return
        # Pre-fetch up to ``num_workers`` batches ahead of consumption.
        with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
            futures = []
            ahead = min(len(batches), self.num_workers)
            for indices in batches[:ahead]:
                futures.append(pool.submit(self._load_batch, indices))
            next_submit = ahead
            for _ in range(len(batches)):
                batch = futures.pop(0).result()
                if next_submit < len(batches):
                    futures.append(pool.submit(self._load_batch, batches[next_submit]))
                    next_submit += 1
                yield batch
