"""Module / Parameter abstractions mirroring the ``torch.nn`` programming model."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network modules.

    Sub-classes register :class:`Parameter`, buffers (plain arrays such as
    batch-norm running statistics) and child modules simply by assigning
    them as attributes; ``parameters()``, ``state_dict()`` and
    ``load_state_dict()`` then traverse the hierarchy, which is what the
    checkpointing, Horovod-style broadcast and PB2 exploit/explore steps
    rely on.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -------------------------------------------------------------- #
    # Attribute registration
    # -------------------------------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array saved with the state dict."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # -------------------------------------------------------------- #
    # Traversal
    # -------------------------------------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for this module and children."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix + child_name + ".")

    def parameters(self) -> list[Parameter]:
        """Flat list of all parameters."""
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(name, buffer)`` pairs for this module and children."""
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix + child_name + ".")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # -------------------------------------------------------------- #
    # Training / evaluation mode
    # -------------------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout / batch norm)."""
        for module in self.modules():
            object.__setattr__(module, "training", bool(mode))
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -------------------------------------------------------------- #
    # State (de)serialization
    # -------------------------------------------------------------- #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat mapping of parameter/buffer names to array copies."""
        state: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state["buffer:" + name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load arrays produced by :meth:`state_dict` into this module."""
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        missing, unexpected = [], []
        for name, value in state.items():
            if name.startswith("buffer:"):
                bname = name[len("buffer:"):]
                if bname in buffers:
                    buffers[bname][...] = value
                else:
                    unexpected.append(name)
            elif name in params:
                if params[name].shape != np.asarray(value).shape:
                    raise ValueError(
                        f"shape mismatch for parameter '{name}': "
                        f"{params[name].shape} vs {np.asarray(value).shape}"
                    )
                params[name].data[...] = value
            else:
                unexpected.append(name)
        for name in params:
            if name not in state:
                missing.append(name)
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")

    # -------------------------------------------------------------- #
    # Forward
    # -------------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """A container applying child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        """Append a module to the container."""
        name = f"layer{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def forward(self, x):
        for name in self._order:
            x = getattr(self, name)(x)
        return x
