"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    ``fan_in`` / ``fan_out`` are computed from the first two axes with any
    remaining axes treated as the receptive field, matching the PyTorch
    convention for convolution kernels.
    """
    rng = ensure_rng(rng)
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator | int | None = None, a: float = np.sqrt(5.0)) -> np.ndarray:
    """He/Kaiming uniform initialization (PyTorch's Linear/Conv default)."""
    rng = ensure_rng(rng)
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + a * a))
    bound = gain * np.sqrt(3.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def lecun_normal(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """LeCun normal initialization, appropriate for SELU networks."""
    rng = ensure_rng(rng)
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(1.0 / max(fan_in, 1)), size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_out = shape[0] * receptive
    fan_in = shape[1] * receptive
    return fan_in, fan_out
