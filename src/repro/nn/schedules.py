"""Learning-rate schedules.

PB2 itself acts as a learned schedule over hyper-parameters, but fixed
schedules are provided as baselines and for the ablation benchmarks.
"""

from __future__ import annotations

from repro.nn.optim import Optimizer


class LRSchedule:
    """Base class: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.compute_lr(self.epoch)
        return self.optimizer.lr

    def compute_lr(self, epoch: int) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Keep the learning rate fixed."""

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialDecayLR(LRSchedule):
    """Exponential decay ``lr = base * gamma**epoch``."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = float(gamma)

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma**epoch
