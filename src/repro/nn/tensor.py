"""Reverse-mode automatic differentiation over NumPy arrays.

The :class:`Tensor` class records a dynamic computation graph as
operations are applied and computes gradients with a single reverse
topological sweep, exactly the programming model the paper's PyTorch
implementation relies on.  Only the operations required by the FAST /
Fusion model family are implemented, but each is implemented with full
broadcasting support and is validated against finite differences in the
test suite.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

# Gradient recording is tracked per thread: the distributed scoring jobs run
# MPI ranks on a thread pool, each wrapping its inference in ``no_grad()``,
# and one rank's inference mode must not leak into another thread (or into
# the main thread's training loop).
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled (per thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape of a broadcast result) back to ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like value. Stored as ``float64`` by default for numerical
        robustness of gradient checks; ``float32`` may be requested.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100.0  # numpy defers to Tensor in mixed expressions

    def __init__(self, data, requires_grad: bool = False, dtype=np.float64, name: str = "") -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _promote(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: Sequence["Tensor"], backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data, dtype=data.dtype)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be specified for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        # Topological order of the graph reachable from self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        self._accumulate(grad)
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            if parent_grads is None:
                continue
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = np.asarray(pgrad, dtype=parent.data.dtype)
                parent._accumulate(pgrad)
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = self._promote(other)
        data = self.data + other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape), _unbroadcast(grad, other.shape))

        return self._make(data, (self, other), backward)

    def __radd__(self, other) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad):
            return (-grad,)

        return self._make(data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._promote(other)
        data = self.data - other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape), _unbroadcast(-grad, other.shape))

        return self._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._promote(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._promote(other)
        data = self.data * other.data

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return self._make(data, (self, other), backward)

    def __rmul__(self, other) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Tensor":
        other = self._promote(other)
        data = self.data / other.data

        def backward(grad):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data**2), other.shape),
            )

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._promote(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        data = self.data**exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1.0),)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Matrix operations and shape manipulation
    # ------------------------------------------------------------------ #
    def matmul(self, other) -> "Tensor":
        """Matrix product supporting 2-D and batched operands."""
        other = self._promote(other)
        data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1:
                a2 = a[None, :]
            else:
                a2 = a
            if b.ndim == 1:
                b2 = b[:, None]
            else:
                b2 = b
            grad2 = grad
            if a.ndim == 1 and b.ndim >= 2:
                grad2 = grad[..., None, :]
            if b.ndim == 1 and a.ndim >= 2:
                grad2 = grad[..., :, None]
            ga = grad2 @ np.swapaxes(b2, -1, -2)
            gb = np.swapaxes(a2, -1, -2) @ grad2
            if a.ndim == 1:
                ga = ga.reshape(-1, a.shape[0]).sum(axis=0) if ga.ndim > 1 else ga
            if b.ndim == 1:
                gb = gb.reshape(b.shape[0], -1).sum(axis=-1) if gb.ndim > 1 else gb
            return (_unbroadcast(np.asarray(ga), self.shape), _unbroadcast(np.asarray(gb), other.shape))

        return self._make(data, (self, other), backward)

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            return (grad.reshape(original),)

        return self._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return self._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.shape
        dtype = self.data.dtype

        def backward(grad):
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, index, grad)
            return (full,)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(grad):
            g = np.asarray(grad)
            if axis is None:
                return (np.broadcast_to(g, shape).astype(self.data.dtype),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(a % len(shape) for a in axes)
            if not keepdims:
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            return (np.broadcast_to(g, shape).astype(self.data.dtype),)

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        mask_source = self.data

        def backward(grad):
            g = np.asarray(grad)
            expanded = data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
                    expanded = np.expand_dims(expanded, a)
            mask = (mask_source == expanded).astype(self.data.dtype)
            # Distribute gradient equally among ties.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return (mask * g / counts,)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            return (grad * data,)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad):
            return (grad / self.data,)

        return self._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / np.maximum(data, 1e-300),)

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - data**2),)

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # numerically stable logistic: never exponentiates a large positive value
        clipped = np.clip(self.data, -60.0, 60.0)
        data = np.where(clipped >= 0, 1.0 / (1.0 + np.exp(-clipped)), np.exp(clipped) / (1.0 + np.exp(clipped)))

        def backward(grad):
            return (grad * data * (1.0 - data),)

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad):
            return (grad * (self.data > 0),)

        return self._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        slope = float(negative_slope)
        data = np.where(self.data > 0, self.data, slope * self.data)

        def backward(grad):
            return (grad * np.where(self.data > 0, 1.0, slope),)

        return self._make(data, (self,), backward)

    def selu(self) -> "Tensor":
        """Scaled exponential linear unit (Klambauer et al. 2017)."""
        alpha = 1.6732632423543772
        scale = 1.0507009873554805
        exp_term = alpha * (np.exp(np.minimum(self.data, 0.0)) - 1.0)
        data = scale * np.where(self.data > 0, self.data, exp_term)

        def backward(grad):
            deriv = scale * np.where(self.data > 0, 1.0, exp_term + alpha)
            return (grad * deriv,)

        return self._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)

        def backward(grad):
            inside = (self.data >= low) & (self.data <= high)
            return (grad * inside,)

        return self._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad):
            return (grad * np.sign(self.data),)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Structural ops
    # ------------------------------------------------------------------ #
    @staticmethod
    def cat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._promote(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]

        def backward(grad):
            splits = np.cumsum(sizes)[:-1]
            return tuple(np.split(grad, splits, axis=axis))

        out = tensors[0]._make(data, tuple(tensors), backward)
        return out

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._promote(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

        return tensors[0]._make(data, tuple(tensors), backward)

    def pad(self, pad_width: Sequence[tuple[int, int]]) -> "Tensor":
        pad_width = tuple((int(a), int(b)) for a, b in pad_width)
        data = np.pad(self.data, pad_width)
        slices = tuple(slice(a, dim + a) for (a, _b), dim in zip(pad_width, self.shape))

        def backward(grad):
            return (grad[slices],)

        return self._make(data, (self,), backward)
