"""Layers used by the 3D-CNN, SG-CNN and Fusion networks."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = ensure_rng(rng)
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(rng.uniform(-bound, bound, size=(out_features,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv3d(Module):
    """3-D convolution layer (stride 1, optional symmetric padding)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        padding: int = 0,
        bias: bool = True,
        rng=None,
    ) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.padding = int(padding)
        rng = ensure_rng(rng)
        shape = (out_channels, in_channels, kernel_size, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        if bias:
            fan_in = in_channels * kernel_size**3
            bound = 1.0 / np.sqrt(fan_in)
            self.bias = Parameter(rng.uniform(-bound, bound, size=(out_channels,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv3d(x, self.weight, self.bias, padding=self.padding)


class MaxPool3d(Module):
    """3-D max pooling."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool3d(x, self.kernel_size, self.stride)


class Flatten(Module):
    """Flatten all but the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x, start_axis=1)


class ReLU(Module):
    """Rectified linear unit layer."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    """Leaky ReLU layer."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class SELU(Module):
    """Scaled exponential linear unit layer."""

    def forward(self, x: Tensor) -> Tensor:
        return F.selu(x)


ACTIVATIONS = {"relu": ReLU, "lrelu": LeakyReLU, "leaky_relu": LeakyReLU, "selu": SELU}


def make_activation(name: str) -> Module:
    """Instantiate an activation layer by the names used in the paper's Table 1."""
    key = name.lower()
    if key not in ACTIVATIONS:
        raise ValueError(f"unknown activation '{name}'; options: {sorted(ACTIVATIONS)}")
    return ACTIVATIONS[key]()


class Dropout(Module):
    """Inverted dropout with a per-layer random stream."""

    def __init__(self, p: float, rng=None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = ensure_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class BatchNorm1d(Module):
    """Batch normalization over 2-D ``(N, F)`` inputs."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class BatchNorm3d(Module):
    """Batch normalization over 5-D ``(N, C, D, H, W)`` inputs."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class Residual(Module):
    """Residual wrapper ``y = x + f(x)`` used by the 3D-CNN residual options.

    If the wrapped block changes the feature dimension an optional linear
    projection aligns the skip connection, matching the "Residual Option
    1/2" toggles fed to the hyper-parameter optimization in Figure 1.
    """

    def __init__(self, block: Module, in_features: int | None = None, out_features: int | None = None, rng=None) -> None:
        super().__init__()
        self.block = block
        if in_features is not None and out_features is not None and in_features != out_features:
            self.projection = Linear(in_features, out_features, bias=False, rng=rng)
        else:
            self.projection = None

    def forward(self, x: Tensor) -> Tensor:
        skip = x if self.projection is None else self.projection(x)
        return skip + self.block(x)
