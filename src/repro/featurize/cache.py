"""Content-addressed cache of featurized complexes.

The cache mirrors the serving result cache's design
(:mod:`repro.serving.cache`): entries are keyed by a deterministic
content hash — here *pose + binding site + featurizer configuration*
(see :func:`feature_key`) — so a hit is always safe to serve and no
invalidation protocol beyond LRU capacity eviction is needed.  Unlike
the serving result cache the key does **not** include model weights:
features are model-independent, so a model swap that invalidates every
cached *score* still reuses every cached *feature*.

Entries are ``(voxel, graph)`` payloads.  They are treated as immutable:
consumers collate them into fresh batch arrays and never write into the
cached tensors.  An :class:`H5FeatureStore` adapter persists the cache
through :class:`repro.hpc.h5store.H5Store` containers so warm feature
caches can be shipped between campaign sessions like scoring outputs.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.chem.complexes import ProteinLigandComplex
from repro.chem.digest import molecule_digest, site_digest
from repro.hpc.h5store import H5Store

FeatureEntry = tuple[np.ndarray, dict]


def featurizer_config_digest(voxel_config, graph_config) -> str:
    """Deterministic hex digest of a (voxel config, graph config) pair.

    Any change to the grid geometry, channel set, Gaussian widths or
    graph thresholds changes the digest, so stale features can never be
    served after a configuration change.
    """
    hasher = hashlib.sha256()
    for config in (voxel_config, graph_config):
        hasher.update(type(config).__name__.encode())
        for name in sorted(vars(config)):
            hasher.update(f"|{name}={vars(config)[name]!r}".encode())
    return hasher.hexdigest()


def feature_key(complex_: ProteinLigandComplex, config_digest: str) -> str:
    """Content-addressed feature-cache key: pose + binding site + config."""
    hasher = hashlib.sha256()
    hasher.update(site_digest(complex_.site).encode())
    hasher.update(molecule_digest(complex_.ligand).encode())
    hasher.update(str(int(complex_.pose_id)).encode())
    hasher.update(config_digest.encode())
    return hasher.hexdigest()


def entry_nbytes(voxel: np.ndarray, graph: dict) -> int:
    """Payload size of one cache entry in bytes (voxel + all graph tensors)."""
    total = int(voxel.nbytes)

    def visit(value) -> None:
        nonlocal total
        if isinstance(value, np.ndarray):
            total += int(value.nbytes)
        elif isinstance(value, dict):
            for child in value.values():
                visit(child)

    visit(graph)
    return total


@dataclass
class FeatureCacheStats:
    """Counters of one :class:`FeatureCache` instance."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0
    bytes: int = 0
    max_bytes: int | None = None

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def ledger_closed(self) -> bool:
        """Every lookup is accounted for as exactly one hit or miss."""
        return self.lookups == self.hits + self.misses


class FeatureCache:
    """A thread-safe LRU cache of ``feature_key -> (voxel, graph)``.

    Bounded two ways: ``capacity`` caps the entry count, and
    ``max_bytes`` caps the total tensor payload — entries are full
    float64 voxel grids whose size grows cubically with ``grid_dim``
    (a paper-scale ``grid_dim=48`` full-channel voxel alone is ~16 MB),
    so an entry-count bound on its own does not bound memory.  Both
    bounds evict in LRU order; the most recent entry always stays, even
    when it alone exceeds ``max_bytes``.
    """

    def __init__(self, capacity: int = 1024, max_bytes: int | None = None) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive when set, got {max_bytes}")
        self.capacity = int(capacity)
        self.max_bytes = int(max_bytes) if max_bytes is not None else None
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, FeatureEntry] = OrderedDict()
        self._entry_bytes: dict[str, int] = {}
        self._bytes = 0
        self._lookups = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # pickling: featurizers (and the caches inside them) ship to worker
    # processes as part of a process-backend payload.  Only the cache
    # *configuration* travels — entries are per-process working state
    # (full voxel grids; shipping them would dwarf the payload) and the
    # hit/miss ledger describes the parent's traffic, not the child's.
    # Each worker process warms its own cache.
    def __getstate__(self) -> dict:
        return {"capacity": self.capacity, "max_bytes": self.max_bytes}

    def __setstate__(self, state: dict) -> None:
        self.__init__(capacity=state["capacity"], max_bytes=state["max_bytes"])

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> FeatureEntry | None:
        """Return the cached entry for ``key`` (refreshing recency) or None."""
        with self._lock:
            self._lookups += 1
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return None

    def put(self, key: str, voxel: np.ndarray, graph: dict) -> None:
        """Insert (or refresh) an entry, evicting LRU entries over either bound."""
        nbytes = entry_nbytes(voxel, graph)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._bytes -= self._entry_bytes[key]
            self._entries[key] = (voxel, graph)
            self._entry_bytes[key] = nbytes
            self._bytes += nbytes
            while len(self._entries) > self.capacity or (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                evicted_key, _ = self._entries.popitem(last=False)
                self._bytes -= self._entry_bytes.pop(evicted_key)
                self._evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._entry_bytes.clear()
            self._bytes = 0

    def stats(self) -> FeatureCacheStats:
        with self._lock:
            return FeatureCacheStats(
                lookups=self._lookups,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
                bytes=self._bytes,
                max_bytes=self.max_bytes,
            )

    def items(self) -> list[tuple[str, FeatureEntry]]:
        """LRU-to-MRU snapshot of the cache contents."""
        with self._lock:
            return list(self._entries.items())


class H5FeatureStore:
    """Persist a :class:`FeatureCache` through an :class:`H5Store`.

    One group per entry (keyed by the content hash), with the voxel
    tensor and the graph's arrays as datasets; a ``keys`` dataset
    records LRU-to-MRU order so a warmed cache replays recency too.
    float64 payloads round-trip bit-exactly through the ``.npz``-backed
    store, preserving the engine's golden-equivalence guarantee across
    sessions.
    """

    GROUP = "featurize/feature_cache"

    def __init__(self, store: H5Store | None = None) -> None:
        self.store = store if store is not None else H5Store()

    def save(self, cache: FeatureCache) -> H5Store:
        """Write the cache contents (LRU-to-MRU order) into the store.

        A full overwrite: entry groups persisted by a previous save whose
        keys have since been evicted are deleted first, so re-saving into
        the same store (the periodic persist-for-next-session flow) does
        not accumulate orphaned multi-MB payloads.
        """
        entries = cache.items()
        live = {key for key, _ in entries}
        for stale in [g for g in self.store.groups(f"{self.GROUP}/entries") if g not in live]:
            self.store.delete_group(f"{self.GROUP}/entries/{stale}")
        self.store.write(f"{self.GROUP}/keys", np.array([k for k, _ in entries], dtype="U"))
        self.store.write_attr(self.GROUP, "num_entries", len(entries))
        self.store.write_attr(self.GROUP, "capacity", cache.capacity)
        for key, (voxel, graph) in entries:
            prefix = f"{self.GROUP}/entries/{key}"
            self.store.write(f"{prefix}/voxel", voxel)
            self.store.write(f"{prefix}/node_features", graph["node_features"])
            self.store.write(f"{prefix}/adj_covalent", graph["adjacency"]["covalent"])
            self.store.write(f"{prefix}/adj_noncovalent", graph["adjacency"]["noncovalent"])
            self.store.write(f"{prefix}/ligand_mask", graph["ligand_mask"].astype(np.uint8))
            self.store.write_attr(prefix, "graph_id", str(graph.get("id", "")))
        return self.store

    def load(self, cache: FeatureCache) -> int:
        """Warm ``cache`` from the store; returns the number of entries loaded.

        Entries are replayed oldest-first so the store's MRU entries end
        up most recent in the warmed cache as well.
        """
        if f"{self.GROUP}/keys" not in self.store:
            return 0
        keys = self.store.read(f"{self.GROUP}/keys")
        loaded = 0
        for key in keys.tolist():
            prefix = f"{self.GROUP}/entries/{key}"
            if f"{prefix}/voxel" not in self.store:
                raise ValueError(f"corrupt feature store: missing payload for key '{key}'")
            graph = {
                "node_features": self.store.read(f"{prefix}/node_features"),
                "adjacency": {
                    "covalent": self.store.read(f"{prefix}/adj_covalent"),
                    "noncovalent": self.store.read(f"{prefix}/adj_noncovalent"),
                },
                "ligand_mask": self.store.read(f"{prefix}/ligand_mask").astype(bool),
                "id": str(self.store.attrs(prefix).get("graph_id", "")),
            }
            cache.put(str(key), self.store.read(f"{prefix}/voxel"), graph)
            loaded += 1
        return loaded
