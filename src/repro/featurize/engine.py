"""Batched, vectorized featurization engine with a content-addressed cache.

This module is the fast path between docking output and fusion scoring.
The scalar featurizers (:class:`repro.featurize.voxelize.Voxelizer`,
:class:`repro.featurize.graph.GraphBuilder`) splat and assemble one atom
at a time from Python; the engine computes the same tensors with whole-
array NumPy operations:

* :class:`VectorizedVoxelizer` gathers every atom's Gaussian density
  over a broadcast neighbourhood box of precomputed grid coordinates and
  scatter-adds all channels with ``np.bincount`` — **bit-identical** to
  the scalar voxelizer (same float64 operands, same per-cell accumulation
  order), which the golden-equivalence suite in
  ``tests/test_featurize_engine.py`` locks in with ``np.array_equal``.
* :class:`VectorizedGraphBuilder` builds node features, covalent and
  non-covalent adjacencies from flat atom arrays, with pocket-side
  extraction memoized per binding site.
* :class:`FeaturePipeline` fronts both behind the same interface as
  :class:`~repro.featurize.pipeline.ComplexFeaturizer`, adds a
  content-addressed :class:`~repro.featurize.cache.FeatureCache`
  (key = pose + binding site + featurizer config, mirroring the serving
  result-cache design), optional :class:`H5Store` persistence and a
  bounded parallel-worker prefetcher.

Why bit-identity is preserved by vectorization (the invariants the
golden tests enforce):

1. every elementwise float64 operation (subtract, square, exp, divide,
   multiply) produces the same bits regardless of array shape;
2. ``np.bincount`` accumulates weights in input order, so ordering the
   scatter entries by atom reproduces the scalar loop's per-cell
   addition sequence exactly;
3. contributions the scalar path adds as ``±0.0`` (beyond the Gaussian
   cutoff, zero channel weights) never change stored bits, so the
   engine may skip or include them freely;
4. neighbour capping breaks ties with a stable sort in both paths, so
   full-row and compacted-row selections agree even for equidistant
   neighbours.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.chem.complexes import ProteinLigandComplex
from repro.featurize.atom_features import (
    ELEMENT_CLASSES,
    AtomArrays,
    atom_arrays,
    feature_matrix_from_arrays,
    site_arrays,
)
from repro.featurize.cache import (
    FeatureCache,
    FeatureCacheStats,
    H5FeatureStore,
    feature_key,
    featurizer_config_digest,
)
from repro.featurize.graph import GraphConfig, _row_normalize
from repro.featurize.pipeline import FeaturizedComplex
from repro.featurize.voxelize import VoxelGridConfig, random_axis_rotation
from repro.telemetry import current as current_telemetry
from repro.utils.rng import ensure_rng


# --------------------------------------------------------------------------- #
# Voxelization
# --------------------------------------------------------------------------- #
class VectorizedVoxelizer:
    """Vectorized drop-in for :class:`repro.featurize.voxelize.Voxelizer`."""

    def __init__(self, config: VoxelGridConfig | None = None) -> None:
        self.config = config or VoxelGridConfig()
        dim = self.config.grid_dim
        if dim < 4:
            raise ValueError("grid_dim must be at least 4")
        half = self.config.extent / 2.0
        # identical to the scalar voxelizer's axis: voxel centres, grid at origin
        self._axis = (np.arange(dim) + 0.5) * self.config.resolution - half
        # channels are laid out ligand-first in both channel sets
        self._n_lig_channels = sum(
            1 for name in self.config.channels if name.startswith("lig_")
        )
        self._zero_channel = np.zeros((1, dim, dim, dim))

    # ------------------------------------------------------------------ #
    def voxelize(
        self,
        complex_: ProteinLigandComplex,
        rotation: np.ndarray | None = None,
        lig_arrays: AtomArrays | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Voxel tensor of shape ``(C, D, D, D)``; see the scalar Voxelizer.

        Ligand and pocket channels are disjoint, and the pocket is rigid
        and shared by every pose docked into a site, so for unrotated
        grids the pocket channels are splatted once per (site, config)
        and reused; only the ligand atoms are splatted per pose.  The
        scalar reference accumulates ligand and pocket atoms into
        different channels, so the split is bit-exact.  ``lig_arrays``
        lets callers that also build the graph share one ligand-array
        extraction; ``out`` (shape ``(C, D, D, D)``) receives the grid
        with no extra copy, which is how :meth:`voxelize_many` fills
        batch tensors directly.
        """
        lig = lig_arrays if lig_arrays is not None else atom_arrays(complex_.ligand.atoms)
        poc, _ = site_arrays(complex_.site)
        site = complex_.site
        if rotation is None:
            positions = lig.coords - site.center
            members = _channel_members(self.config, lig, np.ones(lig.num_atoms, dtype=bool))
            sums = self._channel_sums(positions, lig.vdw_radius, members)
            return self._assemble(
                sums[: self._n_lig_channels], self._pocket_block(site, poc), out=out
            )
        # rotated grids (training augmentation) rotate the pocket too, so
        # the cached pocket channels do not apply
        positions = np.concatenate([lig.coords, poc.coords], axis=0) - site.center
        if len(positions):
            # applied per atom with the exact matmul the scalar path uses,
            # so rotated coordinates carry identical bits
            positions = np.array([rotation @ p for p in positions])
        is_ligand = np.zeros(lig.num_atoms + poc.num_atoms, dtype=bool)
        is_ligand[: lig.num_atoms] = True
        merged = _concat_arrays(lig, poc)
        members = _channel_members(self.config, merged, is_ligand)
        return self._assemble(
            self._channel_sums(positions, merged.vdw_radius, members), out=out
        )

    def voxelize_many(
        self,
        complexes: Sequence[ProteinLigandComplex],
        rotations: Sequence[np.ndarray | None] | None = None,
    ) -> np.ndarray:
        """Stacked voxel tensors ``(N, C, D, D, D)`` for a pose batch."""
        if rotations is None:
            rotations = [None] * len(complexes)
        if len(rotations) != len(complexes):
            raise ValueError("rotations must match complexes in length")
        cfg = self.config
        dim = cfg.grid_dim
        out = np.empty((len(complexes), cfg.num_channels, dim, dim, dim))
        for index, (complex_, rotation) in enumerate(zip(complexes, rotations)):
            # each grid is assembled straight into its batch slot — no
            # intermediate per-complex tensor plus stack copy
            self.voxelize(complex_, rotation=rotation, out=out[index])
        return out

    # ------------------------------------------------------------------ #
    def _pocket_block(self, site, poc: AtomArrays) -> np.ndarray:
        """Pocket-channel block ``(C_poc, D, D, D)``, memoized per (site, config).

        Read-only by convention; :meth:`_assemble` copies it into every
        output grid.  Memoized on the site instance (sites are rigid,
        like :func:`repro.chem.digest.site_digest`).
        """
        cfg = self.config
        cache_key = tuple(sorted(vars(cfg).items()))
        cache = getattr(site, "_voxel_pocket_blocks", None)
        if cache is None:
            cache = {}
            site._voxel_pocket_blocks = cache
        block = cache.get(cache_key)
        if block is None:
            positions = poc.coords - site.center
            members = _channel_members(cfg, poc, np.zeros(poc.num_atoms, dtype=bool))
            sums = self._channel_sums(positions, poc.vdw_radius, members)
            block = self._assemble(sums[self._n_lig_channels :])
            cache[cache_key] = block
        return block

    def _assemble(
        self,
        sums: list[np.ndarray | None],
        pocket_block: np.ndarray | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Stack per-channel flat sums (and an optional pocket block) into a grid.

        With ``out`` the channels are concatenated directly into the
        caller's buffer (e.g. one slot of a batch tensor).
        """
        dim = self.config.grid_dim
        flat = dim**3
        blocks = [
            self._zero_channel if s is None else s[:flat].reshape(1, dim, dim, dim)
            for s in sums
        ]
        if pocket_block is not None:
            blocks.append(pocket_block)
        if out is not None:
            return np.concatenate(blocks, axis=0, out=out)
        return np.concatenate(blocks, axis=0)

    def _channel_sums(
        self,
        positions: np.ndarray,
        vdw_radius: np.ndarray,
        members: list[tuple[np.ndarray, np.ndarray]],
    ) -> list[np.ndarray | None]:
        """Per-channel flattened density sums (``None`` for empty channels).

        Every atom's Gaussian density is evaluated over a broadcast
        neighbourhood box and scatter-added per channel with one ordered
        ``np.bincount``, which reproduces the scalar loop's per-cell
        accumulation (from a zero grid, in atom order) bit-for-bit.
        Returned arrays have length ``dim**3 + 1``: the final element is
        an overflow bucket for out-of-box entries that callers slice off.
        """
        cfg = self.config
        dim = cfg.grid_dim
        n = positions.shape[0]
        sums: list[np.ndarray | None] = [None] * len(members)
        if n == 0:
            return sums

        # per-atom Gaussian geometry (same float64 expressions as the scalar path)
        sigma = np.maximum(cfg.sigma_scale * vdw_radius, 1e-3)
        cutoff = cfg.cutoff_sigmas * sigma
        denom = 2.0 * sigma**2
        cutoff2 = cutoff**2

        # neighbourhood boxes: voxel index ranges possibly within the cutoff
        lo = np.searchsorted(self._axis, positions - cutoff[:, None])  # (n, 3)
        hi = np.searchsorted(self._axis, positions + cutoff[:, None])  # (n, 3)
        inside = (lo < dim).all(axis=1) & (hi > 0).all(axis=1)
        if not inside.any():
            return sums
        width = int((hi - lo)[inside].max())
        if width <= 0:
            return sums

        offsets = np.arange(width)
        idx = lo[:, None, :] + offsets[None, :, None]  # (n, K, 3)
        valid = (idx < hi[:, None, :]) & inside[:, None, None]
        idx = np.minimum(idx, dim - 1)  # clamp for safe gathers; masked below
        delta = self._axis[idx] - positions[:, None, :]  # (n, K, 3)

        dx, dy, dz = delta[..., 0], delta[..., 1], delta[..., 2]
        dist2 = dx[:, :, None, None] ** 2 + dy[:, None, :, None] ** 2 + dz[:, None, None, :] ** 2
        density = np.exp(-dist2 / denom[:, None, None, None])
        density[dist2 > cutoff2[:, None, None, None]] = 0.0

        box_ok = (
            valid[..., 0][:, :, None, None]
            & valid[..., 1][:, None, :, None]
            & valid[..., 2][:, None, None, :]
        )
        cells = (idx[..., 0][:, :, None, None] * dim + idx[..., 1][:, None, :, None]) * dim + idx[
            ..., 2
        ][:, None, None, :]
        trash = dim**3  # out-of-box entries land in a discarded overflow bucket
        cells = np.where(box_ok, cells, trash)

        for channel, (atom_idx, weights) in enumerate(members):
            if atom_idx.size == 0:
                continue
            values = density[atom_idx] * weights[:, None, None, None]
            sums[channel] = np.bincount(
                cells[atom_idx].ravel(), weights=values.ravel(), minlength=trash + 1
            )
        return sums

    # ------------------------------------------------------------------ #
    def total_density(self, grid: np.ndarray) -> float:
        """Sum of all channels (parity with the scalar voxelizer)."""
        return float(grid.sum())


def _concat_arrays(lig: AtomArrays, poc: AtomArrays) -> AtomArrays:
    """Concatenate ligand and pocket atom arrays (ligand first, like the scalar loop)."""
    return AtomArrays(
        coords=np.concatenate([lig.coords, poc.coords], axis=0),
        elem_idx=np.concatenate([lig.elem_idx, poc.elem_idx]),
        is_halogen=np.concatenate([lig.is_halogen, poc.is_halogen]),
        hydrophobic=np.concatenate([lig.hydrophobic, poc.hydrophobic]),
        hbond_donor=np.concatenate([lig.hbond_donor, poc.hbond_donor]),
        hbond_acceptor=np.concatenate([lig.hbond_acceptor, poc.hbond_acceptor]),
        aromatic=np.concatenate([lig.aromatic, poc.aromatic]),
        partial_charge=np.concatenate([lig.partial_charge, poc.partial_charge]),
        formal_charge=np.concatenate([lig.formal_charge, poc.formal_charge]),
        vdw_radius=np.concatenate([lig.vdw_radius, poc.vdw_radius]),
    )


def _channel_members(
    config: VoxelGridConfig, arrays: AtomArrays, is_ligand: np.ndarray
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-channel ``(atom indices, weights)`` in the channel order of ``config``.

    Atom indices stay in ascending order inside every channel, which is
    what keeps the scatter's per-cell accumulation order identical to the
    scalar atom loop.  Zero-weight charge contributions are dropped: the
    scalar path adds them as ``±0.0``, which never changes stored bits.
    """
    e = arrays.elem_idx
    lig = is_ligand
    poc = ~is_ligand
    idx_c = ELEMENT_CLASSES.index("C")
    idx_n = ELEMENT_CLASSES.index("N")
    idx_o = ELEMENT_CLASSES.index("O")
    idx_s = ELEMENT_CLASSES.index("S")

    masks: dict[str, tuple[np.ndarray, np.ndarray | None]] = {}
    if config.channel_set == "reduced":
        polar = (e == idx_n) | (e == idx_o)
        masks["lig_carbon"] = (lig & (e == idx_c), None)
        masks["lig_polar"] = (lig & polar, None)
        masks["lig_other"] = (lig & ~((e == idx_c) | polar), None)
        masks["lig_occupancy"] = (lig, None)
        masks["poc_hydrophobic"] = (poc & (arrays.hydrophobic != 0.0), None)
        masks["poc_donor"] = (poc & (arrays.hbond_donor != 0.0), None)
        masks["poc_acceptor"] = (poc & (arrays.hbond_acceptor != 0.0), None)
        masks["poc_occupancy"] = (poc, None)
    elif config.channel_set == "full":
        for prefix, side in (("lig", lig), ("poc", poc)):
            for symbol, elem in (("C", idx_c), ("N", idx_n), ("O", idx_o), ("S", idx_s)):
                masks[f"{prefix}_{symbol}"] = (side & (e == elem), None)
            masks[f"{prefix}_halogen"] = (side & arrays.is_halogen, None)
            masks[f"{prefix}_hydrophobic"] = (side & (arrays.hydrophobic != 0.0), None)
            masks[f"{prefix}_donor"] = (side & (arrays.hbond_donor != 0.0), None)
            masks[f"{prefix}_acceptor"] = (side & (arrays.hbond_acceptor != 0.0), None)
            masks[f"{prefix}_charge"] = (side & (arrays.partial_charge != 0.0), arrays.partial_charge)
    else:
        raise ValueError(f"unknown channel_set '{config.channel_set}'")

    members: list[tuple[np.ndarray, np.ndarray]] = []
    for name in config.channels:
        mask, weight_source = masks[name]
        atom_idx = np.nonzero(mask)[0]
        if weight_source is None:
            weights = np.ones(atom_idx.size)
        else:
            weights = weight_source[atom_idx]
        members.append((atom_idx, weights))
    return members


# --------------------------------------------------------------------------- #
# Graph construction
# --------------------------------------------------------------------------- #
class VectorizedGraphBuilder:
    """Vectorized drop-in for :class:`repro.featurize.graph.GraphBuilder`."""

    def __init__(self, config: GraphConfig | None = None) -> None:
        self.config = config or GraphConfig()

    def build(
        self, complex_: ProteinLigandComplex, lig_arrays: AtomArrays | None = None
    ) -> dict:
        """Graph dictionary identical to the scalar ``GraphBuilder.build``."""
        cfg = self.config
        ligand = complex_.ligand
        lig = lig_arrays if lig_arrays is not None else atom_arrays(ligand.atoms)
        poc, poc_features = site_arrays(complex_.site)
        lig_coords = lig.coords
        pocket_coords = poc.coords

        if lig_coords.size == 0:
            raise ValueError("cannot build a graph for an empty ligand")

        # pocket atoms within the interaction shell of any ligand atom
        if pocket_coords.size:
            dists = np.linalg.norm(pocket_coords[:, None, :] - lig_coords[None, :, :], axis=-1)
            keep = np.where(dists.min(axis=1) <= cfg.pocket_shell)[0]
        else:
            keep = np.array([], dtype=int)

        coords = np.vstack([lig_coords, pocket_coords[keep]]) if len(keep) else lig_coords
        n = coords.shape[0]
        node_features = np.concatenate(
            [feature_matrix_from_arrays(lig, is_ligand=True), poc_features[keep]], axis=0
        )
        is_ligand = np.zeros(n, dtype=bool)
        is_ligand[: lig.num_atoms] = True

        all_dist = np.linalg.norm(coords[:, None, :] - coords[None, :, :], axis=-1)
        kernel = np.exp(-all_dist / cfg.distance_kernel_width)

        covalent = np.zeros((n, n))
        bonds = ligand.bonds
        if bonds:
            bond_i = np.fromiter((b.i for b in bonds), dtype=np.intp, count=len(bonds))
            bond_j = np.fromiter((b.j for b in bonds), dtype=np.intp, count=len(bonds))
            order = np.fromiter((b.order for b in bonds), dtype=np.float64, count=len(bonds))
            long_bond = max(cfg.covalent_threshold, 2.0)
            ok = all_dist[bond_i, bond_j] <= long_bond
            weight = kernel[bond_i, bond_j] * order
            covalent[bond_i[ok], bond_j[ok]] = weight[ok]
            covalent[bond_j[ok], bond_i[ok]] = weight[ok]
        covalent = _cap_neighbours_vectorized(covalent, cfg.covalent_k)

        noncovalent = np.where(all_dist <= cfg.noncovalent_threshold, kernel, 0.0)
        np.fill_diagonal(noncovalent, 0.0)
        noncovalent[covalent > 0] = 0.0
        noncovalent = _cap_neighbours_vectorized(noncovalent, cfg.noncovalent_k)

        return {
            "node_features": node_features,
            "adjacency": {
                "covalent": _row_normalize(covalent),
                "noncovalent": _row_normalize(noncovalent),
            },
            "ligand_mask": is_ligand,
            "id": complex_.complex_id or ligand.name,
        }

    def build_many(self, complexes: Sequence[ProteinLigandComplex]) -> list[dict]:
        """Graphs for a pose batch (pocket-side work is shared per site)."""
        return [self.build(c) for c in complexes]


def _cap_neighbours_vectorized(adjacency: np.ndarray, k: int) -> np.ndarray:
    """All-rows-at-once equivalent of ``graph._cap_neighbours``.

    A stable full-row argsort selects, per row, the ``min(k, nnz)``
    largest non-zero entries with ties resolved towards higher column
    indices — exactly the entries the scalar reference selects from its
    compacted rows (stability makes the two tie-break orders agree).
    """
    n = adjacency.shape[0]
    if n == 0 or k >= n:
        return adjacency
    order = np.argsort(adjacency, axis=1, kind="stable")
    ranks = np.argsort(order, axis=1, kind="stable")  # rank of each column in its row
    nonzero = adjacency != 0
    keep_counts = np.minimum(nonzero.sum(axis=1), k)
    keep = nonzero & (ranks >= n - keep_counts[:, None])
    capped = np.where(keep, adjacency, 0.0)
    # symmetrize: keep an edge if either endpoint selected it
    return np.maximum(capped, capped.T)


# --------------------------------------------------------------------------- #
# Pipeline facade
# --------------------------------------------------------------------------- #
class FeaturePipeline:
    """Vectorized featurization behind the ``ComplexFeaturizer`` interface.

    Drop-in for :class:`~repro.featurize.pipeline.ComplexFeaturizer`
    everywhere a featurizer is consumed (scoring jobs, the serving
    service, the campaign runtime): it exposes the same ``featurize`` /
    ``featurize_many`` signatures and the same ``voxelizer.config`` /
    ``graph_builder.config`` / ``augment`` / ``rotation_probability``
    attributes the runtime's checkpoint keys digest.

    On top of the scalar behaviour (bit-identical outputs, including the
    seeded rotation-augmentation stream) it adds:

    * a content-addressed :class:`FeatureCache` — key = pose + binding
      site + featurizer config — serving repeat featurizations without
      recomputation.  Lookups are bypassed whenever a random rotation is
      drawn (``augment`` and ``training``), because augmented tensors
      are sample-unique by design;
    * optional persistence of the warm cache through
      :class:`H5FeatureStore`;
    * :meth:`prefetch`, a bounded parallel-worker warmer that featurizes
      upcoming poses into the cache ahead of consumption.

    Cached tensors are shared between hits and must be treated as
    read-only; batch collation always copies them into fresh arrays.
    """

    def __init__(
        self,
        voxel_config: VoxelGridConfig | None = None,
        graph_config: GraphConfig | None = None,
        augment: bool = False,
        rotation_probability: float = 0.1,
        seed: int | None = 0,
        cache: FeatureCache | None = None,
        cache_capacity: int = 1024,
        cache_max_bytes: int | None = 1 << 30,
        cache_enabled: bool = True,
    ) -> None:
        self.voxelizer = VectorizedVoxelizer(voxel_config)
        self.graph_builder = VectorizedGraphBuilder(graph_config)
        self.augment = bool(augment)
        self.rotation_probability = float(rotation_probability)
        self._rng = ensure_rng(seed)
        if cache is not None:
            self.cache: FeatureCache | None = cache
        elif cache_enabled:
            # the default byte budget (1 GiB) is what actually bounds memory
            # at paper-scale grids, where one entry is tens of megabytes
            self.cache = FeatureCache(cache_capacity, max_bytes=cache_max_bytes)
        else:
            self.cache = None
        self._config_digest = featurizer_config_digest(
            self.voxelizer.config, self.graph_builder.config
        )

    @classmethod
    def from_featurizer(cls, featurizer, seed: int | None = 0, **kwargs) -> "FeaturePipeline":
        """Build a pipeline sharing a scalar featurizer's configuration."""
        return cls(
            voxel_config=featurizer.voxelizer.config,
            graph_config=featurizer.graph_builder.config,
            augment=featurizer.augment,
            rotation_probability=featurizer.rotation_probability,
            seed=seed,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    def key_for(self, complex_: ProteinLigandComplex) -> str:
        """Content-addressed feature-cache key of one complex."""
        return feature_key(complex_, self._config_digest)

    @property
    def config_digest(self) -> str:
        """Digest of the (voxel, graph) configuration pair."""
        return self._config_digest

    # ------------------------------------------------------------------ #
    def featurize(
        self,
        complex_: ProteinLigandComplex,
        target: float = float("nan"),
        training: bool = False,
    ) -> FeaturizedComplex:
        """Featurize one complex (bit-identical to ``ComplexFeaturizer``)."""
        rotation = None
        if self.augment and training:
            rotation = random_axis_rotation(self._rng, self.rotation_probability)
        voxel, graph = self._compute(complex_, rotation)
        return self._wrap(complex_, voxel, graph, target)

    def featurize_many(
        self,
        complexes: Sequence[ProteinLigandComplex],
        targets: Sequence[float] | None = None,
        training: bool = False,
    ) -> list[FeaturizedComplex]:
        """Featurize a pose batch (targets default to ``nan``)."""
        if targets is None:
            targets = [float("nan")] * len(complexes)
        if len(targets) != len(complexes):
            raise ValueError("targets must match complexes in length")
        with current_telemetry().span("featurize-many") as span:
            span.set("batch", len(complexes))
            if self.augment and training:
                # one rotation draw per complex, in order — the same RNG
                # consumption sequence as the scalar featurize_many loop
                rotations = [
                    random_axis_rotation(self._rng, self.rotation_probability) for _ in complexes
                ]
                return [
                    self._wrap(c, *self._compute_fresh(c, r), t)
                    for c, r, t in zip(complexes, rotations, targets)
                ]
            return [
                self._wrap(c, *self._compute(c, None), t) for c, t in zip(complexes, targets)
            ]

    # ------------------------------------------------------------------ #
    def prefetch(
        self,
        complexes: Sequence[ProteinLigandComplex],
        max_workers: int = 2,
        max_pending: int | None = None,
    ) -> int:
        """Warm the cache for upcoming poses with a bounded worker pool.

        At most ``max_workers`` features are computed concurrently and at
        most ``max_pending`` (default ``2 * max_workers``) submissions
        are in flight, so prefetching a large campaign slice cannot
        balloon memory.  Poses are deduplicated by content key before
        submission, so repeats in ``complexes`` are computed once.
        Returns the number of freshly computed entries; poses already
        cached cost one lookup.  Inference features only — the
        stochastic augmentation path is never prefetched.  (Featurizing
        the same pose concurrently from another thread is harmless: the
        last identical payload wins.)
        """
        if self.cache is None:
            raise RuntimeError("prefetch requires the feature cache to be enabled")
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        budget = threading.Semaphore(max_pending if max_pending is not None else 2 * max_workers)
        computed = 0
        lock = threading.Lock()

        unique: list[tuple[str, ProteinLigandComplex]] = []
        seen: set[str] = set()
        for complex_ in complexes:
            key = self.key_for(complex_)
            if key not in seen:
                seen.add(key)
                unique.append((key, complex_))

        def warm_one(key: str, complex_: ProteinLigandComplex) -> None:
            nonlocal computed
            try:
                if self.cache.get(key) is not None:
                    return
                voxel, graph = self._compute_fresh(complex_, None)
                self.cache.put(key, voxel, graph)
                with lock:
                    computed += 1
            finally:
                budget.release()

        with ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="feat-prefetch") as pool:
            futures = []
            for key, complex_ in unique:
                budget.acquire()
                futures.append(pool.submit(warm_one, key, complex_))
            for future in futures:
                future.result()
        return computed

    # ------------------------------------------------------------------ #
    def stats(self) -> FeatureCacheStats | None:
        """Feature-cache counters (``None`` when the cache is disabled)."""
        return self.cache.stats() if self.cache is not None else None

    def save_cache(self, adapter: H5FeatureStore | None = None) -> H5FeatureStore:
        """Persist the warm feature cache for the next session."""
        if self.cache is None:
            raise RuntimeError("no feature cache to save")
        adapter = adapter or H5FeatureStore()
        adapter.save(self.cache)
        return adapter

    def load_cache(self, adapter: H5FeatureStore) -> int:
        """Warm the feature cache from a persisted store."""
        if self.cache is None:
            raise RuntimeError("no feature cache to load into")
        return adapter.load(self.cache)

    # ------------------------------------------------------------------ #
    def _compute(
        self, complex_: ProteinLigandComplex, rotation: np.ndarray | None
    ) -> tuple[np.ndarray, dict]:
        if rotation is not None or self.cache is None:
            return self._compute_fresh(complex_, rotation)
        key = self.key_for(complex_)
        entry = self.cache.get(key)
        if entry is None:
            voxel, graph = self._compute_fresh(complex_, None)
            self.cache.put(key, voxel, graph)
            return voxel, graph
        return entry

    def _compute_fresh(
        self, complex_: ProteinLigandComplex, rotation: np.ndarray | None
    ) -> tuple[np.ndarray, dict]:
        # one ligand-array extraction shared by both featurizers
        lig = atom_arrays(complex_.ligand.atoms)
        voxel = self.voxelizer.voxelize(complex_, rotation=rotation, lig_arrays=lig)
        graph = self.graph_builder.build(complex_, lig_arrays=lig)
        return voxel, graph

    def _wrap(
        self, complex_: ProteinLigandComplex, voxel: np.ndarray, graph: dict, target: float
    ) -> FeaturizedComplex:
        # cache entries are keyed on content, not on the identifier the
        # caller attached to the pose: re-stamp the graph id per request
        graph = dict(graph)
        graph["id"] = complex_.complex_id or complex_.ligand.name
        return FeaturizedComplex(
            voxel=voxel,
            graph=graph,
            target=float(target),
            complex_id=complex_.complex_id,
            pose_id=complex_.pose_id,
            metadata=dict(complex_.metadata),
        )
