"""Voxelization of protein-ligand complexes for the 3D-CNN head.

Atoms are splatted onto a cubic grid centred on the binding site using
Gaussian densities with width tied to the van der Waals radius.  Channels
separate ligand and pocket atoms and, within each, encode element class
and pharmacophore properties.  The voxelizer also implements the random
rotational augmentation described in §3.3.1 of the paper (each of X, Y,
Z rotated with 10 % probability during training).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.complexes import ProteinLigandComplex
from repro.utils.rng import ensure_rng

#: Channel layouts. Each entry maps a channel name to a predicate over
#: (atom, is_ligand).
_REDUCED_LIGAND_CHANNELS = ("lig_carbon", "lig_polar", "lig_other", "lig_occupancy")
_REDUCED_POCKET_CHANNELS = ("poc_hydrophobic", "poc_donor", "poc_acceptor", "poc_occupancy")

_FULL_LIGAND_CHANNELS = (
    "lig_C", "lig_N", "lig_O", "lig_S", "lig_halogen",
    "lig_hydrophobic", "lig_donor", "lig_acceptor", "lig_charge",
)
_FULL_POCKET_CHANNELS = (
    "poc_C", "poc_N", "poc_O", "poc_S", "poc_halogen",
    "poc_hydrophobic", "poc_donor", "poc_acceptor", "poc_charge",
)


@dataclass(frozen=True)
class VoxelGridConfig:
    """Configuration of the voxel grid.

    Attributes
    ----------
    grid_dim:
        Number of voxels along each axis (the paper-scale FAST model uses
        48; the default here is 16 so NumPy training is tractable).
    resolution:
        Voxel edge length in Angstroms.
    channel_set:
        ``"reduced"`` (8 channels) or ``"full"`` (18 channels, close to the
        19-feature representation in FAST).
    sigma_scale:
        Gaussian width as a fraction of the atom van der Waals radius.
    cutoff_sigmas:
        Truncation radius of each atom's density in units of sigma.
    """

    grid_dim: int = 16
    resolution: float = 1.25
    channel_set: str = "reduced"
    sigma_scale: float = 0.6
    cutoff_sigmas: float = 2.5

    @property
    def channels(self) -> tuple[str, ...]:
        if self.channel_set == "reduced":
            return _REDUCED_LIGAND_CHANNELS + _REDUCED_POCKET_CHANNELS
        if self.channel_set == "full":
            return _FULL_LIGAND_CHANNELS + _FULL_POCKET_CHANNELS
        raise ValueError(f"unknown channel_set '{self.channel_set}'")

    @property
    def num_channels(self) -> int:
        return len(self.channels)

    @property
    def extent(self) -> float:
        """Physical edge length of the grid in Angstroms."""
        return self.grid_dim * self.resolution


def random_axis_rotation(rng: np.random.Generator, probability: float = 0.1) -> np.ndarray:
    """Random rotation used for training-time augmentation.

    Each of the X, Y and Z axes is rotated by an independent uniform angle
    with probability ``probability`` (10 % in the paper); the returned 3x3
    matrix composes the selected rotations.
    """
    matrix = np.eye(3)
    for axis in range(3):
        if rng.random() >= probability:
            continue
        angle = rng.uniform(0.0, 2.0 * np.pi)
        c, s = np.cos(angle), np.sin(angle)
        rotation = np.eye(3)
        other = [i for i in range(3) if i != axis]
        rotation[other[0], other[0]] = c
        rotation[other[0], other[1]] = -s
        rotation[other[1], other[0]] = s
        rotation[other[1], other[1]] = c
        matrix = rotation @ matrix
    return matrix


class Voxelizer:
    """Convert a :class:`ProteinLigandComplex` into a voxel grid tensor."""

    def __init__(self, config: VoxelGridConfig | None = None) -> None:
        self.config = config or VoxelGridConfig()
        dim = self.config.grid_dim
        if dim < 4:
            raise ValueError("grid_dim must be at least 4")
        # voxel centre coordinates along one axis, grid centred at origin
        half = self.config.extent / 2.0
        self._axis = (np.arange(dim) + 0.5) * self.config.resolution - half

    # ------------------------------------------------------------------ #
    def voxelize(
        self,
        complex_: ProteinLigandComplex,
        rotation: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return the voxel tensor of shape ``(C, D, D, D)``.

        Parameters
        ----------
        complex_:
            The complex to voxelize; coordinates are interpreted in the
            binding-site frame, with the grid centred at the site centre.
        rotation:
            Optional 3x3 rotation applied to all coordinates about the
            grid centre (training-time augmentation).
        """
        cfg = self.config
        grid = np.zeros((cfg.num_channels, cfg.grid_dim, cfg.grid_dim, cfg.grid_dim))
        center = complex_.site.center
        for atoms, is_ligand in ((complex_.ligand.atoms, True), (complex_.site.atoms, False)):
            for atom in atoms:
                position = atom.position - center
                if rotation is not None:
                    position = rotation @ position
                self._splat(grid, atom, position, is_ligand)
        return grid

    # ------------------------------------------------------------------ #
    def _channel_indices(self, atom, is_ligand: bool) -> list[tuple[int, float]]:
        """Channels (index, weight) an atom contributes to."""
        cfg = self.config
        channels = cfg.channels
        out: list[tuple[int, float]] = []

        def add(name: str, weight: float = 1.0) -> None:
            out.append((channels.index(name), weight))

        if cfg.channel_set == "reduced":
            if is_ligand:
                if atom.element == "C":
                    add("lig_carbon")
                elif atom.element in ("N", "O"):
                    add("lig_polar")
                else:
                    add("lig_other")
                add("lig_occupancy")
            else:
                if atom.hydrophobic:
                    add("poc_hydrophobic")
                if atom.hbond_donor:
                    add("poc_donor")
                if atom.hbond_acceptor:
                    add("poc_acceptor")
                add("poc_occupancy")
        else:
            prefix = "lig" if is_ligand else "poc"
            if atom.element in ("C", "N", "O", "S"):
                add(f"{prefix}_{atom.element}")
            elif atom.is_halogen:
                add(f"{prefix}_halogen")
            if atom.hydrophobic:
                add(f"{prefix}_hydrophobic")
            if atom.hbond_donor:
                add(f"{prefix}_donor")
            if atom.hbond_acceptor:
                add(f"{prefix}_acceptor")
            add(f"{prefix}_charge", float(atom.partial_charge))
        return out

    def _splat(self, grid: np.ndarray, atom, position: np.ndarray, is_ligand: bool) -> None:
        cfg = self.config
        sigma = max(cfg.sigma_scale * atom.vdw_radius, 1e-3)
        cutoff = cfg.cutoff_sigmas * sigma
        # indices of voxels possibly within the cutoff along each axis
        los, his, axes = [], [], []
        for axis_coord in position:
            lo = np.searchsorted(self._axis, axis_coord - cutoff)
            hi = np.searchsorted(self._axis, axis_coord + cutoff)
            if lo >= len(self._axis) or hi <= 0:
                return  # atom entirely outside the grid
            los.append(lo)
            his.append(hi)
            axes.append(self._axis[lo:hi])
        dx = axes[0][:, None, None] - position[0]
        dy = axes[1][None, :, None] - position[1]
        dz = axes[2][None, None, :] - position[2]
        dist2 = dx**2 + dy**2 + dz**2
        density = np.exp(-dist2 / (2.0 * sigma**2))
        density[dist2 > cutoff**2] = 0.0
        for channel, weight in self._channel_indices(atom, is_ligand):
            grid[channel, los[0]:his[0], los[1]:his[1], los[2]:his[2]] += weight * density

    # ------------------------------------------------------------------ #
    def total_density(self, grid: np.ndarray) -> float:
        """Sum of the occupancy channels (used by conservation tests)."""
        return float(grid.sum())
