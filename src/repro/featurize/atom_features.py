"""Per-atom feature vectors shared by the voxel and graph featurizers.

Two representations live here:

* :func:`atom_feature_vector` / :func:`atom_feature_matrix` — the scalar
  reference path, one Python call per atom;
* :class:`AtomArrays` / :func:`feature_matrix_from_arrays` — the
  vectorized path used by :mod:`repro.featurize.engine`.  Atom objects
  are read once into flat NumPy arrays and every downstream quantity
  (one-hot encodings, channel memberships, Gaussian widths) is computed
  by array operations.  The two paths produce bit-identical matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.chem.atom import Atom

#: Element classes used for one-hot encoding.
ELEMENT_CLASSES: tuple[str, ...] = ("C", "N", "O", "S", "P", "halogen", "other")

#: Dimensionality of :func:`atom_feature_vector`.
ATOM_FEATURE_DIM = len(ELEMENT_CLASSES) + 7


def element_class(atom: Atom) -> int:
    """Index of the atom's element class in :data:`ELEMENT_CLASSES`."""
    if atom.element in ELEMENT_CLASSES:
        return ELEMENT_CLASSES.index(atom.element)
    if atom.is_halogen:
        return ELEMENT_CLASSES.index("halogen")
    return ELEMENT_CLASSES.index("other")


def atom_feature_vector(atom: Atom, is_ligand: bool) -> np.ndarray:
    """Feature vector for one atom.

    Layout (length :data:`ATOM_FEATURE_DIM`):

    ==========================  =========
    element one-hot             7
    hydrophobic flag            1
    H-bond donor flag           1
    H-bond acceptor flag        1
    aromatic flag               1
    partial charge              1
    formal charge               1
    ligand flag (vs pocket)     1
    ==========================  =========
    """
    vec = np.zeros(ATOM_FEATURE_DIM)
    vec[element_class(atom)] = 1.0
    offset = len(ELEMENT_CLASSES)
    vec[offset + 0] = float(atom.hydrophobic)
    vec[offset + 1] = float(atom.hbond_donor)
    vec[offset + 2] = float(atom.hbond_acceptor)
    vec[offset + 3] = float(atom.aromatic)
    vec[offset + 4] = float(atom.partial_charge)
    vec[offset + 5] = float(atom.formal_charge)
    vec[offset + 6] = 1.0 if is_ligand else 0.0
    return vec


def atom_feature_matrix(atoms, is_ligand_flags) -> np.ndarray:
    """Stack feature vectors for a list of atoms."""
    return np.array(
        [atom_feature_vector(a, flag) for a, flag in zip(atoms, is_ligand_flags)], dtype=np.float64
    )


# --------------------------------------------------------------------------- #
# Vectorized path
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AtomArrays:
    """Flat per-atom property arrays extracted in one pass over the atoms.

    Every field has length ``num_atoms``; boolean flags are stored as
    float64 0/1 so they can be used directly as channel weights and
    feature-matrix columns (``float(flag)`` in the scalar path produces
    exactly the same 0.0/1.0 values).
    """

    coords: np.ndarray  # (N, 3) float64
    elem_idx: np.ndarray  # index into ELEMENT_CLASSES
    is_halogen: np.ndarray  # bool
    hydrophobic: np.ndarray  # float64 0/1
    hbond_donor: np.ndarray  # float64 0/1
    hbond_acceptor: np.ndarray  # float64 0/1
    aromatic: np.ndarray  # float64 0/1
    partial_charge: np.ndarray  # float64
    formal_charge: np.ndarray  # float64
    vdw_radius: np.ndarray  # float64

    @property
    def num_atoms(self) -> int:
        return int(self.coords.shape[0])


def atom_arrays(atoms: Sequence[Atom]) -> AtomArrays:
    """Extract :class:`AtomArrays` from a list of atoms (single Python pass)."""
    n = len(atoms)
    coords = np.empty((n, 3), dtype=np.float64)
    elem_idx = np.empty(n, dtype=np.intp)
    halogen = np.empty(n, dtype=bool)
    flags = np.empty((n, 4), dtype=np.float64)  # hydrophobic, donor, acceptor, aromatic
    charges = np.empty((n, 2), dtype=np.float64)  # partial, formal
    vdw = np.empty(n, dtype=np.float64)
    for index, atom in enumerate(atoms):
        coords[index] = atom.position
        elem_idx[index] = element_class(atom)
        halogen[index] = atom.is_halogen
        flags[index, 0] = float(atom.hydrophobic)
        flags[index, 1] = float(atom.hbond_donor)
        flags[index, 2] = float(atom.hbond_acceptor)
        flags[index, 3] = float(atom.aromatic)
        charges[index, 0] = float(atom.partial_charge)
        charges[index, 1] = float(atom.formal_charge)
        vdw[index] = atom.vdw_radius
    return AtomArrays(
        coords=coords,
        elem_idx=elem_idx,
        is_halogen=halogen,
        hydrophobic=flags[:, 0].copy(),
        hbond_donor=flags[:, 1].copy(),
        hbond_acceptor=flags[:, 2].copy(),
        aromatic=flags[:, 3].copy(),
        partial_charge=charges[:, 0].copy(),
        formal_charge=charges[:, 1].copy(),
        vdw_radius=vdw,
    )


def feature_matrix_from_arrays(arrays: AtomArrays, is_ligand: bool | np.ndarray) -> np.ndarray:
    """Vectorized equivalent of :func:`atom_feature_matrix`.

    ``is_ligand`` is either one flag for all atoms or a per-atom boolean
    array.  Bit-identical to the scalar path: every column is either an
    exact 0/1 one-hot or a copy of the same float64 values.
    """
    n = arrays.num_atoms
    matrix = np.zeros((n, ATOM_FEATURE_DIM), dtype=np.float64)
    matrix[np.arange(n), arrays.elem_idx] = 1.0
    offset = len(ELEMENT_CLASSES)
    matrix[:, offset + 0] = arrays.hydrophobic
    matrix[:, offset + 1] = arrays.hbond_donor
    matrix[:, offset + 2] = arrays.hbond_acceptor
    matrix[:, offset + 3] = arrays.aromatic
    matrix[:, offset + 4] = arrays.partial_charge
    matrix[:, offset + 5] = arrays.formal_charge
    if isinstance(is_ligand, np.ndarray):
        matrix[:, offset + 6] = is_ligand.astype(np.float64)
    elif is_ligand:
        matrix[:, offset + 6] = 1.0
    return matrix


def site_arrays(site) -> tuple[AtomArrays, np.ndarray]:
    """Cached ``(AtomArrays, pocket feature matrix)`` for a binding site.

    Binding sites are rigid and shared across thousands of poses, so the
    extraction (the only per-atom Python work left in the vectorized
    path) runs once per site; the result is memoized on the site
    instance like :func:`repro.chem.digest.site_digest`.
    """
    cached = getattr(site, "_featurize_arrays", None)
    if cached is not None:
        return cached
    arrays = atom_arrays(site.atoms)
    features = feature_matrix_from_arrays(arrays, is_ligand=False)
    site._featurize_arrays = (arrays, features)
    return site._featurize_arrays
