"""Per-atom feature vectors shared by the voxel and graph featurizers."""

from __future__ import annotations

import numpy as np

from repro.chem.atom import Atom

#: Element classes used for one-hot encoding.
ELEMENT_CLASSES: tuple[str, ...] = ("C", "N", "O", "S", "P", "halogen", "other")

#: Dimensionality of :func:`atom_feature_vector`.
ATOM_FEATURE_DIM = len(ELEMENT_CLASSES) + 7


def element_class(atom: Atom) -> int:
    """Index of the atom's element class in :data:`ELEMENT_CLASSES`."""
    if atom.element in ELEMENT_CLASSES:
        return ELEMENT_CLASSES.index(atom.element)
    if atom.is_halogen:
        return ELEMENT_CLASSES.index("halogen")
    return ELEMENT_CLASSES.index("other")


def atom_feature_vector(atom: Atom, is_ligand: bool) -> np.ndarray:
    """Feature vector for one atom.

    Layout (length :data:`ATOM_FEATURE_DIM`):

    ==========================  =========
    element one-hot             7
    hydrophobic flag            1
    H-bond donor flag           1
    H-bond acceptor flag        1
    aromatic flag               1
    partial charge              1
    formal charge               1
    ligand flag (vs pocket)     1
    ==========================  =========
    """
    vec = np.zeros(ATOM_FEATURE_DIM)
    vec[element_class(atom)] = 1.0
    offset = len(ELEMENT_CLASSES)
    vec[offset + 0] = float(atom.hydrophobic)
    vec[offset + 1] = float(atom.hbond_donor)
    vec[offset + 2] = float(atom.hbond_acceptor)
    vec[offset + 3] = float(atom.aromatic)
    vec[offset + 4] = float(atom.partial_charge)
    vec[offset + 5] = float(atom.formal_charge)
    vec[offset + 6] = 1.0 if is_ligand else 0.0
    return vec


def atom_feature_matrix(atoms, is_ligand_flags) -> np.ndarray:
    """Stack feature vectors for a list of atoms."""
    return np.array(
        [atom_feature_vector(a, flag) for a, flag in zip(atoms, is_ligand_flags)], dtype=np.float64
    )
