"""Featurization of protein-ligand complexes for the two model heads.

The 3D-CNN consumes a voxelized representation of the complex (Gaussian
atom densities on a regular grid, separate ligand and pocket channels)
while the SG-CNN consumes a spatial graph with covalent and non-covalent
edge types.  Both featurizers follow the descriptions in the FAST paper
referenced by this work, scaled down by default so the NumPy models train
in CI time; the paper-scale settings remain available through the
configuration dataclasses.
"""

from repro.featurize.atom_features import (
    ATOM_FEATURE_DIM,
    AtomArrays,
    atom_arrays,
    atom_feature_vector,
    feature_matrix_from_arrays,
)
from repro.featurize.voxelize import VoxelGridConfig, Voxelizer, random_axis_rotation
from repro.featurize.graph import GraphBuilder, GraphConfig
from repro.featurize.pipeline import ComplexFeaturizer, FeaturizedComplex, collate_complexes
from repro.featurize.cache import (
    FeatureCache,
    FeatureCacheStats,
    H5FeatureStore,
    feature_key,
    featurizer_config_digest,
)
from repro.featurize.engine import (
    FeaturePipeline,
    VectorizedGraphBuilder,
    VectorizedVoxelizer,
)

__all__ = [
    "ATOM_FEATURE_DIM",
    "AtomArrays",
    "atom_arrays",
    "atom_feature_vector",
    "feature_matrix_from_arrays",
    "VoxelGridConfig",
    "Voxelizer",
    "random_axis_rotation",
    "GraphConfig",
    "GraphBuilder",
    "ComplexFeaturizer",
    "FeaturizedComplex",
    "collate_complexes",
    "FeatureCache",
    "FeatureCacheStats",
    "H5FeatureStore",
    "feature_key",
    "featurizer_config_digest",
    "FeaturePipeline",
    "VectorizedGraphBuilder",
    "VectorizedVoxelizer",
]
