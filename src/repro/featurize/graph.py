"""Spatial-graph construction for the SG-CNN head.

Following PotentialNet / FAST, the graph contains the ligand atoms plus
the pocket atoms within an interaction shell of the ligand. Two edge
types are built:

* **covalent** edges follow the ligand's bond topology (pocket
  pseudo-atoms carry no covalent edges) and are additionally restricted
  to a distance threshold and a per-node neighbour cap ``K`` — the
  "Covalent Neighbor Threshold" / "Covalent K" hyper-parameters of
  Table 1;
* **non-covalent** edges connect any two atoms (ligand-ligand,
  ligand-pocket, pocket-pocket) within the non-covalent threshold,
  subject to the non-covalent ``K`` cap.

Adjacency entries are weighted by a smooth distance kernel so that closer
contacts pass larger messages, and rows are degree-normalized to keep the
gated propagation numerically stable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.complexes import ProteinLigandComplex
from repro.featurize.atom_features import atom_feature_matrix


@dataclass(frozen=True)
class GraphConfig:
    """Spatial-graph hyper-parameters (paper Table 1 / Table 2).

    Attributes
    ----------
    covalent_threshold:
        Maximum distance (Angstroms) for covalent edges; the optimized
        SG-CNN used 2.24 A.
    noncovalent_threshold:
        Maximum distance for non-covalent edges; the optimized SG-CNN
        used 5.22 A.
    covalent_k / noncovalent_k:
        Maximum neighbours kept per node and edge type (3 and 6 in the
        optimized SG-CNN — note the paper reports covalent K 6 /
        non-covalent K 3).
    pocket_shell:
        Pocket atoms farther than this from every ligand atom are dropped
        from the graph.
    distance_kernel_width:
        Width of the exponential distance weighting of adjacency entries.
    """

    covalent_threshold: float = 2.24
    noncovalent_threshold: float = 5.22
    covalent_k: int = 6
    noncovalent_k: int = 3
    pocket_shell: float = 6.0
    distance_kernel_width: float = 2.5

    def __post_init__(self) -> None:
        if self.covalent_threshold <= 0 or self.noncovalent_threshold <= 0:
            raise ValueError("distance thresholds must be positive")
        if self.covalent_k <= 0 or self.noncovalent_k <= 0:
            raise ValueError("neighbour caps must be positive")


class GraphBuilder:
    """Build SG-CNN input graphs from protein-ligand complexes."""

    def __init__(self, config: GraphConfig | None = None) -> None:
        self.config = config or GraphConfig()

    def build(self, complex_: ProteinLigandComplex) -> dict:
        """Return a graph dictionary consumable by :class:`repro.nn.GraphBatch`.

        Keys: ``node_features``, ``adjacency`` (covalent / noncovalent),
        ``ligand_mask``, ``id``.
        """
        cfg = self.config
        ligand = complex_.ligand
        lig_coords = ligand.coordinates
        pocket_atoms = complex_.site.atoms
        pocket_coords = complex_.site.coordinates()

        if lig_coords.size == 0:
            raise ValueError("cannot build a graph for an empty ligand")

        # pocket atoms within the interaction shell of any ligand atom
        if pocket_coords.size:
            dists = np.linalg.norm(pocket_coords[:, None, :] - lig_coords[None, :, :], axis=-1)
            keep = np.where(dists.min(axis=1) <= cfg.pocket_shell)[0]
        else:
            keep = np.array([], dtype=int)
        kept_pocket_atoms = [pocket_atoms[i] for i in keep]

        atoms = list(ligand.atoms) + kept_pocket_atoms
        is_ligand = [True] * ligand.num_atoms + [False] * len(kept_pocket_atoms)
        coords = np.vstack([lig_coords, pocket_coords[keep]]) if len(keep) else lig_coords
        n = len(atoms)

        node_features = atom_feature_matrix(atoms, is_ligand)
        all_dist = np.linalg.norm(coords[:, None, :] - coords[None, :, :], axis=-1)
        kernel = np.exp(-all_dist / cfg.distance_kernel_width)

        covalent = np.zeros((n, n))
        long_bond = max(cfg.covalent_threshold, 2.0)
        for bond in ligand.bonds:
            # bonds longer than the covalent threshold (after conformer noise)
            # are still chemically covalent, so the threshold only trims bonds
            # stretched far beyond a typical bond length.
            if all_dist[bond.i, bond.j] > long_bond:
                continue
            weight = kernel[bond.i, bond.j] * bond.order
            covalent[bond.i, bond.j] = weight
            covalent[bond.j, bond.i] = weight
        covalent = _cap_neighbours(covalent, cfg.covalent_k)

        noncovalent = np.where(all_dist <= cfg.noncovalent_threshold, kernel, 0.0)
        np.fill_diagonal(noncovalent, 0.0)
        # exclude pairs already covalently bonded
        noncovalent[covalent > 0] = 0.0
        noncovalent = _cap_neighbours(noncovalent, cfg.noncovalent_k)

        return {
            "node_features": node_features,
            "adjacency": {
                "covalent": _row_normalize(covalent),
                "noncovalent": _row_normalize(noncovalent),
            },
            "ligand_mask": np.array(is_ligand, dtype=bool),
            "id": complex_.complex_id or complex_.ligand.name,
        }


def _cap_neighbours(adjacency: np.ndarray, k: int) -> np.ndarray:
    """Keep only the ``k`` strongest entries per row (symmetrized afterwards).

    Ties are broken deterministically (stable sort, higher column index
    wins) so that the vectorized engine in
    :mod:`repro.featurize.engine`, which selects the same entries via a
    full-row stable argsort, is bit-identical to this reference even when
    two neighbours sit at exactly the same distance.
    """
    n = adjacency.shape[0]
    if n == 0 or k >= n:
        return adjacency
    capped = np.zeros_like(adjacency)
    for i in range(n):
        row = adjacency[i]
        nonzero = np.nonzero(row)[0]
        if nonzero.size == 0:
            continue
        if nonzero.size > k:
            top = nonzero[np.argsort(row[nonzero], kind="stable")[-k:]]
        else:
            top = nonzero
        capped[i, top] = row[top]
    # symmetrize: keep an edge if either endpoint selected it
    return np.maximum(capped, capped.T)


def _row_normalize(adjacency: np.ndarray) -> np.ndarray:
    """Normalize rows to unit sum (rows without edges stay zero)."""
    row_sums = adjacency.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        normalized = np.where(row_sums > 0, adjacency / row_sums, 0.0)
    return normalized
