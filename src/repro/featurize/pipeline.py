"""End-to-end featurization pipeline producing model-ready samples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.chem.complexes import ProteinLigandComplex
from repro.featurize.graph import GraphBuilder, GraphConfig
from repro.featurize.voxelize import VoxelGridConfig, Voxelizer, random_axis_rotation
from repro.nn.graph_layers import FlatGraphBatch, GraphBatch
from repro.utils.rng import ensure_rng


@dataclass
class FeaturizedComplex:
    """A single featurized sample.

    Attributes
    ----------
    voxel:
        ``(C, D, D, D)`` voxel tensor for the 3D-CNN head.
    graph:
        Graph dictionary for the SG-CNN head.
    target:
        Training label (experimental pK); ``nan`` for unlabeled screening
        poses.
    complex_id / pose_id:
        Identifiers carried through the scoring pipeline output.
    """

    voxel: np.ndarray
    graph: dict
    target: float
    complex_id: str
    pose_id: int = 0
    metadata: dict = field(default_factory=dict)


class ComplexFeaturizer:
    """Featurize complexes for both model heads.

    Parameters
    ----------
    voxel_config / graph_config:
        Configurations of the two featurizers.
    augment:
        Enable random rotational augmentation of the voxel representation
        (applied only when ``training=True`` is passed to
        :meth:`featurize`); the graph representation is rotation
        invariant and is never augmented, exactly as in the paper.
    rotation_probability:
        Per-axis rotation probability (10 % in the paper).
    seed:
        Seed of the augmentation stream.
    """

    def __init__(
        self,
        voxel_config: VoxelGridConfig | None = None,
        graph_config: GraphConfig | None = None,
        augment: bool = False,
        rotation_probability: float = 0.1,
        seed: int | None = 0,
    ) -> None:
        self.voxelizer = Voxelizer(voxel_config)
        self.graph_builder = GraphBuilder(graph_config)
        self.augment = bool(augment)
        self.rotation_probability = float(rotation_probability)
        self._rng = ensure_rng(seed)

    def featurize(
        self,
        complex_: ProteinLigandComplex,
        target: float = float("nan"),
        training: bool = False,
    ) -> FeaturizedComplex:
        """Featurize one complex into a :class:`FeaturizedComplex`."""
        rotation = None
        if self.augment and training:
            rotation = random_axis_rotation(self._rng, self.rotation_probability)
        voxel = self.voxelizer.voxelize(complex_, rotation=rotation)
        graph = self.graph_builder.build(complex_)
        return FeaturizedComplex(
            voxel=voxel,
            graph=graph,
            target=float(target),
            complex_id=complex_.complex_id,
            pose_id=complex_.pose_id,
            metadata=dict(complex_.metadata),
        )

    def featurize_many(
        self,
        complexes: Sequence[ProteinLigandComplex],
        targets: Sequence[float] | None = None,
        training: bool = False,
    ) -> list[FeaturizedComplex]:
        """Featurize a sequence of complexes (targets default to ``nan``)."""
        if targets is None:
            targets = [float("nan")] * len(complexes)
        if len(targets) != len(complexes):
            raise ValueError("targets must match complexes in length")
        return [self.featurize(c, t, training=training) for c, t in zip(complexes, targets)]


def collate_complexes(samples: Sequence[FeaturizedComplex], graph_layout: str = "dense") -> dict:
    """Collate featurized samples into a model-ready batch.

    Returns a dict with keys ``voxel`` (``(N, C, D, D, D)`` array),
    ``graph`` (:class:`GraphBatch`, or :class:`FlatGraphBatch` when
    ``graph_layout="flat"``), ``target`` (``(N,)`` array), and ``ids`` /
    ``pose_ids`` lists.  The flat layout keeps adjacency as edge lists —
    O(edges) message passing instead of O(total^2) — and is what the
    vectorized trainer collates with; predictions agree with the dense
    layout to solver precision but are not bit-identical to it.
    """
    if not samples:
        raise ValueError("cannot collate an empty batch")
    if graph_layout not in ("dense", "flat"):
        raise ValueError(f"unknown graph_layout '{graph_layout}'; expected 'dense' or 'flat'")
    batch_cls = FlatGraphBatch if graph_layout == "flat" else GraphBatch
    voxels = np.stack([s.voxel for s in samples], axis=0)
    graphs = batch_cls.from_graphs([s.graph for s in samples])
    targets = np.array([s.target for s in samples], dtype=np.float64)
    return {
        "voxel": voxels,
        "graph": graphs,
        "target": targets,
        "ids": [s.complex_id for s in samples],
        "pose_ids": [s.pose_id for s in samples],
    }
