"""Worker-process telemetry capture for the process backends.

A worker process cannot write to the coordinator's
:class:`~repro.telemetry.MetricsRegistry` — the registry is a plain
in-process object.  Instead, every process-backend payload runs its task
under :func:`isolated_registry`, which activates a fresh telemetry
bundle (null tracer, empty registry) for the duration of the task, and
ships the registry's mergeable export back alongside the result.  The
coordinator folds the export into its own registry with
:meth:`~repro.telemetry.MetricsRegistry.absorb` — integer counter adds
plus exact :meth:`~repro.telemetry.StreamingHistogram.merge`, so the
final metrics are bit-identical however the work was split across
processes (or not split at all: the thread backend's metrics land on the
coordinator registry directly and agree by the same order-invariance).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry import Telemetry, activate

__all__ = ["isolated_registry"]


@contextmanager
def isolated_registry():
    """Activate a fresh disabled-tracer bundle; yields its registry.

    Inside the block, every ``current()``-reading instrumentation point
    (docking kernels, featurization, serving batches) accumulates into
    the yielded registry instead of the process default, so the caller
    can export exactly what *this task* recorded:

        with isolated_registry() as registry:
            outcome = run_the_task()
        return outcome, registry.export_mergeable()
    """
    bundle = Telemetry.disabled()
    with activate(bundle):
        yield bundle.registry
