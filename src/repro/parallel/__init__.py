"""repro.parallel — the process-parallel execution backend.

Every parallel path in the repo historically ran on GIL-bound thread
pools; this package provides the process alternative behind one
primitive, :class:`ProcessTaskPool` (``spawn`` context, heavy payload
shipped once per worker, light task descriptors per dispatch).  Call
sites select it with a ``backend="thread" | "process"`` knob:

* ``StreamConfig(backend=...)`` — streaming shard execution
  (:mod:`repro.screening.stream`);
* ``dock_many(..., backend=...)`` — per-compound docking pools
  (:mod:`repro.docking.engine`);
* ``ServingConfig(backend=...)`` — per-process model replicas
  (:class:`repro.serving.workers.ProcessModelBackend`).

Results are bit-identical across backends (the streaming golden suite
pins it), so like ``docking_engine`` the choice never enters checkpoint
or shard keys.  Worker-process metrics flow back to the coordinator via
:func:`isolated_registry` + :meth:`~repro.telemetry.MetricsRegistry.absorb`.
"""

from repro.parallel.metrics import isolated_registry
from repro.parallel.pool import PARALLEL_BACKENDS, ProcessTaskPool, WorkerPayload, validate_backend

__all__ = [
    "PARALLEL_BACKENDS",
    "ProcessTaskPool",
    "WorkerPayload",
    "isolated_registry",
    "validate_backend",
]
