"""repro.parallel — the process-parallel execution backend.

Every parallel path in the repo historically ran on GIL-bound thread
pools; this package provides the process alternative behind one
primitive, :class:`ProcessTaskPool` (``spawn`` context, heavy payload
shipped once per worker, light task descriptors per dispatch).  Call
sites select it with a ``backend="thread" | "process"`` knob:

* ``StreamConfig(backend=...)`` — streaming shard execution
  (:mod:`repro.screening.stream`);
* ``dock_many(..., backend=...)`` — per-compound docking pools
  (:mod:`repro.docking.engine`);
* ``ServingConfig(backend=...)`` — per-process model replicas
  (:class:`repro.serving.workers.ProcessModelBackend`).

Results are bit-identical across backends (the streaming golden suite
pins it), so like ``docking_engine`` the choice never enters checkpoint
or shard keys.  Worker-process metrics flow back to the coordinator via
:func:`isolated_registry` + :meth:`~repro.telemetry.MetricsRegistry.absorb`.

Crash resilience lives in :mod:`repro.parallel.supervisor`: every
process path runs behind :class:`SupervisedTaskPool`, which respawns a
pool whose worker died, re-dispatches the in-flight tasks, quarantines
poison tasks as :class:`TaskFailure` and (for serving) health-checks
replicas with :class:`CircuitBreaker` — see ``docs/resilience.md``.
"""

from repro.parallel.metrics import isolated_registry
from repro.parallel.pool import (
    PARALLEL_BACKENDS,
    PoolClosedError,
    ProcessTaskPool,
    WorkerPayload,
    current_task_attempt,
    validate_backend,
)
from repro.parallel.supervisor import (
    CircuitBreaker,
    RespawnExhausted,
    SupervisedTaskPool,
    SupervisionConfig,
    TaskFailure,
    TaskQuarantined,
)

__all__ = [
    "PARALLEL_BACKENDS",
    "CircuitBreaker",
    "PoolClosedError",
    "ProcessTaskPool",
    "RespawnExhausted",
    "SupervisedTaskPool",
    "SupervisionConfig",
    "TaskFailure",
    "TaskQuarantined",
    "WorkerPayload",
    "current_task_attempt",
    "isolated_registry",
    "validate_backend",
]
