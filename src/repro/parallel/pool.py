"""A spawn-based process pool with one-time payload shipping.

:class:`ProcessTaskPool` is the primitive behind every process backend in
the repo (`StreamConfig(backend="process")`, ``dock_many(backend=)``,
:class:`repro.serving.workers.ProcessModelBackend`).  The design follows
one rule: **ship the heavy state once, dispatch light descriptors
forever**.

* The *payload* — model weights, binding sites, a stripped streaming
  engine — is pickled exactly once in the parent and handed to each
  worker process through the executor initializer, so per-task messages
  stay small (shard index triples, compound ids, collated batches).
* Workers are started with ``multiprocessing.get_context("spawn")``:
  children run a fresh interpreter (no inherited locks mid-acquire, no
  copied thread state — fork's classic hazards), import the payload's
  modules cleanly and inherit ``sys.path``, so ``PYTHONPATH=src`` runs
  behave identically in children.

Spawn-safety rules for payloads (see also ``docs/parallel.md``):

1. the payload class must be importable by module path in a fresh
   interpreter (module-level class, not a closure or ``__main__`` local);
2. everything the payload references must pickle — objects holding
   ``threading`` primitives need ``__getstate__`` (e.g.
   :class:`~repro.telemetry.StreamingHistogram`,
   :class:`~repro.featurize.cache.FeatureCache`);
3. payloads must not expect parent-side mutable state: checkpoints,
   services and fault injectors stay in the coordinator.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Protocol

__all__ = [
    "PARALLEL_BACKENDS",
    "PoolClosedError",
    "ProcessTaskPool",
    "WorkerPayload",
    "current_task_attempt",
    "validate_backend",
]

#: Every execution backend a parallel path accepts.  ``"thread"`` is the
#: in-process pool each call site always had; ``"process"`` routes the
#: same work through a :class:`ProcessTaskPool`.  Results are
#: bit-identical either way, which is why (like ``docking_engine``) the
#: choice never enters checkpoint or shard keys.
PARALLEL_BACKENDS = ("thread", "process")


def validate_backend(backend: str) -> str:
    """Check ``backend`` against :data:`PARALLEL_BACKENDS` and return it."""
    if backend not in PARALLEL_BACKENDS:
        raise ValueError(
            f"unknown execution backend '{backend}'; expected one of {PARALLEL_BACKENDS}"
        )
    return backend


class WorkerPayload(Protocol):
    """What a process pool ships to its workers: state plus a task entry point."""

    def run_task(self, task: Any) -> Any:
        """Execute one task descriptor against the shipped state."""
        ...


class PoolClosedError(RuntimeError):
    """Raised when tasks are dispatched against a pool after ``close()``.

    Subclasses :class:`RuntimeError` so callers matching the historical
    bare ``RuntimeError("... closed")`` keep working; the message names
    the pool and the payload type so a stray submit in a shutdown race
    is attributable from the traceback alone.
    """

    def __init__(self, pool_name: str, payload_type: str) -> None:
        super().__init__(
            f"{pool_name} is closed; cannot dispatch tasks against "
            f"payload {payload_type!r}"
        )
        self.pool_name = pool_name
        self.payload_type = payload_type

    def __reduce__(self):
        return (PoolClosedError, (self.pool_name, self.payload_type))


class _Warmup:
    """Sentinel task: spawns a worker and ships the payload, does nothing."""


class _AttemptedTask:
    """A task wrapped with its dispatch attempt number.

    :class:`~repro.parallel.supervisor.SupervisedTaskPool` wraps every
    task it re-dispatches after a crash so fault injectors inside the
    worker (:class:`repro.hpc.faults.ProcessKillFault`) can fire on a
    *specific* attempt — kill attempt 1, let the respawned attempt 2
    run clean — keeping chaos tests deterministic.
    """

    __slots__ = ("task", "attempt")

    def __init__(self, task: Any, attempt: int) -> None:
        self.task = task
        self.attempt = int(attempt)

    def __getstate__(self):
        return (self.task, self.attempt)

    def __setstate__(self, state):
        self.task, self.attempt = state


#: One payload per worker *process*, installed by the initializer.
_PAYLOAD: Any = None

#: Attempt number of the task currently executing in *this* worker
#: process; ``None`` outside a worker (coordinator, thread backends).
_TASK_ATTEMPT: int | None = None


def current_task_attempt() -> int | None:
    """Attempt number of the task running in this worker process.

    ``1`` on first dispatch, ``2`` after one crash re-dispatch, and so
    on; ``None`` when not inside a process-pool worker (so in-worker
    fault injectors stay inert on thread backends and in the
    coordinator).
    """
    return _TASK_ATTEMPT


def _initialize_worker(payload_bytes: bytes) -> None:
    global _PAYLOAD
    _PAYLOAD = pickle.loads(payload_bytes)


def _run_task(task: Any) -> Any:
    global _TASK_ATTEMPT
    if _PAYLOAD is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker process has no payload; initializer did not run")
    attempt = 1
    if task.__class__ is _AttemptedTask:
        attempt, task = task.attempt, task.task
    if task.__class__ is _Warmup:
        return None
    _TASK_ATTEMPT = attempt
    try:
        return _PAYLOAD.run_task(task)
    finally:
        _TASK_ATTEMPT = None


class ProcessTaskPool:
    """A bounded pool of spawned worker processes sharing one payload.

    Parameters
    ----------
    payload:
        The :class:`WorkerPayload` shipped once to every worker.  It is
        pickled eagerly in the constructor so an unpicklable payload
        fails fast in the parent with a useful traceback, not inside an
        opaque worker crash.
    max_workers:
        Upper bound on concurrent worker processes.  Processes are
        spawned on demand by the executor; :meth:`warm` forces the first
        spawn early so payload shipping overlaps coordinator startup.
    """

    def __init__(self, payload: WorkerPayload, max_workers: int = 1) -> None:
        self._init_from_bytes(
            pickle.dumps(payload), max_workers, type(payload).__name__
        )

    @classmethod
    def from_bytes(
        cls,
        payload_bytes: bytes,
        max_workers: int = 1,
        payload_type: str = "payload",
    ) -> "ProcessTaskPool":
        """Build a pool from an already-pickled payload.

        This is the respawn path of
        :class:`~repro.parallel.supervisor.SupervisedTaskPool`: the
        payload was serialized exactly once up front, so replacing a
        crashed pool costs only process spawns, never re-pickling model
        weights or binding sites.
        """
        pool = cls.__new__(cls)
        pool._init_from_bytes(payload_bytes, max_workers, payload_type)
        return pool

    def _init_from_bytes(
        self, payload_bytes: bytes, max_workers: int, payload_type: str
    ) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = int(max_workers)
        self._payload_bytes = payload_bytes
        self._payload_type = payload_type
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_initialize_worker,
            initargs=(self._payload_bytes,),
        )

    # ------------------------------------------------------------------ #
    @property
    def payload_nbytes(self) -> int:
        """Size of the one-time shipped payload (observability)."""
        return len(self._payload_bytes)

    @property
    def payload_type(self) -> str:
        """Class name of the shipped payload (diagnostics)."""
        return self._payload_type

    def is_broken(self) -> bool:
        """Whether a worker death has poisoned the underlying executor."""
        executor = self._executor
        return bool(executor is not None and getattr(executor, "_broken", False))

    def worker_pids(self) -> list[int]:
        """PIDs of live worker processes (chaos tests kill these)."""
        executor = self._executor
        if executor is None:
            return []
        processes = getattr(executor, "_processes", None) or {}
        return [proc.pid for proc in list(processes.values()) if proc.is_alive()]

    def submit(self, task: Any) -> Future:
        """Dispatch one task descriptor; returns its future."""
        if self._executor is None:
            raise PoolClosedError(type(self).__name__, self._payload_type)
        return self._executor.submit(_run_task, task)

    def run(self, task: Any) -> Any:
        """Dispatch one task and block for its result."""
        return self.submit(task).result()

    def warm(self, wait: bool = False) -> Future:
        """Start spawning a worker (and shipping the payload) now.

        By default the warm-up future is returned without waiting, so
        process startup overlaps whatever the caller does next; real
        tasks submitted meanwhile simply queue behind it.
        """
        future = self.submit(_Warmup())
        if wait:
            future.result()
        return future

    def close(self) -> None:
        """Shut the workers down; idempotent."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ProcessTaskPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
