"""A spawn-based process pool with one-time payload shipping.

:class:`ProcessTaskPool` is the primitive behind every process backend in
the repo (`StreamConfig(backend="process")`, ``dock_many(backend=)``,
:class:`repro.serving.workers.ProcessModelBackend`).  The design follows
one rule: **ship the heavy state once, dispatch light descriptors
forever**.

* The *payload* — model weights, binding sites, a stripped streaming
  engine — is pickled exactly once in the parent and handed to each
  worker process through the executor initializer, so per-task messages
  stay small (shard index triples, compound ids, collated batches).
* Workers are started with ``multiprocessing.get_context("spawn")``:
  children run a fresh interpreter (no inherited locks mid-acquire, no
  copied thread state — fork's classic hazards), import the payload's
  modules cleanly and inherit ``sys.path``, so ``PYTHONPATH=src`` runs
  behave identically in children.

Spawn-safety rules for payloads (see also ``docs/parallel.md``):

1. the payload class must be importable by module path in a fresh
   interpreter (module-level class, not a closure or ``__main__`` local);
2. everything the payload references must pickle — objects holding
   ``threading`` primitives need ``__getstate__`` (e.g.
   :class:`~repro.telemetry.StreamingHistogram`,
   :class:`~repro.featurize.cache.FeatureCache`);
3. payloads must not expect parent-side mutable state: checkpoints,
   services and fault injectors stay in the coordinator.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Protocol

__all__ = ["PARALLEL_BACKENDS", "ProcessTaskPool", "WorkerPayload", "validate_backend"]

#: Every execution backend a parallel path accepts.  ``"thread"`` is the
#: in-process pool each call site always had; ``"process"`` routes the
#: same work through a :class:`ProcessTaskPool`.  Results are
#: bit-identical either way, which is why (like ``docking_engine``) the
#: choice never enters checkpoint or shard keys.
PARALLEL_BACKENDS = ("thread", "process")


def validate_backend(backend: str) -> str:
    """Check ``backend`` against :data:`PARALLEL_BACKENDS` and return it."""
    if backend not in PARALLEL_BACKENDS:
        raise ValueError(
            f"unknown execution backend '{backend}'; expected one of {PARALLEL_BACKENDS}"
        )
    return backend


class WorkerPayload(Protocol):
    """What a process pool ships to its workers: state plus a task entry point."""

    def run_task(self, task: Any) -> Any:
        """Execute one task descriptor against the shipped state."""
        ...


class _Warmup:
    """Sentinel task: spawns a worker and ships the payload, does nothing."""


#: One payload per worker *process*, installed by the initializer.
_PAYLOAD: Any = None


def _initialize_worker(payload_bytes: bytes) -> None:
    global _PAYLOAD
    _PAYLOAD = pickle.loads(payload_bytes)


def _run_task(task: Any) -> Any:
    if _PAYLOAD is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker process has no payload; initializer did not run")
    if task.__class__ is _Warmup:
        return None
    return _PAYLOAD.run_task(task)


class ProcessTaskPool:
    """A bounded pool of spawned worker processes sharing one payload.

    Parameters
    ----------
    payload:
        The :class:`WorkerPayload` shipped once to every worker.  It is
        pickled eagerly in the constructor so an unpicklable payload
        fails fast in the parent with a useful traceback, not inside an
        opaque worker crash.
    max_workers:
        Upper bound on concurrent worker processes.  Processes are
        spawned on demand by the executor; :meth:`warm` forces the first
        spawn early so payload shipping overlaps coordinator startup.
    """

    def __init__(self, payload: WorkerPayload, max_workers: int = 1) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = int(max_workers)
        self._payload_bytes = pickle.dumps(payload)
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_initialize_worker,
            initargs=(self._payload_bytes,),
        )

    # ------------------------------------------------------------------ #
    @property
    def payload_nbytes(self) -> int:
        """Size of the one-time shipped payload (observability)."""
        return len(self._payload_bytes)

    def submit(self, task: Any) -> Future:
        """Dispatch one task descriptor; returns its future."""
        if self._executor is None:
            raise RuntimeError("ProcessTaskPool is closed")
        return self._executor.submit(_run_task, task)

    def run(self, task: Any) -> Any:
        """Dispatch one task and block for its result."""
        return self.submit(task).result()

    def warm(self, wait: bool = False) -> Future:
        """Start spawning a worker (and shipping the payload) now.

        By default the warm-up future is returned without waiting, so
        process startup overlaps whatever the caller does next; real
        tasks submitted meanwhile simply queue behind it.
        """
        future = self.submit(_Warmup())
        if wait:
            future.result()
        return future

    def close(self) -> None:
        """Shut the workers down; idempotent."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ProcessTaskPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
