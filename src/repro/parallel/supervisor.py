"""Crash-resilient supervision over the process execution backend.

:class:`ProcessTaskPool` survives task *exceptions* but not task
*crashes*: a SIGKILL'd worker (OOM killer, preempted HPC node, a real
``kill -9``) flips the underlying :class:`~concurrent.futures.process.
ProcessPoolExecutor` into ``BrokenProcessPool``, which poisons every
in-flight future and every later submit.  :class:`SupervisedTaskPool`
is the supervisor-tree layer that turns worker death back into an
ordinary, bounded retry:

* **Crash detection.**  The executor's manager thread already watches
  each worker's sentinel pipe and fails all in-flight futures with
  ``BrokenProcessPool`` the moment one dies; the supervisor intercepts
  exactly that error class (plus synchronous submit-time breakage), and
  a heartbeat wake additionally probes pool health so a broken-but-idle
  pool is respawned before the next caller trips over it.
* **Transparent respawn.**  The payload was pickled exactly once up
  front (:meth:`ProcessTaskPool.from_bytes`), so replacing a crashed
  pool costs only process spawns.  Respawn is attempted with
  exponential backoff; in-flight tasks of the dead generation are
  re-dispatched into the fresh pool.
* **Poison-task quarantine.**  A task whose execution has now crashed
  the pool ``max_task_retries`` times is *returned* as a structured
  :class:`TaskFailure` instead of being retried forever — the caller
  decides whether that is fatal (``dock_many`` raises, streaming turns
  it into a failed shard outcome subject to ``on_shard_failure``).
  Ordinary task exceptions are **never** retried: they propagate
  unchanged, which is what keeps the no-fault path bit-identical to an
  unsupervised pool.
* **Per-task deadlines.**  ``task_deadline_s`` resolves an overdue
  task's future with :class:`TimeoutError` *without* tearing down the
  pool — healthy workers keep draining their queue; the overdue
  worker's eventual result is discarded.
* **Degrade-to-thread escape hatch.**  If respawn itself fails
  ``max_respawn_failures`` consecutive times (fd/PID exhaustion, a
  broken spawn environment) and ``degrade_to_thread=True``, the
  supervisor unpickles the payload locally and finishes the work on an
  in-process thread pool — slower, but the run completes and results
  are unchanged because payload task bodies are pure.

Because crash-attribution at pool granularity is inherently collective
(``BrokenProcessPool`` does not say *which* task's worker died),
innocent tasks in flight during someone else's crash also get a crash
mark; ``max_task_retries`` therefore defaults high enough that only a
task that *repeatedly* accompanies pool death is quarantined.

Supervision telemetry lands in the active (or injected)
:class:`~repro.telemetry.MetricsRegistry`: ``supervision.respawns``,
``supervision.redispatches``, ``supervision.quarantined``,
``supervision.deadline_timeouts``, ``supervision.degraded`` counters
and a ``supervision.respawn_s`` restart-latency histogram.

:class:`CircuitBreaker` lives here too: the serving layer health-checks
each model replica with a consecutive-failure breaker (closed → open →
half-open probe → closed) so :class:`~repro.serving.service.
ScoringService` routes around a sick replica while it restarts — see
``docs/resilience.md`` for the full state machine.
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    Future,
    InvalidStateError,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable

from repro.parallel.pool import (
    PoolClosedError,
    ProcessTaskPool,
    _AttemptedTask,
)
from repro.telemetry import MetricsRegistry
from repro.telemetry import current as current_telemetry
from repro.utils.logging import get_logger

__all__ = [
    "CircuitBreaker",
    "RespawnExhausted",
    "SupervisedTaskPool",
    "SupervisionConfig",
    "TaskFailure",
    "TaskQuarantined",
]

logger = get_logger("repro.parallel.supervisor")

_UNSET = object()


class RespawnExhausted(RuntimeError):
    """Respawning the worker pool failed repeatedly and degrade was off."""


@dataclass(frozen=True)
class TaskFailure:
    """Structured verdict for a quarantined (or unrecoverable) task.

    Returned as the task's *result* — not raised — so batch callers can
    triage one poison task without losing the rest of the batch.
    """

    task: Any
    attempts: int
    error: str
    kind: str = "crash"

    def to_exception(self) -> "TaskQuarantined":
        return TaskQuarantined(self)


class TaskQuarantined(RuntimeError):
    """A :class:`TaskFailure` escalated by a caller that cannot skip it."""

    def __init__(self, failure: TaskFailure) -> None:
        super().__init__(
            f"task {failure.task!r} was quarantined after crashing its "
            f"worker pool {failure.attempts} time(s): {failure.error}"
        )
        self.failure = failure


@dataclass(frozen=True)
class SupervisionConfig:
    """Knobs for :class:`SupervisedTaskPool`.

    These are robustness/throughput knobs in the same sense as
    ``workers`` or ``backend``: they never enter checkpoint or shard
    keys, and with no fault firing they change no result bits.
    """

    max_task_retries: int = 3
    max_respawn_failures: int = 3
    respawn_backoff_s: float = 0.05
    respawn_backoff_factor: float = 2.0
    task_deadline_s: float | None = None
    degrade_to_thread: bool = False
    heartbeat_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_task_retries < 1:
            raise ValueError("max_task_retries must be >= 1")
        if self.max_respawn_failures < 1:
            raise ValueError("max_respawn_failures must be >= 1")
        if self.respawn_backoff_s < 0:
            raise ValueError("respawn_backoff_s must be >= 0")
        if self.respawn_backoff_factor < 1.0:
            raise ValueError("respawn_backoff_factor must be >= 1")
        if self.task_deadline_s is not None and self.task_deadline_s <= 0:
            raise ValueError("task_deadline_s must be positive when set")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")


class _Supervised:
    """Coordinator-side record of one supervised task."""

    __slots__ = ("task", "future", "attempts", "deadline_s", "deadline", "pool")

    def __init__(self, task: Any, deadline_s: float | None) -> None:
        self.task = task
        self.future: Future = Future()
        self.attempts = 0
        self.deadline_s = deadline_s
        self.deadline: float | None = None
        self.pool: Any = None


class SupervisedTaskPool:
    """A :class:`ProcessTaskPool` under supervision (see module docs).

    Drop-in for the call sites that used a bare pool: ``submit(task)``
    returns a future, ``run(task)`` blocks for the result, ``warm()``
    pre-spawns, ``close()`` is idempotent and the object is a context
    manager.  The differences are behavioural: worker death respawns
    the pool and re-dispatches, poison tasks resolve to
    :class:`TaskFailure`, and overdue tasks resolve to ``TimeoutError``
    when a deadline is configured.
    """

    def __init__(
        self,
        payload: Any,
        max_workers: int = 1,
        config: SupervisionConfig | None = None,
        registry: MetricsRegistry | None = None,
        pool_factory: Callable[[], Any] | None = None,
    ) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.config = config or SupervisionConfig()
        self.max_workers = int(max_workers)
        self._payload_bytes = pickle.dumps(payload)
        self._payload_type = type(payload).__name__
        registry = registry if registry is not None else current_telemetry().registry
        self._m_respawns = registry.counter("supervision.respawns")
        self._m_redispatches = registry.counter("supervision.redispatches")
        self._m_quarantined = registry.counter("supervision.quarantined")
        self._m_deadlines = registry.counter("supervision.deadline_timeouts")
        self._m_degraded = registry.counter("supervision.degraded")
        self._m_respawn_s = registry.histogram("supervision.respawn_s")
        if pool_factory is None:
            pool_factory = lambda: ProcessTaskPool.from_bytes(  # noqa: E731
                self._payload_bytes, self.max_workers, self._payload_type
            )
        self._pool_factory = pool_factory
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._records: set[_Supervised] = set()
        self._crashed: deque[tuple[_Supervised | None, BaseException | None]] = deque()
        self._pending: deque[_Supervised] = deque()
        self._closed = False
        self._degraded = False
        self._local_payload: Any = None
        self._thread_pool: ThreadPoolExecutor | None = None
        self._pool: Any = self._pool_factory()
        self._supervisor = threading.Thread(
            target=self._supervise, name="pool-supervisor", daemon=True
        )
        self._supervisor.start()

    # -- public surface ------------------------------------------------ #
    @property
    def payload_nbytes(self) -> int:
        return len(self._payload_bytes)

    def worker_pids(self) -> list[int]:
        """PIDs of the current generation's live workers."""
        with self._lock:
            pool = self._pool
        if pool is None or not hasattr(pool, "worker_pids"):
            return []
        return pool.worker_pids()

    def submit(self, task: Any, deadline_s: Any = _UNSET) -> Future:
        """Dispatch one task under supervision; returns its future.

        The future resolves with the task's result, with the task's own
        exception (never retried), with :class:`TaskFailure` after
        quarantine, or with ``TimeoutError`` past its deadline.
        """
        if deadline_s is _UNSET:
            deadline_s = self.config.task_deadline_s
        with self._lock:
            if self._closed:
                raise PoolClosedError(type(self).__name__, self._payload_type)
            record = _Supervised(task, deadline_s)
            self._records.add(record)
        self._dispatch(record)
        return record.future

    def run(self, task: Any, deadline_s: Any = _UNSET) -> Any:
        """Dispatch one task and block for its (possibly failed) result."""
        return self.submit(task, deadline_s=deadline_s).result()

    def warm(self, wait: bool = False):
        """Pre-spawn the first worker of the current generation."""
        with self._lock:
            if self._closed:
                raise PoolClosedError(type(self).__name__, self._payload_type)
            pool = self._pool
        if pool is None:
            return None
        return pool.warm(wait=wait)

    def close(self) -> None:
        """Shut down workers and the supervisor thread; idempotent."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            stranded = list(self._pending)
            self._pending.clear()
            stranded.extend(r for r, _ in self._crashed if r is not None)
            self._crashed.clear()
            thread_pool = self._thread_pool
            self._cond.notify_all()
        for record in stranded:
            self._resolve(
                record,
                exception=PoolClosedError(type(self).__name__, self._payload_type),
            )
        if pool is not None:
            pool.close()
        if thread_pool is not None:
            thread_pool.shutdown(wait=True)
        self._supervisor.join(timeout=10.0)

    def __enter__(self) -> "SupervisedTaskPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- dispatch & completion ----------------------------------------- #
    def _dispatch(self, record: _Supervised) -> None:
        with self._cond:
            if record.future.done():
                self._records.discard(record)
                return
            if self._closed:
                closed_error = PoolClosedError(
                    type(self).__name__, self._payload_type
                )
            else:
                closed_error = None
                record.attempts += 1
                if record.deadline_s is not None:
                    # Per-attempt deadline: respawn/backoff time is not
                    # charged against the task body's budget.
                    record.deadline = time.monotonic() + record.deadline_s
                    self._cond.notify_all()
                pool = self._pool
                degraded = self._degraded
        if closed_error is not None:
            self._resolve(record, exception=closed_error)
            return
        if degraded:
            self._dispatch_degraded(record)
            return
        if pool is None:
            with self._cond:
                record.attempts -= 1
                self._pending.append(record)
                self._cond.notify_all()
            return
        record.pool = pool
        try:
            inner = pool.submit(_AttemptedTask(record.task, record.attempts))
        except (PoolClosedError, BrokenExecutor) as error:
            # The pool died before this attempt launched; don't charge
            # the task for it.
            with self._lock:
                record.attempts -= 1
            self._note_crash(record, error)
            return
        inner.add_done_callback(partial(self._on_done, record))

    def _dispatch_degraded(self, record: _Supervised) -> None:
        with self._lock:
            if self._thread_pool is None:
                self._local_payload = pickle.loads(self._payload_bytes)
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="degraded-worker",
                )
            executor = self._thread_pool
            payload = self._local_payload
        inner = executor.submit(payload.run_task, record.task)
        inner.add_done_callback(partial(self._on_done, record))

    def _on_done(self, record: _Supervised, inner: Future) -> None:
        if inner.cancelled():
            self._note_crash(record, None)
            return
        error = inner.exception()
        if error is None:
            self._resolve(record, result=inner.result())
        elif isinstance(error, BrokenExecutor):
            self._note_crash(record, error)
        else:
            # The task's own exception: propagate, never retry —
            # identical semantics to an unsupervised pool.
            self._resolve(record, exception=error)

    def _note_crash(
        self, record: _Supervised | None, error: BaseException | None
    ) -> None:
        with self._cond:
            if self._closed:
                if record is not None:
                    self._records.discard(record)
                    stranded = record
                else:
                    stranded = None
            else:
                self._crashed.append((record, error))
                self._cond.notify_all()
                return
        if stranded is not None:
            self._resolve(
                stranded,
                exception=PoolClosedError(type(self).__name__, self._payload_type),
            )

    def _resolve(
        self, record: _Supervised, result: Any = _UNSET, exception: BaseException | None = None
    ) -> None:
        with self._cond:
            self._records.discard(record)
            self._cond.notify_all()
        try:
            if exception is not None:
                record.future.set_exception(exception)
            else:
                record.future.set_result(result)
        except InvalidStateError:
            # Already resolved (deadline fired while the worker was
            # finishing, or a shutdown race); the late outcome is moot.
            pass

    # -- supervisor thread --------------------------------------------- #
    def _supervise(self) -> None:
        heartbeat = self.config.heartbeat_interval_s
        while True:
            with self._cond:
                while True:
                    if self._closed:
                        return
                    if self._crashed:
                        crashed = list(self._crashed)
                        self._crashed.clear()
                        break
                    if self._pending and self._pool is None and not self._degraded:
                        # A prior respawn exhaustion left us poolless;
                        # new submits re-trigger respawn.
                        crashed = []
                        break
                    wait_s = self._next_wait_s(heartbeat)
                    if wait_s is not None and wait_s <= 0:
                        crashed = []
                        break
                    self._cond.wait(wait_s)
            self._expire_deadlines()
            broken = False
            with self._lock:
                pool = self._pool
            if pool is not None and hasattr(pool, "is_broken"):
                broken = pool.is_broken()
            if crashed or broken or self._needs_pool():
                self._handle_crash_event(crashed)

    def _needs_pool(self) -> bool:
        with self._lock:
            return bool(
                self._pending and self._pool is None and not self._degraded
            )

    def _next_wait_s(self, heartbeat: float) -> float | None:
        """Seconds the supervisor may sleep (holding the lock)."""
        deadlines = [
            r.deadline
            for r in self._records
            if r.deadline is not None and not r.future.done()
        ]
        if deadlines:
            return max(min(deadlines) - time.monotonic(), 0.0)
        if self._records:
            return heartbeat  # heartbeat pool-health probe while busy
        return None  # fully idle: sleep until notified

    def _expire_deadlines(self) -> None:
        now = time.monotonic()
        with self._lock:
            overdue = [
                r
                for r in self._records
                if r.deadline is not None and r.deadline <= now and not r.future.done()
            ]
        for record in overdue:
            self._m_deadlines.inc()
            logger.warning(
                "supervised task %r exceeded its %.3fs deadline (attempt %d); "
                "failing the future and leaving the worker to finish",
                record.task,
                record.deadline_s,
                record.attempts,
            )
            self._resolve(
                record,
                exception=TimeoutError(
                    f"supervised task {record.task!r} exceeded its "
                    f"{record.deadline_s}s deadline on attempt {record.attempts}"
                ),
            )

    def _handle_crash_event(
        self, crashed: list[tuple[_Supervised | None, BaseException | None]]
    ) -> None:
        cfg = self.config
        redispatch: list[_Supervised] = []
        quarantined: list[_Supervised] = []
        crashed_pools = set()
        with self._lock:
            for record, error in crashed:
                if record is None:
                    continue
                if record.pool is not None:
                    crashed_pools.add(id(record.pool))
                if record.future.done():
                    self._records.discard(record)
                    continue
                if record.attempts >= cfg.max_task_retries:
                    quarantined.append(record)
                else:
                    redispatch.append(record)
            pool = self._pool
            must_respawn = pool is None or id(pool) in crashed_pools or (
                hasattr(pool, "is_broken") and pool.is_broken()
            )
            if must_respawn:
                self._pool = None
        for record in quarantined:
            self._m_quarantined.inc()
            last_error = next(
                (e for r, e in reversed(crashed) if r is record and e is not None),
                None,
            )
            logger.error(
                "quarantining poison task %r after %d pool crash(es): %s",
                record.task,
                record.attempts,
                last_error,
            )
            self._resolve(
                record,
                result=TaskFailure(
                    task=record.task,
                    attempts=record.attempts,
                    error=repr(last_error) if last_error is not None else "worker died",
                    kind="crash",
                ),
            )
        with self._cond:
            for record in redispatch:
                self._pending.append(record)
        if redispatch:
            self._m_redispatches.inc(len(redispatch))
            # Exponential per-task backoff before the costliest retry so
            # a crash loop slows down instead of spinning.
            worst = max(r.attempts for r in redispatch)
            delay = cfg.respawn_backoff_s * cfg.respawn_backoff_factor ** max(
                worst - 1, 0
            )
            if delay > 0:
                time.sleep(delay)
        if must_respawn and pool is not None:
            logger.warning(
                "worker pool (payload %s) is broken; respawning %d worker(s)",
                self._payload_type,
                self.max_workers,
            )
            pool.close()
        if must_respawn:
            self._respawn()
        self._drain_pending()

    def _respawn(self) -> None:
        cfg = self.config
        failures = 0
        while True:
            with self._lock:
                if self._closed or self._degraded:
                    return
            start = time.perf_counter()
            try:
                pool = self._pool_factory()
                if hasattr(pool, "warm"):
                    pool.warm(wait=True)
            except Exception as error:
                failures += 1
                logger.error(
                    "pool respawn attempt %d/%d failed: %s",
                    failures,
                    cfg.max_respawn_failures,
                    error,
                )
                if failures >= cfg.max_respawn_failures:
                    self._respawn_exhausted(error)
                    return
                time.sleep(
                    cfg.respawn_backoff_s
                    * cfg.respawn_backoff_factor ** (failures - 1)
                )
                continue
            elapsed = time.perf_counter() - start
            with self._lock:
                if self._closed:
                    stale = pool
                else:
                    stale = None
                    self._pool = pool
            if stale is not None:
                stale.close()
                return
            self._m_respawns.inc()
            self._m_respawn_s.observe(elapsed)
            logger.info(
                "worker pool respawned in %.3fs (payload %s, %d workers)",
                elapsed,
                self._payload_type,
                self.max_workers,
            )
            return

    def _respawn_exhausted(self, error: BaseException) -> None:
        cfg = self.config
        if cfg.degrade_to_thread:
            with self._lock:
                self._degraded = True
            self._m_degraded.inc()
            logger.error(
                "respawn failed %d time(s); degrading to an in-process "
                "thread pool (payload %s)",
                cfg.max_respawn_failures,
                self._payload_type,
            )
            return
        with self._cond:
            stranded = list(self._pending)
            self._pending.clear()
        for record in stranded:
            self._resolve(
                record,
                exception=RespawnExhausted(
                    f"respawning the worker pool failed "
                    f"{cfg.max_respawn_failures} consecutive time(s); "
                    f"last error: {error!r}"
                ),
            )

    def _drain_pending(self) -> None:
        while True:
            with self._cond:
                if not self._pending:
                    return
                if self._pool is None and not self._degraded:
                    return  # respawn exhausted; records already failed or waiting
                record = self._pending.popleft()
            self._dispatch(record)


# ---------------------------------------------------------------------- #
class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    * **closed** — traffic flows; ``failure_threshold`` *consecutive*
      failures trip it open (one success resets the streak).
    * **open** — :meth:`peek_allow`/:meth:`allow` deny for
      ``reset_timeout_s`` seconds.
    * **half-open** — after the timeout, :meth:`allow` admits exactly
      one probe; the probe's success closes the breaker, its failure
      reopens it for another full timeout.

    The serving layer gives each model replica a breaker: tripping open
    triggers the replica's ``close() → start()`` restart and
    :meth:`~repro.serving.workers.ReplicaPool._pick` routes new batches
    around it until the probe succeeds.  Accumulated open time is
    exported as the ``supervision.breaker_open_s`` gauge and trips as
    the ``supervision.breaker_opened`` counter.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        name: str = "",
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        registry = registry if registry is not None else current_telemetry().registry
        self._m_opened = registry.counter("supervision.breaker_opened")
        self._m_open_s = registry.gauge("supervision.breaker_open_s")
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state(self._clock())

    def _effective_state(self, now: float) -> str:
        if self._state == self.OPEN and now - self._opened_at >= self.reset_timeout_s:
            return self.HALF_OPEN
        return self._state

    def peek_allow(self) -> bool:
        """Would a request be admitted now?  Never claims the probe slot."""
        with self._lock:
            state = self._effective_state(self._clock())
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN:
                return not self._probing
            return False

    def allow(self) -> bool:
        """Admit a request; in half-open state this claims the single probe."""
        with self._lock:
            now = self._clock()
            state = self._effective_state(now)
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN:
                if self._probing:
                    return False
                self._state = self.HALF_OPEN
                self._probing = True
                return True
            return False

    def seconds_until_probe(self) -> float:
        """Time until this breaker would admit a half-open probe."""
        with self._lock:
            now = self._clock()
            state = self._effective_state(now)
            if state == self.OPEN:
                return self.reset_timeout_s - (now - self._opened_at)
            return 0.0

    def record_success(self) -> None:
        with self._lock:
            if self._state != self.CLOSED:
                self._account_open_time(self._clock())
                logger.info("circuit breaker %r closed", self.name)
            self._state = self.CLOSED
            self._failures = 0
            self._probing = False
            self._opened_at = None

    def record_failure(self) -> bool:
        """Record one failure; returns ``True`` when this trip *opened* it."""
        with self._lock:
            now = self._clock()
            state = self._effective_state(now)
            self._failures += 1
            if state == self.HALF_OPEN or self._failures >= self.failure_threshold:
                freshly_opened = self._state != self.OPEN or state == self.HALF_OPEN
                if self._opened_at is not None:
                    self._account_open_time(now)
                self._state = self.OPEN
                self._opened_at = now
                self._probing = False
                if freshly_opened:
                    self._m_opened.inc()
                    logger.warning(
                        "circuit breaker %r opened after %d consecutive failure(s)",
                        self.name,
                        self._failures,
                    )
                return freshly_opened
            return False

    def _account_open_time(self, now: float) -> None:
        if self._opened_at is not None:
            self._m_open_s.add(max(now - self._opened_at, 0.0))
            self._opened_at = None
