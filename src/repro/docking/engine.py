"""Batched docking engine: lockstep Monte-Carlo restarts on the pairwise kernel.

Docking is the campaign's dominant compute stage (§4.1: ~10 poses/s/node,
about one minute per compound per core), and the scalar
:class:`~repro.docking.poses.PoseGenerator` spends nearly all of it in
``restarts × monte_carlo_steps`` scalar ``InteractionModel.compute_terms``
calls that rebuild per-atom property arrays from Python ``Atom`` objects
on every step.  This module applies the PR-3 featurization treatment to
docking:

* :class:`BatchedMonteCarloDocker` runs all restart chains in lockstep —
  per MC step it perturbs, scores and Metropolis-accepts every chain at
  once, scoring the stacked ``(restarts, N, 3)`` pose tensor through one
  ``score_batch`` kernel call (``InteractionModel.compute_terms_batch``
  underneath).  Chains draw from the per-restart streams defined by the
  scalar docker, so the batched search is **bit-identical** to the scalar
  golden reference at any batch width.
* :func:`select_pose_indices` replaces the nested ``rmsd()`` clustering
  loops with one pairwise-RMSD matrix (:func:`pairwise_rmsd`).
* :func:`dock_many` docks a batch of ligands into one site on a bounded
  thread pool; per-compound seeds match ``CDT3Docking`` exactly, so
  results are independent of pool width.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.chem.complexes import ProteinLigandComplex
from repro.chem.molecule import Molecule
from repro.chem.protein import BindingSite
from repro.docking.poses import (
    DockedPose,
    PoseGenerator,
    initial_pose_coords,
    molecule_with_coordinates,
    perturbed_coords,
)
from repro.parallel import (
    SupervisedTaskPool,
    TaskFailure,
    isolated_registry,
    validate_backend,
)
from repro.telemetry import current as current_telemetry
from repro.utils.rng import derive_seed

#: Engine names accepted by the ConveyorLC stages and the campaign config.
DOCKING_ENGINES = ("batched", "scalar")


def pairwise_rmsd(coords: np.ndarray) -> np.ndarray:
    """``(M, M)`` heavy-atom RMSD matrix of ``M`` stacked poses ``(M, N, 3)``.

    One broadcast computation replaces the ``M²`` nested
    :func:`repro.docking.poses.rmsd` calls of the scalar clustering loop;
    each entry reduces over the same contiguous per-pair layout as the
    scalar ``Molecule.rmsd_to``, so entries are bit-identical to it.
    """
    coords = np.asarray(coords, dtype=np.float64)
    diff = coords[:, None, :, :] - coords[None, :, :, :]
    return np.sqrt((diff**2).sum(axis=-1).mean(axis=-1))


def rmsd_to_reference(coords: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """``(M,)`` RMSD of stacked poses ``(M, N, 3)`` to one reference pose."""
    diff = np.asarray(coords, dtype=np.float64) - np.asarray(reference, dtype=np.float64)
    return np.sqrt((diff**2).sum(axis=-1).mean(axis=-1))


def select_pose_indices(
    scores: Sequence[float],
    rmsd_matrix: np.ndarray,
    num_poses: int,
    min_separation: float,
) -> list[int]:
    """Greedy diverse-pose selection over a precomputed RMSD matrix.

    Candidates are visited in increasing-score order (stable for ties, so
    chain order breaks them exactly like the scalar ``list.sort``); a
    candidate is kept when it sits at least ``min_separation`` from every
    already-kept pose.  The output depends only on the ordered candidate
    list — not on how many Monte-Carlo chains produced it — which is the
    batch-width invariance the property tests pin down.
    """
    order = sorted(range(len(scores)), key=lambda index: scores[index])
    selected: list[int] = []
    for index in order:
        if len(selected) >= num_poses:
            break
        if all(rmsd_matrix[index, kept] >= min_separation for kept in selected):
            selected.append(index)
    return selected


class BatchedMonteCarloDocker(PoseGenerator):
    """Lockstep batched Monte-Carlo docking, bit-identical to the scalar docker.

    Accepts the same parameters as :class:`PoseGenerator` and produces
    ``np.array_equal`` pose coordinates, scores and RMSDs for any seed.
    The scorer should expose
    ``score_batch(site, ligand, coords, complex_id=...) -> (P,)``
    (``VinaScorer``, ``MMGBSARescorer`` and ``MaximizePkScorer`` all do);
    scorers without it fall back to a per-pose scalar loop that keeps the
    lockstep semantics.
    """

    # ------------------------------------------------------------------ #
    def dock(
        self,
        site: BindingSite,
        ligand: Molecule,
        complex_id: str = "",
        reference: Molecule | None = None,
    ) -> list[DockedPose]:
        # observation only: spans and counters never touch the restart RNG
        # streams, so tracing on/off cannot move a bit of any pose
        telemetry = current_telemetry()
        kernel_calls = self.monte_carlo_steps + 1
        with telemetry.tracer.span("mc-dock") as span:
            span.set("restarts", self.restarts)
            span.set("mc_steps", self.monte_carlo_steps)
            span.set("kernel_calls", kernel_calls)
            scores, coords = self.run_chains(site, ligand, complex_id)
        registry = telemetry.registry
        registry.counter("docking.compounds").inc()
        registry.counter("docking.kernel_calls").inc(kernel_calls)
        registry.counter("docking.poses_scored").inc(kernel_calls * self.restarts)
        rmsd_matrix = pairwise_rmsd(coords)
        selected = select_pose_indices(scores, rmsd_matrix, self.num_poses, self.min_pose_separation)
        if reference is not None:
            reference_rmsds = rmsd_to_reference(coords[selected], reference.coordinates)
        poses: list[DockedPose] = []
        for pose_id, index in enumerate(selected):
            pose = molecule_with_coordinates(ligand, coords[index])
            complex_ = ProteinLigandComplex(site, pose, complex_id=complex_id, pose_id=pose_id)
            pose_rmsd = float(reference_rmsds[pose_id]) if reference is not None else float("nan")
            poses.append(
                DockedPose(
                    complex=complex_,
                    score=float(scores[index]),
                    pose_id=pose_id,
                    rmsd_to_reference=pose_rmsd,
                )
            )
        return poses

    # ------------------------------------------------------------------ #
    def run_chains(
        self, site: BindingSite, ligand: Molecule, complex_id: str = ""
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run all restart chains in lockstep; return the candidate pool.

        Returns ``(scores, coords)`` of the ``2 × restarts`` clustering
        candidates in chain order — each chain contributes its best pose
        followed by its final pose, exactly like the scalar loop.
        """
        kernel = self._batch_scorer(site, ligand, complex_id)
        base_coords = ligand.coordinates
        rngs = [self.restart_rng(restart) for restart in range(self.restarts)]
        coords = np.stack([initial_pose_coords(site, base_coords, rng) for rng in rngs])
        current = kernel(coords)
        best_coords = coords.copy()
        best_scores = current.copy()
        proposals = np.empty_like(coords)
        for step in range(self.monte_carlo_steps):
            for index, rng in enumerate(rngs):
                proposals[index] = perturbed_coords(coords[index], rng, step, self.monte_carlo_steps)
            proposal_scores = kernel(proposals)
            deltas = proposal_scores - current
            # Metropolis acceptance stays per-chain: the uniform draw is
            # conditional on the proposal not improving, so consuming it
            # unconditionally would desynchronize the restart streams.
            for index, rng in enumerate(rngs):
                delta = float(deltas[index])
                if delta < 0 or rng.random() < np.exp(-delta / self.temperature):
                    coords[index] = proposals[index]
                    current[index] = proposal_scores[index]
                    if current[index] < best_scores[index]:
                        best_coords[index] = coords[index]
                        best_scores[index] = current[index]

        candidate_scores = np.empty(2 * self.restarts)
        candidate_coords = np.empty((2 * self.restarts,) + coords.shape[1:])
        for index in range(self.restarts):
            candidate_scores[2 * index] = best_scores[index]
            candidate_coords[2 * index] = best_coords[index]
            candidate_scores[2 * index + 1] = current[index]
            candidate_coords[2 * index + 1] = coords[index]
        return candidate_scores, candidate_coords

    # ------------------------------------------------------------------ #
    def _batch_scorer(
        self, site: BindingSite, ligand: Molecule, complex_id: str
    ) -> Callable[[np.ndarray], np.ndarray]:
        make_kernel = getattr(self.scorer, "make_batch_kernel", None)
        if make_kernel is not None:
            # the kernel binds the (site, ligand) pair constants once for
            # the whole MC search — this is where the batched win lives
            return make_kernel(site, ligand, complex_id=complex_id)
        score_batch = getattr(self.scorer, "score_batch", None)
        if score_batch is not None:
            return lambda coords: np.asarray(
                score_batch(site, ligand, coords, complex_id=complex_id), dtype=np.float64
            )

        def fallback(coords: np.ndarray) -> np.ndarray:
            return np.array(
                [self._score(site, ligand, pose_coords, complex_id) for pose_coords in coords]
            )

        return fallback


def validate_engine(engine: str) -> str:
    """Check ``engine`` against :data:`DOCKING_ENGINES` and return it."""
    if engine not in DOCKING_ENGINES:
        raise ValueError(f"unknown docking engine '{engine}'; expected one of {DOCKING_ENGINES}")
    return engine


def make_docker(engine: str, scorer, **kwargs) -> PoseGenerator:
    """Construct the scalar or batched docker named by ``engine``."""
    cls = BatchedMonteCarloDocker if validate_engine(engine) == "batched" else PoseGenerator
    return cls(scorer, **kwargs)


class _DockManyPayload:
    """Shipped once to every ``dock_many`` worker process.

    Carries the site, scorer and docking parameters; per-task dispatch is
    one ``(compound_id, molecule, reference)`` tuple (molecules here are
    already materialized by the caller — a few KB each — so a descriptor
    protocol would save nothing).  Per-compound seeds are derived inside
    the worker exactly as the thread path derives them, so poses are
    bit-identical across backends and pool widths.
    """

    def __init__(self, site: BindingSite, scorer, seed: int, site_name: str, engine: str, docker_kwargs: dict) -> None:
        self.site = site
        self.scorer = scorer
        self.seed = seed
        self.site_name = site_name
        self.engine = engine
        self.docker_kwargs = docker_kwargs

    def run_task(self, task: tuple[str, Molecule, Molecule | None]) -> tuple[list[DockedPose], dict]:
        compound_id, molecule, reference = task
        with isolated_registry() as registry:
            docker = make_docker(
                self.engine,
                self.scorer,
                seed=derive_seed(self.seed, "dock", self.site_name, compound_id),
                **self.docker_kwargs,
            )
            poses = docker.dock(self.site, molecule, complex_id=compound_id, reference=reference)
        return poses, registry.export_mergeable()


def dock_many(
    site: BindingSite,
    ligands: Sequence[tuple[str, Molecule]],
    *,
    scorer,
    seed: int,
    num_poses: int = 10,
    monte_carlo_steps: int = 60,
    restarts: int = 4,
    temperature: float = 1.2,
    min_pose_separation: float = 0.75,
    site_name: str | None = None,
    references: Mapping[str, Molecule] | None = None,
    engine: str = "batched",
    max_workers: int = 1,
    backend: str = "thread",
) -> dict[str, list[DockedPose]]:
    """Dock many ligands into one site, optionally on a bounded worker pool.

    Parameters
    ----------
    ligands:
        ``(compound_id, molecule)`` pairs; the result maps each
        ``compound_id`` to its docked poses in input order.  Duplicate
        compound ids collapse to the last entry — the same later-wins
        outcome the per-record ``DockingDatabase.add`` has always
        produced (duplicates share a seed, so their poses are identical
        anyway).
    seed:
        Stage-level seed.  Each compound docks under
        ``derive_seed(seed, "dock", site_name, compound_id)`` — the exact
        derivation ``CDT3Docking`` has always used, so results are
        independent of batch composition and worker count.
    references:
        Optional per-compound crystal poses for RMSD bookkeeping.
    max_workers:
        Worker-pool bound; ``1`` docks inline.  Compounds are
        independent, so any pool width produces identical results.
    backend:
        ``"thread"`` pools on a :class:`ThreadPoolExecutor` (GIL-shared);
        ``"process"`` pools on a :class:`~repro.parallel.ProcessTaskPool`
        — the site/scorer payload ships once per worker process, and the
        workers' kernel counters merge back into the active registry.
        Per-compound seeding is identical, so (like ``engine``) the
        backend never changes a pose bit and never enters checkpoint keys.
    """
    validate_backend(backend)
    site_name = site.name if site_name is None else site_name
    references = references or {}
    docker_kwargs = dict(
        num_poses=num_poses,
        monte_carlo_steps=monte_carlo_steps,
        restarts=restarts,
        temperature=temperature,
        min_pose_separation=min_pose_separation,
    )

    def dock_one(compound_id: str, molecule: Molecule) -> list[DockedPose]:
        docker = make_docker(
            engine,
            scorer,
            seed=derive_seed(seed, "dock", site_name, compound_id),
            **docker_kwargs,
        )
        return docker.dock(site, molecule, complex_id=compound_id, reference=references.get(compound_id))

    with current_telemetry().span("dock-many") as span:
        span.set("ligands", len(ligands))
        span.set("max_workers", max_workers)
        span.set("process_backend", float(backend == "process"))
        if backend == "process" and max_workers > 1 and len(ligands) > 1:
            payload = _DockManyPayload(site, scorer, seed, site_name, engine, docker_kwargs)
            registry = current_telemetry().registry
            results: dict[str, list[DockedPose]] = {}
            # Supervised pool: a killed worker respawns and the affected
            # compounds re-dock from their seeds, bit-identically.
            supervised = SupervisedTaskPool(
                payload,
                max_workers=min(max_workers, len(ligands)),
                registry=registry,
            )
            with supervised as pool:
                futures = [
                    (compound_id, pool.submit((compound_id, molecule, references.get(compound_id))))
                    for compound_id, molecule in ligands
                ]
                for compound_id, future in futures:
                    result = future.result()
                    if isinstance(result, TaskFailure):
                        raise result.to_exception()
                    poses, worker_metrics = result
                    registry.absorb(worker_metrics)
                    results[compound_id] = poses
            return results
        if max_workers > 1 and len(ligands) > 1:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [(compound_id, pool.submit(dock_one, compound_id, molecule)) for compound_id, molecule in ligands]
                return {compound_id: future.result() for compound_id, future in futures}
        return {compound_id: dock_one(compound_id, molecule) for compound_id, molecule in ligands}
