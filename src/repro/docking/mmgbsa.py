"""MM/GBSA-style re-scoring.

Molecular Mechanics / Generalized Born Surface Area rescoring combines a
force-field interaction energy with an implicit-solvent desolvation
correction. It is orders of magnitude more expensive than docking (about
10 minutes per pose per CPU core in the paper, ~0.067 poses/s/node) and
is therefore applied only to the best docking poses.  Its accuracy on the
paper's docked core set (Pearson ≈ 0.59) is only marginally better than
Vina's; the reproduction models this by using term weights closer to the
latent interaction model but retaining a significant systematic error.
"""

from __future__ import annotations

from repro.chem.complexes import PK_TO_KCAL, InteractionModel, ProteinLigandComplex
from repro.docking.scoring import KernelScoringMixin

#: §4.1: a single-point MM/GBSA evaluation takes ~10 minutes per pose per core;
#: a Lassen node manages about 0.067 poses per second.
MMGBSA_POSES_PER_SECOND_PER_NODE = 0.067
MMGBSA_SECONDS_PER_POSE_PER_CORE = 600.0


class MMGBSARescorer(KernelScoringMixin):
    """MM/GBSA-like binding free-energy estimate (kcal/mol, negative = better)."""

    name = "mmgbsa"
    error_label = "mmgbsa-error"

    def __init__(self, noise_scale: float = 1.25, seed: int = 13) -> None:
        self.noise_scale = float(noise_scale)
        self.seed = int(seed)
        self._interactions = InteractionModel()
        self._error_cache: dict[tuple[str, int], float] = {}
        # MM term weights: include electrostatics (unlike Vina) and a
        # desolvation penalty proportional to buried polar contacts.
        self.w_vdw = -0.40
        self.w_elec = -0.90
        self.w_hbond = -1.10
        self.w_hydrophobic = -0.35
        self.w_repulsion = 1.20
        self.w_desolvation = 0.55

    # ------------------------------------------------------------------ #
    def score(self, complex_: ProteinLigandComplex) -> float:
        """Estimated binding free energy in kcal/mol."""
        terms = self._interactions.compute_terms(complex_)
        raw = self._weighted_terms(terms)
        raw += self._systematic_error(complex_) * PK_TO_KCAL
        return float(raw)

    def _weighted_terms(self, terms):
        """MM/GBSA weighting of (scalar or batched) interaction terms."""
        desolvation = terms.hbond * 0.4 + (1.0 - terms.buried_fraction) * 2.0
        raw = (
            self.w_vdw * terms.shape
            + self.w_elec * terms.electrostatic
            + self.w_hbond * terms.hbond
            + self.w_hydrophobic * terms.hydrophobic
            + self.w_repulsion * terms.repulsion * 0.4
            + self.w_desolvation * desolvation
        )
        return raw / (1.0 + 0.02 * terms.ligand_heavy_atoms)

    def predicted_pk(self, complex_: ProteinLigandComplex) -> float:
        """Score converted to the pK scale."""
        return float(-self.score(complex_) / PK_TO_KCAL)

    def rescore(self, poses, max_poses: int | None = None) -> list[float]:
        """Re-score :class:`repro.docking.poses.DockedPose` objects (scalar reference)."""
        selected = poses if max_poses is None else poses[: int(max_poses)]
        return [self.score(p.complex) for p in selected]

    def rescore_many(self, poses, max_poses: int | None = None) -> list[float]:
        """Batched :meth:`rescore` on the shared kernel (bit-identical)."""
        selected = poses if max_poses is None else poses[: int(max_poses)]
        return [float(score) for score in self.score_many([p.complex for p in selected])]

    # ------------------------------------------------------------------ #
    @staticmethod
    def cost_seconds(num_poses: int, nodes: int = 1) -> float:
        """Modelled wall-clock cost of rescoring ``num_poses`` poses on ``nodes`` nodes."""
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        return float(num_poses) / (MMGBSA_POSES_PER_SECOND_PER_NODE * nodes)
