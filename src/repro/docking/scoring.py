"""Shared batch-scoring machinery of the physics scorers.

``VinaScorer`` and ``MMGBSARescorer`` differ only in their term weights
(``_weighted_terms``) and the label of their deterministic error stream;
everything batched — the per-(site, ligand) kernel binding, the grouped
``score_many`` path and the memoized systematic-error draws — lives here
once.  Classes mixing this in provide ``_interactions`` (an
:class:`~repro.chem.complexes.InteractionModel`), ``_weighted_terms``,
``noise_scale``, ``seed``, an ``_error_cache`` dict and the
``error_label`` class attribute.  (Distinct from
``repro.models.fusion.BatchScoringMixin``, which batches neural-network
inference — this one batches the physics scorers' pairwise kernel.)
"""

from __future__ import annotations

import numpy as np

from repro.chem.complexes import PK_TO_KCAL, ProteinLigandComplex
from repro.utils.rng import derive_seed


class KernelScoringMixin:
    """Batched scoring over the shared pairwise-interaction kernel."""

    #: label mixed into the deterministic per-complex error stream
    error_label: str

    def make_batch_kernel(self, site, ligand, complex_id: str = "", pose_id: int = 0):
        """Batch-scoring kernel bound to one ``(site, ligand, complex)``.

        The pairwise-interaction constants and the systematic-error draw
        are resolved once; the returned closure scores stacked
        ``(P, num_atoms, 3)`` pose tensors — the Monte-Carlo docker calls
        it once per lockstep step.
        """
        terms_kernel = self._interactions.batch_kernel(site, ligand)
        error = self._systematic_error_for(complex_id, int(pose_id)) * PK_TO_KCAL

        def kernel(coords: np.ndarray) -> np.ndarray:
            return self._weighted_terms(terms_kernel(coords)) + error

        return kernel

    def score_batch(
        self, site, ligand, coords, complex_id: str = "", pose_id: int = 0
    ) -> np.ndarray:
        """Batched :meth:`score` of ``P`` rigid-body poses of one ligand.

        ``coords`` is a stacked ``(P, num_atoms, 3)`` pose tensor; the
        result is bit-identical to ``P`` scalar ``score()`` calls on the
        corresponding complexes (same ``complex_id``/``pose_id``).
        """
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim == 2:
            coords = coords[None, :, :]
        return self.make_batch_kernel(site, ligand, complex_id, pose_id)(coords)

    def score_many(self, complexes) -> np.ndarray:
        """Batched scores through the shared pairwise-interaction kernel.

        Complexes are grouped by (site, ligand size) and scored with one
        broadcast term computation per bounded group chunk; the result is
        bit-identical to calling :meth:`score` per complex, in input
        order.
        """
        complexes = list(complexes)
        out = np.empty(len(complexes))
        for indices, terms in self._interactions.grouped_terms(complexes):
            raw = self._weighted_terms(terms)
            errors = np.array(
                [
                    self._systematic_error_for(complexes[i].complex_id, complexes[i].pose_id)
                    for i in indices
                ]
            )
            out[indices] = raw + errors * PK_TO_KCAL
        return out

    # ------------------------------------------------------------------ #
    def _systematic_error(self, complex_: ProteinLigandComplex) -> float:
        """Deterministic per-complex error term (pK units)."""
        return self._systematic_error_for(complex_.complex_id, complex_.pose_id)

    def _systematic_error_for(self, complex_id: str, pose_id: int) -> float:
        """Memoized error draw — constructing a fresh ``default_rng`` per MC
        scoring call is measurable overhead, and the value only depends on
        ``(complex_id, pose_id)``."""
        cache_key = (complex_id, pose_id)
        cached = self._error_cache.get(cache_key)
        if cached is None:
            key = derive_seed(self.seed, self.error_label, complex_id, pose_id)
            cached = float(np.random.default_rng(key).normal(scale=self.noise_scale))
            self._error_cache[cache_key] = cached
        return cached
