"""Docking pose generation and RMSD utilities.

``PoseGenerator`` performs rigid-body Monte-Carlo search of a ligand
inside a binding site under a scoring function (Vina-style when producing
docking data, the latent interaction model when constructing the
"crystal" poses of the synthetic PDBbind set). ConveyorLC's CDT3Docking
stage keeps up to 10 best poses per compound and site, which is the
default here as well.

Random-stream protocol
----------------------
Each Monte-Carlo restart draws from its own ``numpy`` generator seeded
via ``derive_seed(base_seed, "mc-restart", restart_index)``.  Restart
chains are therefore statistically independent *and* reproducible
regardless of how many chains run, or in what order — which is what lets
:class:`repro.docking.engine.BatchedMonteCarloDocker` run all restarts in
lockstep while staying bit-identical to this scalar reference.  Within a
chain the draw order is fixed: placement rotation, placement jitter,
then per step translation → angle → axis, and a Metropolis uniform drawn
*only* when the proposal did not improve the score.

The geometry of a move lives in the coordinate-level helpers
:func:`initial_pose_coords` and :func:`perturbed_coords`, shared by the
scalar and batched dockers so both paths apply floating-point-identical
rigid transforms; scoring in this scalar reference still flows through
per-pose :class:`~repro.chem.complexes.ProteinLigandComplex` objects and
the scalar ``InteractionModel.compute_terms``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.complexes import ProteinLigandComplex
from repro.chem.conformer import random_rotation_matrix
from repro.chem.molecule import Molecule
from repro.chem.protein import BindingSite
from repro.utils.rng import derive_seed, ensure_rng


def rmsd(pose_a: Molecule, pose_b: Molecule) -> float:
    """Heavy-atom RMSD between two poses of the same molecule (no alignment)."""
    return pose_a.rmsd_to(pose_b)


def molecule_with_coordinates(template: Molecule, coords: np.ndarray) -> Molecule:
    """A copy of ``template`` carrying ``coords`` as its atom positions."""
    out = template.copy()
    out.set_coordinates(coords)
    return out


def initial_pose_coords(site: BindingSite, coords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Coordinates of a random initial placement near the pocket mouth.

    Draw order (rotation, then jitter) is part of the restart stream
    protocol — both dockers rely on it.
    """
    rotation = random_rotation_matrix(rng)
    centered = coords - coords.mean(axis=0)
    rotated = centered @ rotation.T
    depth_offset = np.array([0.0, 0.0, -0.45 * site.family.depth])
    jitter = rng.normal(scale=1.0, size=3)
    return rotated + (site.center + depth_offset + jitter)


def perturbed_coords(
    coords: np.ndarray, rng: np.random.Generator, step: int, total_steps: int
) -> np.ndarray:
    """One annealed rigid-body MC move whose magnitude shrinks with ``step``."""
    cooling = max(0.25, 1.0 - step / max(total_steps, 1))
    translation = rng.normal(scale=0.6 * cooling, size=3)
    angle = rng.normal(scale=0.35 * cooling)
    axis = rng.normal(size=3)
    axis /= np.linalg.norm(axis) + 1e-12
    rotation = _axis_angle_matrix(axis, angle)
    center = coords.mean(axis=0)
    return (coords - center) @ rotation.T + center + translation


def place_ligand_randomly(site: BindingSite, ligand: Molecule, rng=None) -> Molecule:
    """Place the ligand with random orientation near the pocket mouth."""
    rng = ensure_rng(rng)
    return molecule_with_coordinates(ligand, initial_pose_coords(site, ligand.coordinates, rng))


@dataclass
class DockedPose:
    """One docking pose with its scores and geometry."""

    complex: ProteinLigandComplex
    score: float
    pose_id: int
    rmsd_to_reference: float = float("nan")
    metadata: dict = field(default_factory=dict)


class PoseGenerator:
    """Monte-Carlo rigid-body pose search (scalar golden reference).

    Parameters
    ----------
    scorer:
        Object exposing ``score(complex) -> float`` where lower is better
        (kcal/mol-like). Pass an adapter when maximizing pK.
    num_poses:
        Number of distinct poses to retain (10 in ConveyorLC).
    monte_carlo_steps:
        Number of MC perturbation steps per restart.
    restarts:
        Number of independent random restarts (8 MC simulations per
        compound in the paper's Vina configuration).
    temperature:
        Metropolis acceptance temperature in score units.
    min_pose_separation:
        Minimum heavy-atom RMSD between two retained poses.
    seed:
        Base seed of the per-restart streams (module docstring). An
        existing generator (or ``None``) contributes one integer draw
        (or OS entropy) as the base seed.
    """

    def __init__(
        self,
        scorer,
        num_poses: int = 10,
        monte_carlo_steps: int = 60,
        restarts: int = 4,
        temperature: float = 1.2,
        min_pose_separation: float = 0.75,
        seed=None,
    ) -> None:
        if num_poses <= 0:
            raise ValueError("num_poses must be positive")
        if restarts <= 0:
            raise ValueError("restarts must be positive")
        if monte_carlo_steps < 0:
            raise ValueError("monte_carlo_steps must be non-negative")
        self.scorer = scorer
        self.num_poses = int(num_poses)
        self.monte_carlo_steps = int(monte_carlo_steps)
        self.restarts = int(restarts)
        self.temperature = float(temperature)
        self.min_pose_separation = float(min_pose_separation)
        self.base_seed = _normalize_seed(seed)

    # ------------------------------------------------------------------ #
    def restart_rng(self, restart: int) -> np.random.Generator:
        """The independent random stream of one Monte-Carlo restart chain."""
        return np.random.default_rng(derive_seed(self.base_seed, "mc-restart", int(restart)))

    # ------------------------------------------------------------------ #
    def dock(
        self,
        site: BindingSite,
        ligand: Molecule,
        complex_id: str = "",
        reference: Molecule | None = None,
    ) -> list[DockedPose]:
        """Dock ``ligand`` into ``site`` and return up to ``num_poses`` poses.

        Poses are sorted by increasing score (best first). If ``reference``
        is given, each pose's RMSD to it is recorded (the paper filters
        core-set docking poses at RMSD < 1 A of the crystal pose).
        """
        base_coords = ligand.coordinates
        candidates: list[tuple[float, np.ndarray]] = []
        for restart in range(self.restarts):
            rng = self.restart_rng(restart)
            coords = initial_pose_coords(site, base_coords, rng)
            current = self._score(site, ligand, coords, complex_id)
            best_coords, best_score = coords, current
            for step in range(self.monte_carlo_steps):
                proposal = perturbed_coords(coords, rng, step, self.monte_carlo_steps)
                proposal_score = self._score(site, ligand, proposal, complex_id)
                delta = proposal_score - current
                if delta < 0 or rng.random() < np.exp(-delta / self.temperature):
                    coords, current = proposal, proposal_score
                    if current < best_score:
                        best_coords, best_score = coords, current
            candidates.append((best_score, best_coords))
            # keep intermediate snapshots too, so clustering has material
            candidates.append((current, coords))

        candidates.sort(key=lambda item: item[0])
        selected: list[tuple[float, Molecule]] = []
        for score, coords in candidates:
            if len(selected) >= self.num_poses:
                break
            pose = molecule_with_coordinates(ligand, coords)
            if all(rmsd(pose, kept) >= self.min_pose_separation for _, kept in selected):
                selected.append((score, pose))

        poses: list[DockedPose] = []
        for pose_id, (score, pose) in enumerate(selected):
            complex_ = ProteinLigandComplex(site, pose, complex_id=complex_id, pose_id=pose_id)
            pose_rmsd = rmsd(pose, reference) if reference is not None else float("nan")
            poses.append(DockedPose(complex=complex_, score=float(score), pose_id=pose_id, rmsd_to_reference=pose_rmsd))
        return poses

    # ------------------------------------------------------------------ #
    def _score(self, site: BindingSite, ligand: Molecule, coords: np.ndarray, complex_id: str) -> float:
        pose = molecule_with_coordinates(ligand, coords)
        return float(self.scorer.score(ProteinLigandComplex(site, pose, complex_id=complex_id)))


class MaximizePkScorer:
    """Adapter turning a pK-maximizing objective into a minimizable score.

    Used to construct the synthetic "crystal" poses: nature minimizes the
    true binding free energy, i.e. maximizes the latent pK.
    """

    def __init__(self, interaction_model) -> None:
        self.interaction_model = interaction_model

    def score(self, complex_: ProteinLigandComplex) -> float:
        return -self.interaction_model.true_pk(complex_)

    def make_batch_kernel(
        self, site: BindingSite, ligand: Molecule, complex_id: str = "", pose_id: int = 0
    ):
        """Batch-scoring kernel bound to one ``(site, ligand)`` pair."""
        terms_kernel = self.interaction_model.batch_kernel(site, ligand)

        def kernel(coords: np.ndarray) -> np.ndarray:
            return -self.interaction_model.pk_from_terms_batch(terms_kernel(coords))

        return kernel

    def score_batch(
        self, site: BindingSite, ligand: Molecule, coords, complex_id: str = "", pose_id: int = 0
    ) -> np.ndarray:
        """Batched :meth:`score` over stacked pose coordinates ``(P, N, 3)``."""
        return -self.interaction_model.true_pk_batch(site, ligand, coords)


def _normalize_seed(seed) -> int:
    """Normalize ``seed`` into the integer base seed of the restart streams."""
    if seed is None:
        return int(np.random.default_rng().integers(0, 2**63 - 1))
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    return int(seed)


_EYE3 = np.eye(3)


def _axis_angle_matrix(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rotation matrix about ``axis`` by ``angle`` (Rodrigues formula)."""
    x, y, z = axis
    c, s = np.cos(angle), np.sin(angle)
    cross = np.array([[0, -z, y], [z, 0, -x], [-y, x, 0]])
    # axis[:, None] * axis computes the same a_i * a_j products np.outer did
    return _EYE3 * c + s * cross + (1 - c) * (axis[:, None] * axis)
