"""Docking pose generation and RMSD utilities.

``PoseGenerator`` performs rigid-body Monte-Carlo search of a ligand
inside a binding site under a scoring function (Vina-style when producing
docking data, the latent interaction model when constructing the
"crystal" poses of the synthetic PDBbind set). ConveyorLC's CDT3Docking
stage keeps up to 10 best poses per compound and site, which is the
default here as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.complexes import ProteinLigandComplex
from repro.chem.conformer import random_rotation_matrix
from repro.chem.molecule import Molecule
from repro.chem.protein import BindingSite
from repro.utils.rng import ensure_rng


def rmsd(pose_a: Molecule, pose_b: Molecule) -> float:
    """Heavy-atom RMSD between two poses of the same molecule (no alignment)."""
    return pose_a.rmsd_to(pose_b)


def place_ligand_randomly(site: BindingSite, ligand: Molecule, rng=None) -> Molecule:
    """Place the ligand with random orientation near the pocket mouth."""
    rng = ensure_rng(rng)
    centered = ligand.translate(-ligand.centroid())
    rotated = centered.rotate(random_rotation_matrix(rng), center=np.zeros(3))
    depth_offset = np.array([0.0, 0.0, -0.45 * site.family.depth])
    jitter = rng.normal(scale=1.0, size=3)
    return rotated.translate(site.center + depth_offset + jitter)


@dataclass
class DockedPose:
    """One docking pose with its scores and geometry."""

    complex: ProteinLigandComplex
    score: float
    pose_id: int
    rmsd_to_reference: float = float("nan")
    metadata: dict = field(default_factory=dict)


class PoseGenerator:
    """Monte-Carlo rigid-body pose search.

    Parameters
    ----------
    scorer:
        Object exposing ``score(complex) -> float`` where lower is better
        (kcal/mol-like). Pass an adapter when maximizing pK.
    num_poses:
        Number of distinct poses to retain (10 in ConveyorLC).
    monte_carlo_steps:
        Number of MC perturbation steps per restart.
    restarts:
        Number of independent random restarts (8 MC simulations per
        compound in the paper's Vina configuration).
    temperature:
        Metropolis acceptance temperature in score units.
    min_pose_separation:
        Minimum heavy-atom RMSD between two retained poses.
    """

    def __init__(
        self,
        scorer,
        num_poses: int = 10,
        monte_carlo_steps: int = 60,
        restarts: int = 4,
        temperature: float = 1.2,
        min_pose_separation: float = 0.75,
        seed=None,
    ) -> None:
        if num_poses <= 0:
            raise ValueError("num_poses must be positive")
        self.scorer = scorer
        self.num_poses = int(num_poses)
        self.monte_carlo_steps = int(monte_carlo_steps)
        self.restarts = int(restarts)
        self.temperature = float(temperature)
        self.min_pose_separation = float(min_pose_separation)
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #
    def dock(
        self,
        site: BindingSite,
        ligand: Molecule,
        complex_id: str = "",
        reference: Molecule | None = None,
    ) -> list[DockedPose]:
        """Dock ``ligand`` into ``site`` and return up to ``num_poses`` poses.

        Poses are sorted by increasing score (best first). If ``reference``
        is given, each pose's RMSD to it is recorded (the paper filters
        core-set docking poses at RMSD < 1 A of the crystal pose).
        """
        rng = self._rng
        candidates: list[tuple[float, Molecule]] = []
        for _ in range(self.restarts):
            pose = place_ligand_randomly(site, ligand, rng)
            current = self._score(site, pose, complex_id)
            best_pose, best_score = pose, current
            for step in range(self.monte_carlo_steps):
                proposal = self._perturb(pose, rng, step)
                proposal_score = self._score(site, proposal, complex_id)
                delta = proposal_score - current
                if delta < 0 or rng.random() < np.exp(-delta / self.temperature):
                    pose, current = proposal, proposal_score
                    if current < best_score:
                        best_pose, best_score = pose, current
            candidates.append((best_score, best_pose))
            # keep intermediate snapshots too, so clustering has material
            candidates.append((current, pose))

        candidates.sort(key=lambda item: item[0])
        selected: list[tuple[float, Molecule]] = []
        for score, pose in candidates:
            if len(selected) >= self.num_poses:
                break
            if all(rmsd(pose, kept) >= self.min_pose_separation for _, kept in selected):
                selected.append((score, pose))

        poses: list[DockedPose] = []
        for pose_id, (score, pose) in enumerate(selected):
            complex_ = ProteinLigandComplex(site, pose, complex_id=complex_id, pose_id=pose_id)
            pose_rmsd = rmsd(pose, reference) if reference is not None else float("nan")
            poses.append(DockedPose(complex=complex_, score=float(score), pose_id=pose_id, rmsd_to_reference=pose_rmsd))
        return poses

    # ------------------------------------------------------------------ #
    def _score(self, site: BindingSite, pose: Molecule, complex_id: str) -> float:
        return float(self.scorer.score(ProteinLigandComplex(site, pose, complex_id=complex_id)))

    def _perturb(self, pose: Molecule, rng: np.random.Generator, step: int) -> Molecule:
        """Random rigid-body move whose magnitude shrinks as the search progresses."""
        cooling = max(0.25, 1.0 - step / max(self.monte_carlo_steps, 1))
        translation = rng.normal(scale=0.6 * cooling, size=3)
        angle = rng.normal(scale=0.35 * cooling)
        axis = rng.normal(size=3)
        axis /= np.linalg.norm(axis) + 1e-12
        rotation = _axis_angle_matrix(axis, angle)
        return pose.rotate(rotation).translate(translation)


class MaximizePkScorer:
    """Adapter turning a pK-maximizing objective into a minimizable score.

    Used to construct the synthetic "crystal" poses: nature minimizes the
    true binding free energy, i.e. maximizes the latent pK.
    """

    def __init__(self, interaction_model) -> None:
        self.interaction_model = interaction_model

    def score(self, complex_: ProteinLigandComplex) -> float:
        return -self.interaction_model.true_pk(complex_)


def _axis_angle_matrix(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rotation matrix about ``axis`` by ``angle`` (Rodrigues formula)."""
    x, y, z = axis
    c, s = np.cos(angle), np.sin(angle)
    cross = np.array([[0, -z, y], [z, 0, -x], [-y, x, 0]])
    return np.eye(3) * c + s * cross + (1 - c) * np.outer(axis, axis)
