"""ConveyorLC: the four-stage parallel docking / rescoring pipeline.

ConveyorLC (Zhang et al.) is the physics-based screening tool chain the
paper relies on.  Its four programs are reproduced as four pipeline
stages operating on the synthetic chemistry substrate:

* ``CDT1Receptor`` — receptor (binding-site) preparation;
* ``CDT2Ligand``   — ligand preparation (wraps
  :class:`repro.chem.prep.LigandPrepPipeline`);
* ``CDT3Docking``  — Vina-style docking keeping up to 10 poses per
  compound and site;
* ``CDT4Mmgbsa``   — MM/GBSA rescoring of the best docking poses for a
  subset of compounds (MM/GBSA is orders of magnitude more expensive, so
  only a fraction is rescored, exactly as described in §3.1).

The :class:`DockingDatabase` output format (site / compound / pose keyed
records) is what the distributed Fusion scoring jobs mirror when writing
their HDF5-like results, "for interpretation with existing tools".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.chem.molecule import Molecule
from repro.chem.prep import LigandPrepPipeline, PreparedLigand
from repro.chem.protein import BindingSite
from repro.docking.engine import dock_many, validate_engine
from repro.parallel import validate_backend
from repro.docking.mmgbsa import MMGBSARescorer
from repro.docking.vina import VinaScorer
from repro.utils.rng import ensure_rng


# --------------------------------------------------------------------------- #
# Records
# --------------------------------------------------------------------------- #
@dataclass
class ReceptorRecord:
    """A prepared receptor: the binding site plus its docking box."""

    site: BindingSite
    box_center: np.ndarray
    box_size: float

    @property
    def name(self) -> str:
        return self.site.name


@dataclass
class DockingRecord:
    """One docked pose of one compound in one binding site."""

    site_name: str
    compound_id: str
    pose_id: int
    vina_score: float
    pose: Molecule
    mmgbsa_score: float = float("nan")
    fusion_pk: float = float("nan")
    rmsd_to_reference: float = float("nan")
    metadata: dict = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.site_name, self.compound_id, self.pose_id)


class DockingDatabase:
    """In-memory store of docking records, keyed by site and compound."""

    def __init__(self) -> None:
        self._records: dict[tuple[str, str, int], DockingRecord] = {}

    # -- mutation ------------------------------------------------------- #
    def add(self, record: DockingRecord) -> None:
        self._records[record.key] = record

    def extend(self, records: Iterable[DockingRecord]) -> None:
        for record in records:
            self.add(record)

    # -- queries -------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records.values())

    def records(self) -> list[DockingRecord]:
        return list(self._records.values())

    def sites(self) -> list[str]:
        return sorted({k[0] for k in self._records})

    def compounds(self, site_name: str | None = None) -> list[str]:
        return sorted(
            {k[1] for k in self._records if site_name is None or k[0] == site_name}
        )

    def poses(self, site_name: str, compound_id: str) -> list[DockingRecord]:
        out = [
            r
            for (s, c, _p), r in self._records.items()
            if s == site_name and c == compound_id
        ]
        return sorted(out, key=lambda r: r.pose_id)

    def best_pose(self, site_name: str, compound_id: str, by: str = "vina") -> DockingRecord | None:
        """Best pose of a compound under the requested score.

        ``by`` is one of ``"vina"``, ``"mmgbsa"`` (both minimized) or
        ``"fusion"`` (maximized pK), matching the per-compound aggregation
        of §5.2.
        """
        poses = self.poses(site_name, compound_id)
        if not poses:
            return None
        if by == "vina":
            return min(poses, key=lambda r: r.vina_score)
        if by == "mmgbsa":
            scored = [r for r in poses if np.isfinite(r.mmgbsa_score)]
            return min(scored, key=lambda r: r.mmgbsa_score) if scored else None
        if by == "fusion":
            scored = [r for r in poses if np.isfinite(r.fusion_pk)]
            return max(scored, key=lambda r: r.fusion_pk) if scored else None
        raise ValueError(f"unknown score '{by}'")

    def merge(self, other: "DockingDatabase") -> None:
        """Merge another database into this one (later records win)."""
        self._records.update(other._records)


# --------------------------------------------------------------------------- #
# Pipeline stages
# --------------------------------------------------------------------------- #
class CDT1Receptor:
    """Stage 1: receptor preparation (docking box definition, sanity checks)."""

    def run(self, sites: Sequence[BindingSite]) -> dict[str, ReceptorRecord]:
        receptors: dict[str, ReceptorRecord] = {}
        for site in sites:
            if site.num_atoms == 0:
                raise ValueError(f"binding site '{site.name}' has no pocket atoms")
            coords = site.coordinates()
            box_size = float(2.0 * (np.linalg.norm(coords, axis=1).max() + 2.0))
            receptors[site.name] = ReceptorRecord(site=site, box_center=site.center, box_size=box_size)
        return receptors


class CDT2Ligand:
    """Stage 2: ligand preparation."""

    def __init__(self, prep: LigandPrepPipeline | None = None) -> None:
        self.prep = prep or LigandPrepPipeline()

    def run(self, molecules: Sequence[Molecule], library: str = "") -> list[PreparedLigand]:
        return self.prep.process_many(molecules, library=library)


class CDT3Docking:
    """Stage 3: Vina-style docking producing up to ``num_poses`` poses per pair.

    ``engine`` selects the batched lockstep docker (default) or the scalar
    golden reference — the two are bit-identical, so the choice affects
    throughput only; ``max_workers`` bounds the per-site compound pool of
    :func:`repro.docking.engine.dock_many` and ``backend`` picks its
    thread or process execution (also bit-identical; see
    :mod:`repro.parallel`).
    """

    def __init__(
        self,
        scorer: VinaScorer | None = None,
        num_poses: int = 10,
        monte_carlo_steps: int = 40,
        restarts: int = 3,
        seed: int = 0,
        engine: str = "batched",
        max_workers: int = 1,
        backend: str = "thread",
    ) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.scorer = scorer or VinaScorer()
        self.engine = validate_engine(engine)
        self.backend = validate_backend(backend)
        self.num_poses = int(num_poses)
        self.monte_carlo_steps = int(monte_carlo_steps)
        self.restarts = int(restarts)
        self.seed = int(seed)
        self.max_workers = int(max_workers)
        self.modelled_cost_seconds = 0.0

    def run(
        self,
        receptors: dict[str, ReceptorRecord],
        ligands: Sequence[PreparedLigand],
        references: dict[tuple[str, str], Molecule] | None = None,
    ) -> DockingDatabase:
        """Dock every prepared ligand into every receptor."""
        database = DockingDatabase()
        references = references or {}
        for site_name, receptor in sorted(receptors.items()):
            pairs = [(ligand.compound_id, ligand.molecule) for ligand in ligands]
            site_references = {
                compound_id: references[(site_name, compound_id)]
                for compound_id, _ in pairs
                if (site_name, compound_id) in references
            }
            results = dock_many(
                receptor.site,
                pairs,
                scorer=self.scorer,
                seed=self.seed,
                num_poses=self.num_poses,
                monte_carlo_steps=self.monte_carlo_steps,
                restarts=self.restarts,
                site_name=site_name,
                references=site_references,
                engine=self.engine,
                max_workers=self.max_workers,
                backend=self.backend,
            )
            for compound_id, poses in results.items():
                for pose in poses:
                    database.add(
                        DockingRecord(
                            site_name=site_name,
                            compound_id=compound_id,
                            pose_id=pose.pose_id,
                            vina_score=pose.score,
                            pose=pose.complex.ligand,
                            rmsd_to_reference=pose.rmsd_to_reference,
                        )
                    )
                self.modelled_cost_seconds += VinaScorer.cost_seconds(len(poses))
        return database


class CDT4Mmgbsa:
    """Stage 4: MM/GBSA rescoring of the best docking poses.

    Only ``subset_fraction`` of the compounds are rescored (MM/GBSA is
    ~150x slower than docking), and at most ``max_poses`` poses per
    compound, mirroring ConveyorLC's down-selection behaviour.
    """

    def __init__(
        self,
        rescorer: MMGBSARescorer | None = None,
        max_poses: int = 10,
        subset_fraction: float = 1.0,
        seed: int = 0,
        engine: str = "batched",
    ) -> None:
        if not 0.0 < subset_fraction <= 1.0:
            raise ValueError("subset_fraction must be in (0, 1]")
        self.rescorer = rescorer or MMGBSARescorer()
        self.max_poses = int(max_poses)
        self.subset_fraction = float(subset_fraction)
        self.seed = int(seed)
        self.engine = validate_engine(engine)
        self.modelled_cost_seconds = 0.0

    def run(self, database: DockingDatabase, sites: dict[str, BindingSite]) -> DockingDatabase:
        rng = ensure_rng(self.seed)
        for site_name in database.sites():
            compounds = database.compounds(site_name)
            if self.subset_fraction < 1.0:
                keep = max(1, int(round(self.subset_fraction * len(compounds))))
                compounds = list(rng.choice(compounds, size=keep, replace=False))
            site = sites[site_name]
            # one site-level batch through the shared kernel: the rescored
            # poses of every selected compound score in one grouped pass
            records: list[DockingRecord] = []
            for compound_id in compounds:
                poses = database.poses(site_name, compound_id)
                records.extend(sorted(poses, key=lambda r: r.vina_score)[: self.max_poses])
            if not records:
                continue
            complexes = [_record_to_complex(site, record) for record in records]
            score_many = getattr(self.rescorer, "score_many", None)
            if self.engine == "batched" and score_many is not None:
                scores = score_many(complexes)
            else:
                # scalar golden path — also the graceful fallback for
                # custom rescorers that only implement score()
                scores = [self.rescorer.score(complex_) for complex_ in complexes]
            for record, score in zip(records, scores):
                record.mmgbsa_score = float(score)
                self.modelled_cost_seconds += MMGBSARescorer.cost_seconds(1)
        return database


def _record_to_complex(site: BindingSite, record: DockingRecord):
    from repro.chem.complexes import ProteinLigandComplex

    return ProteinLigandComplex(
        site=site, ligand=record.pose, complex_id=record.compound_id, pose_id=record.pose_id
    )


class ConveyorLC:
    """Orchestrates the four stages end to end."""

    def __init__(
        self,
        prep: LigandPrepPipeline | None = None,
        docking: CDT3Docking | None = None,
        mmgbsa: CDT4Mmgbsa | None = None,
    ) -> None:
        self.receptor_stage = CDT1Receptor()
        self.ligand_stage = CDT2Ligand(prep)
        self.docking_stage = docking or CDT3Docking()
        self.mmgbsa_stage = mmgbsa or CDT4Mmgbsa()

    def run(
        self,
        sites: Sequence[BindingSite],
        molecules: Sequence[Molecule],
        library: str = "",
        rescore: bool = True,
    ) -> DockingDatabase:
        """Run receptor prep, ligand prep, docking and (optionally) MM/GBSA rescoring."""
        receptors = self.receptor_stage.run(sites)
        ligands = self.ligand_stage.run(molecules, library=library)
        database = self.docking_stage.run(receptors, ligands)
        if rescore:
            site_map = {name: rec.site for name, rec in receptors.items()}
            self.mmgbsa_stage.run(database, site_map)
        return database

    @property
    def modelled_cost_seconds(self) -> float:
        """Total modelled wall-clock cost of the physics stages."""
        return self.docking_stage.modelled_cost_seconds + self.mmgbsa_stage.modelled_cost_seconds
