"""Physics-based screening substrate (the ConveyorLC tool chain).

Implements the four-stage ConveyorLC pipeline the paper uses for its
physics-based screening and for generating docked poses of the PDBbind
core set: receptor preparation, ligand preparation, Vina-style docking
and MM/GBSA rescoring — plus the AMPL machine-learned MM/GBSA surrogate
used in the retrospective analysis.  All scorers are imperfect estimators
of the latent interaction model in :mod:`repro.chem.complexes`, with
error characteristics and computational costs mirroring the paper.
"""

from repro.docking.vina import VinaScorer
from repro.docking.poses import DockedPose, PoseGenerator, place_ligand_randomly, rmsd
from repro.docking.engine import (
    DOCKING_ENGINES,
    BatchedMonteCarloDocker,
    dock_many,
    make_docker,
    pairwise_rmsd,
    select_pose_indices,
)
from repro.docking.mmgbsa import MMGBSARescorer
from repro.docking.ampl import AMPLSurrogate
from repro.docking.conveyorlc import (
    CDT1Receptor,
    CDT2Ligand,
    CDT3Docking,
    CDT4Mmgbsa,
    ConveyorLC,
    DockingDatabase,
    DockingRecord,
)

__all__ = [
    "VinaScorer",
    "MMGBSARescorer",
    "AMPLSurrogate",
    "DockedPose",
    "PoseGenerator",
    "BatchedMonteCarloDocker",
    "DOCKING_ENGINES",
    "dock_many",
    "make_docker",
    "pairwise_rmsd",
    "select_pose_indices",
    "place_ligand_randomly",
    "rmsd",
    "CDT1Receptor",
    "CDT2Ligand",
    "CDT3Docking",
    "CDT4Mmgbsa",
    "ConveyorLC",
    "DockingDatabase",
    "DockingRecord",
]
