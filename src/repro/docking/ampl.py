"""AMPL MM/GBSA surrogate model.

Because MM/GBSA is too expensive to run on every screened compound, the
paper uses the ATOM Modeling PipeLine (AMPL) surrogate: a machine-learned
model trained per target to predict MM/GBSA scores from molecular
descriptors.  The reproduction implements the surrogate as ridge
regression over the descriptor vector of :mod:`repro.chem.descriptors`,
fitted per target against the MM/GBSA rescorer on a training sample of
docked complexes.
"""

from __future__ import annotations

import numpy as np

from repro.chem.descriptors import DESCRIPTOR_NAMES, descriptor_vector
from repro.chem.molecule import Molecule


class AMPLSurrogate:
    """Per-target ridge-regression surrogate of MM/GBSA scores."""

    def __init__(self, target: str = "", alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("ridge regularization alpha must be positive")
        self.target = target
        self.alpha = float(alpha)
        self.coefficients: np.ndarray | None = None
        self.intercept: float = 0.0
        self._feature_mean: np.ndarray | None = None
        self._feature_std: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self.coefficients is not None

    def fit(self, ligands: list[Molecule], mmgbsa_scores: np.ndarray) -> "AMPLSurrogate":
        """Fit the surrogate on ligands and their (expensive) MM/GBSA scores."""
        if len(ligands) != len(mmgbsa_scores):
            raise ValueError("ligands and scores must have matching lengths")
        if len(ligands) < 3:
            raise ValueError("need at least 3 training examples to fit the surrogate")
        features = np.array([descriptor_vector(mol) for mol in ligands])
        targets = np.asarray(mmgbsa_scores, dtype=np.float64)
        self._feature_mean = features.mean(axis=0)
        self._feature_std = features.std(axis=0) + 1e-9
        normalized = (features - self._feature_mean) / self._feature_std
        n_features = normalized.shape[1]
        gram = normalized.T @ normalized + self.alpha * np.eye(n_features)
        self.coefficients = np.linalg.solve(gram, normalized.T @ (targets - targets.mean()))
        self.intercept = float(targets.mean())
        return self

    def predict(self, ligand: Molecule) -> float:
        """Predicted MM/GBSA score (kcal/mol) for one ligand."""
        return float(self.predict_many([ligand])[0])

    def predict_many(self, ligands: list[Molecule]) -> np.ndarray:
        """Predicted MM/GBSA scores for a list of ligands."""
        if not self.is_fitted:
            raise RuntimeError("AMPLSurrogate.predict called before fit")
        features = np.array([descriptor_vector(mol) for mol in ligands])
        normalized = (features - self._feature_mean) / self._feature_std
        return normalized @ self.coefficients + self.intercept

    # ------------------------------------------------------------------ #
    def feature_importances(self) -> dict[str, float]:
        """Absolute standardized coefficients keyed by descriptor name."""
        if not self.is_fitted:
            raise RuntimeError("AMPLSurrogate.feature_importances called before fit")
        return {name: float(abs(c)) for name, c in zip(DESCRIPTOR_NAMES, self.coefficients)}
