"""AutoDock-Vina-style empirical scoring function.

The real Vina scoring function is a weighted sum of two steric gaussians,
a repulsion term, hydrophobic and hydrogen-bond terms over atom pairs,
divided by a rotatable-bond entropy factor (Trott & Olson 2010).  This
reproduction computes the same functional form over the synthetic
complexes.  Because the weights differ from the latent interaction model
(no electrostatics, different saturation, a known size bias) and a small
deterministic per-complex error is added, Vina predictions correlate with
— but deviate from — ground truth, matching the ~0.58 Pearson correlation
the paper measures on docked PDBbind core poses.
"""

from __future__ import annotations

from repro.chem.complexes import PK_TO_KCAL, InteractionModel, ProteinLigandComplex
from repro.docking.scoring import KernelScoringMixin

#: Throughput reference from §4.1: one Lassen node (40 cores, 4 hardware
#: threads each, 8 MC runs per compound) docks about 10 poses per second.
VINA_POSES_PER_SECOND_PER_NODE = 10.0
#: About one minute per compound per CPU core.
VINA_SECONDS_PER_COMPOUND_PER_CORE = 60.0


class VinaScorer(KernelScoringMixin):
    """Empirical docking score (kcal/mol; more negative is better).

    Parameters
    ----------
    noise_scale:
        Magnitude of the deterministic per-complex scoring error (pK
        units after conversion), representing scoring-function error
        rather than stochastic noise — the same complex always receives
        the same score.
    size_bias:
        Strength of the well-known Vina bias towards larger ligands.
    seed:
        Seed mixed into the deterministic error term.
    """

    name = "vina"
    error_label = "vina-error"

    def __init__(self, noise_scale: float = 1.35, size_bias: float = 0.035, seed: int = 7) -> None:
        self.noise_scale = float(noise_scale)
        self.size_bias = float(size_bias)
        self.seed = int(seed)
        self._interactions = InteractionModel()
        self._error_cache: dict[tuple[str, int], float] = {}
        # Vina-like term weights (relative magnitudes follow the published
        # scoring function; absolute scale tuned to land in kcal/mol range).
        self.w_gauss = -0.045
        self.w_repulsion = 0.85
        self.w_hydrophobic = -0.045
        self.w_hbond = -0.90
        self.w_rotor = 0.12

    # ------------------------------------------------------------------ #
    def score(self, complex_: ProteinLigandComplex) -> float:
        """Docking score in kcal/mol (negative = favourable)."""
        terms = self._interactions.compute_terms(complex_)
        raw = self._weighted_terms(terms)
        raw += self._systematic_error(complex_) * PK_TO_KCAL
        return float(raw)

    def _weighted_terms(self, terms):
        """Vina weighting of (scalar or batched) interaction terms."""
        raw = (
            self.w_gauss * terms.shape * 2.2
            + self.w_repulsion * terms.repulsion * 0.35
            + self.w_hydrophobic * terms.hydrophobic * 2.0
            + self.w_hbond * terms.hbond
        )
        # rotatable-bond entropy denominator, as in Vina
        raw = raw / (1.0 + self.w_rotor * terms.rotatable_bonds)
        # size bias: larger ligands receive systematically better scores
        return raw - self.size_bias * terms.ligand_heavy_atoms

    def predicted_pk(self, complex_: ProteinLigandComplex) -> float:
        """Score converted to the pK scale for comparison with the deep models."""
        return float(-self.score(complex_) / PK_TO_KCAL)

    # ------------------------------------------------------------------ #
    @staticmethod
    def cost_seconds(num_poses: int, nodes: int = 1) -> float:
        """Modelled wall-clock cost of docking ``num_poses`` poses on ``nodes`` nodes."""
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        return float(num_poses) / (VINA_POSES_PER_SECOND_PER_NODE * nodes)
