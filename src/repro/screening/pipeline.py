"""End-to-end SARS-CoV-2 screening campaign.

Chains every stage of the paper's §4-§5 pipeline on the synthetic
substrate: compound-library generation, ligand preparation, Vina docking
and MM/GBSA rescoring (ConveyorLC), distributed Coherent Fusion scoring
jobs, the compound cost function selecting candidates per binding site,
and the simulated experimental assays producing percent-inhibition
values for the retrospective analysis (Figures 5-7 and Table 8).

Execution is delegated to the fault-tolerant stage runtime
(:mod:`repro.runtime`): :class:`ScreeningCampaign` is a thin facade that
drives a :class:`~repro.runtime.CampaignRuntime` without checkpointing,
producing bit-identical results to the historical monolithic pass for a
fixed seed.  Campaigns that need kill/resume semantics, fault-injected
retries or bounded-concurrency site scoring construct the runtime
directly with a checkpoint directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chem.complexes import InteractionModel
from repro.chem.protein import BindingSite
from repro.datasets.assays import CampaignAssayTable
from repro.docking.ampl import AMPLSurrogate
from repro.docking.conveyorlc import DockingDatabase
from repro.featurize.engine import FeaturePipeline
from repro.featurize.pipeline import ComplexFeaturizer
from repro.hpc.h5store import H5Store
from repro.nn.module import Module
from repro.screening.costfunction import CompoundCostFunction, CompoundScore
from repro.screening.job import JobResult
from repro.serving import ServingConfig


@dataclass
class CampaignConfig:
    """Configuration of a (scaled-down) screening campaign."""

    library_counts: dict[str, int] = field(default_factory=lambda: {"emolecules": 24, "enamine": 24})
    sites: dict[str, BindingSite] | None = None
    poses_per_compound: int = 4
    docking_mc_steps: int = 25
    docking_restarts: int = 2
    #: docking/rescoring engine: "batched" (lockstep MC on the pairwise
    #: kernel) or "scalar" (golden reference) — bit-identical results, so
    #: the choice (like ``docking_workers``) never enters checkpoint keys
    docking_engine: str = "batched"
    #: bound on the per-site compound pool of ``dock_many``
    docking_workers: int = 1
    #: execution backend of the campaign's parallel stages: ``"thread"``
    #: (historical default) or ``"process"`` (spawned worker processes,
    #: :mod:`repro.parallel`).  Flows into ``dock_many`` pools and the
    #: streaming engine's shard workers.  Results are bit-identical
    #: either way, so — exactly like ``docking_engine`` and
    #: ``docking_workers`` — the backend never enters checkpoint keys:
    #: retuning it keeps every stage and shard checkpoint warm.
    backend: str = "thread"
    mmgbsa_subset_fraction: float = 1.0
    poses_per_job: int = 200
    nodes_per_job: int = 4
    gpus_per_node: int = 4
    batch_size_per_rank: int = 8
    compounds_tested_per_site: int = 12
    biology_penalty_mean: float = 2.6
    seed: int = 2020
    #: route candidate rescoring through the online ``repro.serving`` service
    #: (micro-batching + replica pool + result cache) instead of batch jobs
    use_serving: bool = False
    serving: ServingConfig = field(default_factory=ServingConfig)
    #: stream the deck through the shard-parallel engine
    #: (:mod:`repro.screening.stream`) instead of materializing every
    #: intermediate stage result.  Bit-identical to the materialized path
    #: when both score fusion with the same batch protocol (see
    #: ``fusion_batch_size`` and docs/streaming.md).
    streaming: bool = False
    #: compounds per streamed shard — a pure throughput/memory knob:
    #: results are bit-identical for every shard size, so (like
    #: ``docking_engine``) it never enters checkpoint keys
    shard_size: int = 64
    #: per-site top-K retained by the streaming engine's exact
    #: bounded-memory selector; ``0`` defaults to
    #: ``compounds_tested_per_site``
    top_k: int = 0
    #: fusion-scoring batch protocol of the streaming path: poses per NN
    #: batch *within* one compound (batches never span compounds, so the
    #: composition — and therefore every ulp — is shard-size- and
    #: worker-invariant); ``0`` scores each compound's poses in one batch.
    #: ``1`` is the protocol shared with a ``batch_size_per_rank=1``
    #: single-rank materialized campaign, which is what makes the two
    #: paths bit-identical end to end.
    fusion_batch_size: int = 0

    def resolved_top_k(self) -> int:
        return self.top_k if self.top_k > 0 else self.compounds_tested_per_site

    def validate_streaming(self) -> None:
        """Reject configurations the streaming path cannot honour exactly."""
        if not self.streaming:
            return
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")
        if self.fusion_batch_size < 0:
            raise ValueError("fusion_batch_size must be non-negative")
        if self.use_serving and self.backend == "process":
            # the streaming engine scores through the serving service's
            # in-process replica pool; a shard worker in another process
            # cannot reach it (see repro.screening.stream)
            raise ValueError("streaming campaigns cannot combine use_serving with backend='process'")
        if self.mmgbsa_subset_fraction != 1.0:
            # the subset draw is a single global RNG choice over every
            # compound — inherently unstreamable without materializing
            # the compound list, and silently changing the subset would
            # break bit-identity with the materialized path
            raise ValueError("streaming campaigns require mmgbsa_subset_fraction == 1.0")


@dataclass
class CampaignResult:
    """Everything the retrospective analysis needs."""

    sites: dict[str, BindingSite]
    database: DockingDatabase
    selections: dict[str, list[CompoundScore]]
    assays: CampaignAssayTable
    job_results: list[JobResult]
    stores: list[H5Store]
    ampl_models: dict[str, AMPLSurrogate]
    structural_pk: dict[str, dict[str, float]]  # site -> compound -> latent pK of best pose
    #: streaming-path extras: per-site exact top-K ranking (by best
    #: fusion pK) and streaming score statistics; ``None`` on the
    #: materialized path
    topk: dict | None = None
    stream_stats: dict | None = None

    def tested_compounds(self, site_name: str) -> list[str]:
        return [score.compound_id for score in self.selections.get(site_name, [])]

    def hit_rate(self, threshold: float = 33.0) -> float:
        return self.assays.hit_rate(threshold)

    def summary(self) -> dict[str, float]:
        return {
            "num_poses_scored": float(len(self.database)),
            "num_sites": float(len(self.selections)),
            "num_tested": float(sum(len(v) for v in self.selections.values())),
            "hit_rate_33pct": self.hit_rate(33.0),
        }


class ScreeningCampaign:
    """Run the full screening campaign with a trained fusion model.

    ``featurizer`` may be the scalar reference
    (:class:`~repro.featurize.pipeline.ComplexFeaturizer`) or the
    vectorized engine (:class:`~repro.featurize.engine.FeaturePipeline`);
    the two produce bit-identical features, so campaign results do not
    depend on the choice — only throughput does.
    """

    def __init__(
        self,
        model: Module,
        featurizer: ComplexFeaturizer | FeaturePipeline,
        config: CampaignConfig | None = None,
        cost_function: CompoundCostFunction | None = None,
        interaction_model: InteractionModel | None = None,
    ) -> None:
        self.model = model
        self.featurizer = featurizer
        self.config = config or CampaignConfig()
        self.cost_function = cost_function or CompoundCostFunction()
        self.interaction_model = interaction_model or InteractionModel()

    # ------------------------------------------------------------------ #
    def run(self, use_threads: bool | None = None) -> CampaignResult:
        """Execute every stage front to back (no checkpointing).

        The fusion-scoring route follows ``config.use_serving``; for
        resumable execution use :class:`repro.runtime.CampaignRuntime`
        with a checkpoint directory instead.
        """
        runtime = self.runtime()
        result = runtime.run(use_threads=use_threads)
        assert result is not None  # no stop_after: the run always completes
        return result

    def runtime(self, runtime_config=None, checkpoints=None):
        """Build the stage runtime this facade drives (see :mod:`repro.runtime`)."""
        # imported lazily: repro.runtime imports this module for the config
        # and result dataclasses
        from repro.runtime.campaign import CampaignRuntime, RuntimeConfig

        if runtime_config is None:
            # The facade preserves the monolith's resource profile: one
            # fusion job at a time (scores are order-independent either
            # way, but concurrent jobs multiply peak memory).
            runtime_config = RuntimeConfig(max_workers=1)
        return CampaignRuntime(
            model=self.model,
            featurizer=self.featurizer,
            campaign=self.config,
            runtime=runtime_config,
            cost_function=self.cost_function,
            interaction_model=self.interaction_model,
            checkpoints=checkpoints,
        )
