"""End-to-end SARS-CoV-2 screening campaign.

Chains every stage of the paper's §4-§5 pipeline on the synthetic
substrate: compound-library generation, ligand preparation, Vina docking
and MM/GBSA rescoring (ConveyorLC), distributed Coherent Fusion scoring
jobs, the compound cost function selecting candidates per binding site,
and the simulated experimental assays producing percent-inhibition
values for the retrospective analysis (Figures 5-7 and Table 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.complexes import InteractionModel, ProteinLigandComplex
from repro.chem.protein import BindingSite, make_sarscov2_targets
from repro.datasets.assays import CampaignAssayTable, make_assay_panel, simulate_campaign_assays
from repro.datasets.libraries import build_screening_deck
from repro.docking.ampl import AMPLSurrogate
from repro.docking.conveyorlc import CDT3Docking, CDT4Mmgbsa, ConveyorLC, DockingDatabase
from repro.featurize.pipeline import ComplexFeaturizer
from repro.hpc.h5store import H5Store
from repro.nn.module import Module
from repro.screening.costfunction import CompoundCostFunction, CompoundScore
from repro.screening.job import FusionScoringJob, JobResult
from repro.screening.output import write_job_output
from repro.screening.partition import partition_poses_into_jobs
from repro.serving import ScoringService, ServingConfig
from repro.utils.rng import derive_seed
from repro.utils.timer import Timer


@dataclass
class CampaignConfig:
    """Configuration of a (scaled-down) screening campaign."""

    library_counts: dict[str, int] = field(default_factory=lambda: {"emolecules": 24, "enamine": 24})
    sites: dict[str, BindingSite] | None = None
    poses_per_compound: int = 4
    docking_mc_steps: int = 25
    docking_restarts: int = 2
    mmgbsa_subset_fraction: float = 1.0
    poses_per_job: int = 200
    nodes_per_job: int = 4
    gpus_per_node: int = 4
    batch_size_per_rank: int = 8
    compounds_tested_per_site: int = 12
    biology_penalty_mean: float = 2.6
    seed: int = 2020
    #: route candidate rescoring through the online ``repro.serving`` service
    #: (micro-batching + replica pool + result cache) instead of batch jobs
    use_serving: bool = False
    serving: ServingConfig = field(default_factory=ServingConfig)


@dataclass
class CampaignResult:
    """Everything the retrospective analysis needs."""

    sites: dict[str, BindingSite]
    database: DockingDatabase
    selections: dict[str, list[CompoundScore]]
    assays: CampaignAssayTable
    job_results: list[JobResult]
    stores: list[H5Store]
    ampl_models: dict[str, AMPLSurrogate]
    structural_pk: dict[str, dict[str, float]]  # site -> compound -> latent pK of best pose

    def tested_compounds(self, site_name: str) -> list[str]:
        return [score.compound_id for score in self.selections.get(site_name, [])]

    def hit_rate(self, threshold: float = 33.0) -> float:
        return self.assays.hit_rate(threshold)

    def summary(self) -> dict[str, float]:
        return {
            "num_poses_scored": float(len(self.database)),
            "num_sites": float(len(self.selections)),
            "num_tested": float(sum(len(v) for v in self.selections.values())),
            "hit_rate_33pct": self.hit_rate(33.0),
        }


class ScreeningCampaign:
    """Run the full screening campaign with a trained fusion model."""

    def __init__(
        self,
        model: Module,
        featurizer: ComplexFeaturizer,
        config: CampaignConfig | None = None,
        cost_function: CompoundCostFunction | None = None,
        interaction_model: InteractionModel | None = None,
    ) -> None:
        self.model = model
        self.featurizer = featurizer
        self.config = config or CampaignConfig()
        self.cost_function = cost_function or CompoundCostFunction()
        self.interaction_model = interaction_model or InteractionModel()

    # ------------------------------------------------------------------ #
    def run(self, use_threads: bool | None = None) -> CampaignResult:
        cfg = self.config
        sites = cfg.sites or make_sarscov2_targets(seed=derive_seed(cfg.seed, "targets"))

        # 1. compound libraries and physics-based pipeline (ConveyorLC)
        deck = build_screening_deck(cfg.library_counts, seed=cfg.seed)
        conveyor = ConveyorLC(
            docking=CDT3Docking(
                num_poses=cfg.poses_per_compound,
                monte_carlo_steps=cfg.docking_mc_steps,
                restarts=cfg.docking_restarts,
                seed=derive_seed(cfg.seed, "docking"),
            ),
            mmgbsa=CDT4Mmgbsa(subset_fraction=cfg.mmgbsa_subset_fraction, seed=derive_seed(cfg.seed, "mmgbsa")),
        )
        database = conveyor.run(list(sites.values()), deck.molecules, library="campaign")

        # 2. Fusion scoring: batch jobs per site, or the online serving path
        job_results: list[JobResult] = []
        stores: list[H5Store] = []
        if cfg.use_serving:
            job_results = self._score_sites_online(database, sites)
            stores = [result.store for result in job_results]
        else:
            for site_name, site in sites.items():
                site_records = [r for r in database.records() if r.site_name == site_name]
                for job_index, job_records in enumerate(partition_poses_into_jobs(site_records, cfg.poses_per_job)):
                    if not job_records:
                        continue
                    job = FusionScoringJob(
                        model=self.model,
                        featurizer=self.featurizer,
                        site=site,
                        records=job_records,
                        num_nodes=cfg.nodes_per_job,
                        gpus_per_node=cfg.gpus_per_node,
                        batch_size_per_rank=cfg.batch_size_per_rank,
                        job_name=f"{site_name}-job{job_index}",
                    )
                    result = job.run(use_threads=use_threads)
                    job_results.append(result)
                    stores.append(result.store)

        # 3. AMPL MM/GBSA surrogates (per target) for the retrospective analysis
        ampl_models = self._fit_ampl_models(database, sites)

        # 4. compound selection per site (the hand-tailored cost function)
        selections: dict[str, list[CompoundScore]] = {}
        for site_name in sites:
            selections[site_name] = self.cost_function.select_top(
                database, site_name, cfg.compounds_tested_per_site
            )

        # 5. experimental follow-up: assay panel on the selected compounds
        structural_pk: dict[str, dict[str, float]] = {}
        tested: dict[str, list[tuple[str, float]]] = {}
        for site_name, scores in selections.items():
            site = sites[site_name]
            structural_pk[site_name] = {}
            tested[site_name] = []
            for score in scores:
                best = database.best_pose(site_name, score.compound_id, by="vina")
                complex_ = ProteinLigandComplex(site, best.pose, complex_id=score.compound_id, pose_id=best.pose_id)
                latent = self.interaction_model.true_pk(complex_)
                structural_pk[site_name][score.compound_id] = latent
                tested[site_name].append((score.compound_id, latent))
        panel = make_assay_panel(
            sites, seed=derive_seed(cfg.seed, "assays"), biology_penalty_mean=cfg.biology_penalty_mean
        )
        assays = simulate_campaign_assays(panel, tested)

        return CampaignResult(
            sites=sites,
            database=database,
            selections=selections,
            assays=assays,
            job_results=job_results,
            stores=stores,
            ampl_models=ampl_models,
            structural_pk=structural_pk,
        )

    # ------------------------------------------------------------------ #
    def _score_sites_online(
        self, database: DockingDatabase, sites: dict[str, BindingSite]
    ) -> list[JobResult]:
        """Rescore every site's poses through one shared ``ScoringService``.

        One service (and therefore one warm result cache) spans all sites,
        so repeated poses — e.g. a campaign re-run after adding compounds —
        cost nothing.  Each site still produces a ``JobResult`` with the
        store layout the retrospective analysis expects.
        """
        cfg = self.config
        job_results: list[JobResult] = []
        with ScoringService(model=self.model, featurizer=self.featurizer, config=cfg.serving) as service:
            for site_name, site in sites.items():
                site_records = [r for r in database.records() if r.site_name == site_name]
                if not site_records:
                    continue
                timer = Timer()
                with timer.section("evaluation"):
                    complexes = [
                        ProteinLigandComplex(
                            site=site, ligand=r.pose, complex_id=r.compound_id, pose_id=r.pose_id
                        )
                        for r in site_records
                    ]
                    responses = service.score_many(complexes)
                store = H5Store()
                with timer.section("output"):
                    write_job_output(
                        store,
                        site_name,
                        [r.complex_id for r in responses],
                        [r.pose_id for r in responses],
                        np.array([r.score for r in responses]),
                        job_name=f"{site_name}-serving",
                        timings=timer.as_dict(),
                    )
                predictions = {(r.complex_id, r.pose_id): r.score for r in responses}
                for record in site_records:
                    record.fusion_pk = predictions[(record.compound_id, record.pose_id)]
                job_results.append(
                    JobResult(
                        job_name=f"{site_name}-serving",
                        site_name=site_name,
                        predictions=predictions,
                        store=store,
                        timings=timer.as_dict(),
                        num_ranks=service.pool.num_replicas,
                    )
                )
        return job_results

    # ------------------------------------------------------------------ #
    def _fit_ampl_models(self, database: DockingDatabase, sites: dict[str, BindingSite]) -> dict[str, AMPLSurrogate]:
        """Fit one AMPL surrogate per site on the MM/GBSA-rescored poses."""
        models: dict[str, AMPLSurrogate] = {}
        for site_name in sites:
            ligands, scores = [], []
            for compound_id in database.compounds(site_name):
                best = database.best_pose(site_name, compound_id, by="mmgbsa")
                if best is None or not np.isfinite(best.mmgbsa_score):
                    continue
                ligands.append(best.pose)
                scores.append(best.mmgbsa_score)
            if len(ligands) >= 3:
                models[site_name] = AMPLSurrogate(target=site_name).fit(ligands, np.array(scores))
        return models
