"""Shard-parallel streaming screening with bounded-memory exact top-K.

The paper's headline capability is screening hundreds of millions of
compounds on HPC; :class:`~repro.screening.pipeline.ScreeningCampaign`
materializes the whole library and every intermediate stage result, so
campaign size is capped by RSS rather than by hardware throughput.  This
module closes that gap: :class:`StreamingScreen` iterates a compound
source (a materialized deck or a lazily-generated
:class:`~repro.datasets.libraries.StreamingLibrary`) in bounded-size
shards, drives each shard through ligand prep → :func:`dock_many` →
MM/GBSA → fusion scoring on a bounded work-stealing worker pool, and
folds results into

* an exact bounded-memory top-K selector per binding site
  (:class:`TopKSelector` — a heap with deterministic
  ``(score desc, compound_id asc)`` tie-breaking, bit-identical to
  full-sort selection), and
* exact streaming per-site score statistics (:class:`StreamingStats` —
  Shewchuk-expansion sums, so mean/std are correctly rounded and
  therefore independent of accumulation order),

so peak memory stays ``O(shard_size + K)`` regardless of library size.

Determinism contract (the golden suite in
``tests/test_streaming_screen.py`` enforces it bit-for-bit):

* every per-compound computation derives its randomness from
  ``(seed, site, compound_id)`` — prep, docking and MM/GBSA are already
  composition-invariant by construction (PR 3-4);
* fusion batches never span compounds: each compound's pose list is
  scored in chunks of ``fusion_batch_size`` poses (``0`` = one batch per
  compound), so NN batch composition — the one ulp-sensitive knob — is a
  function of the compound alone, never of shard boundaries or worker
  scheduling;
* shard results are folded in shard-index order behind a bounded
  reorder window, so the output is independent of which worker finished
  first.

Consequently top-K ids, scores and summary statistics are bit-identical
across any ``shard_size`` and any ``workers`` — which is also why (like
``docking_engine`` in PR 4) those two knobs are deliberately excluded
from checkpoint keys.

Each completed shard can be checkpointed under a content key through
:class:`~repro.runtime.checkpoint.CheckpointStore`; a killed streaming
run resumes at shard granularity without rescoring finished shards.
Fusion scoring optionally routes through the online
:class:`~repro.serving.ScoringService` with backpressure-aware admission
(``score_many(..., admission=True)`` blocks instead of queueing
unboundedly).
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.chem.complexes import ProteinLigandComplex
from repro.chem.molecule import Molecule
from repro.chem.protein import BindingSite
from repro.docking.conveyorlc import CDT1Receptor, CDT2Ligand, CDT3Docking, CDT4Mmgbsa, DockingRecord
from repro.docking.engine import validate_engine
from repro.featurize.engine import FeaturePipeline
from repro.featurize.pipeline import ComplexFeaturizer
from repro.hpc.faults import FaultEvent, FaultInjector, ProcessKillFault
from repro.nn.module import Module
from repro.parallel import (
    SupervisedTaskPool,
    SupervisionConfig,
    TaskFailure,
    isolated_registry,
    validate_backend,
)
from repro.runtime.checkpoint import CheckpointStore, checkpoint_key
from repro.runtime.executor import RetryPolicy
from repro.screening.partition import shard_bounds
from repro.telemetry import Telemetry, activate, build_run_record, stage_entry, worker_occupancy
from repro.telemetry import current as current_telemetry
from repro.telemetry.exact import ExactSum
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed
from repro.utils.timer import Timer

logger = get_logger("repro.screening.stream")


# --------------------------------------------------------------------------- #
# Exact accumulation
# --------------------------------------------------------------------------- #
# ``ExactSum`` (the Shewchuk-expansion exact float sum that makes the
# streaming statistics order-invariant) now lives in
# :mod:`repro.telemetry.exact` — the telemetry layer's mergeable
# histograms need the same order-invariant totals and sit *below* this
# module.  It stays importable from here for the streaming API's users.


@dataclass
class StreamingStats:
    """Exact streaming summary statistics of one score stream.

    ``mean``/``std`` are computed from Shewchuk-exact sums, so every
    derived quantity is a deterministic function of the *set* of added
    values — accumulation order (and therefore shard size and worker
    scheduling) cannot perturb a single bit.  NaN values are counted and
    excluded, matching the top-K selector's NaN policy.
    """

    count: int = 0
    nan_count: int = 0
    minimum: float = math.inf
    maximum: float = -math.inf
    _sum: ExactSum = field(default_factory=ExactSum, repr=False)
    _sum_sq: ExactSum = field(default_factory=ExactSum, repr=False)

    def add(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            self.nan_count += 1
            return
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._sum.add(value)
        self._sum_sq.add(value * value)

    @property
    def total(self) -> float:
        return self._sum.value

    @property
    def mean(self) -> float:
        return self._sum.value / self.count if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Population variance from the exact first and second moments."""
        if not self.count:
            return float("nan")
        total = self._sum.value
        return max((self._sum_sq.value - total * total / self.count) / self.count, 0.0)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance) if self.count else float("nan")

    def as_array(self) -> np.ndarray:
        """Canonical fingerprint array for exact (``np.array_equal``) comparison."""
        return np.array(
            [float(self.count), float(self.nan_count), self.minimum, self.maximum, self.mean, self.std],
            dtype=np.float64,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "nan_count": float(self.nan_count),
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "std": self.std,
        }


# --------------------------------------------------------------------------- #
# Exact bounded-memory top-K
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TopKEntry:
    """One ranked compound: higher ``score`` first, ties by ``compound_id``."""

    compound_id: str
    score: float


class _HeapItem:
    """Min-heap node ordered worst-first under the selector's total order."""

    __slots__ = ("score", "compound_id", "valid")

    def __init__(self, score: float, compound_id: str) -> None:
        self.score = score
        self.compound_id = compound_id
        self.valid = True

    def __lt__(self, other: "_HeapItem") -> bool:
        # "worse" sorts first: lower score, then lexicographically larger id
        if self.score != other.score:
            return self.score < other.score
        return self.compound_id > other.compound_id


class TopKSelector:
    """Exact bounded-memory top-K with deterministic tie-breaking.

    The selection is *bit-identical to full-sort selection*: after any
    stream of ``offer`` calls, :meth:`ranking` equals deduplicating the
    stream to the best score per compound id, sorting by
    ``(score desc, compound_id asc)`` and truncating to ``k`` — for any
    offer order.  (Proof sketch: the kept set is always exactly the
    top-K of the best-per-id prefix; the k-th-best threshold is monotone
    non-decreasing, so a rejected offer can never belong to the final
    top-K.)

    Memory is ``O(k)``: a min-heap of the current members plus a
    member index; replaced entries are lazily invalidated and the heap
    is compacted when it exceeds ``2k``.

    NaN scores are dropped (``nan_policy="drop"``, counted in
    :attr:`nan_dropped`) or rejected (``nan_policy="raise"``); a NaN can
    never enter the selection.  Duplicate compound ids keep their best
    score, so re-offering a compound (e.g. a retried shard) can never
    double-count it.
    """

    def __init__(self, k: int, nan_policy: str = "drop") -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        if nan_policy not in ("drop", "raise"):
            raise ValueError(f"unknown nan_policy '{nan_policy}'")
        self.k = int(k)
        self.nan_policy = nan_policy
        self.offers = 0
        self.nan_dropped = 0
        self._heap: list[_HeapItem] = []
        self._members: dict[str, _HeapItem] = {}

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._members)

    def _better(self, score: float, compound_id: str, item: _HeapItem) -> bool:
        """Is ``(score, compound_id)`` better than ``item`` under the total order?"""
        if score != item.score:
            return score > item.score
        return compound_id < item.compound_id

    def _worst(self) -> _HeapItem:
        heap = self._heap
        while not heap[0].valid:
            heapq.heappop(heap)
        return heap[0]

    def _push(self, score: float, compound_id: str) -> None:
        item = _HeapItem(score, compound_id)
        self._members[compound_id] = item
        heapq.heappush(self._heap, item)
        if len(self._heap) > 2 * self.k + 8:
            self._heap = [entry for entry in self._heap if entry.valid]
            heapq.heapify(self._heap)

    def offer(self, compound_id: str, score: float) -> bool:
        """Offer one ``(compound_id, score)``; returns whether it was kept."""
        self.offers += 1
        score = float(score)
        if math.isnan(score):
            if self.nan_policy == "raise":
                raise ValueError(f"NaN score offered for compound '{compound_id}'")
            self.nan_dropped += 1
            return False
        if self.k == 0:
            return False
        current = self._members.get(compound_id)
        if current is not None:
            if score > current.score:
                current.valid = False
                self._push(score, compound_id)
                return True
            return False
        if len(self._members) < self.k:
            self._push(score, compound_id)
            return True
        worst = self._worst()
        if self._better(score, compound_id, worst):
            worst.valid = False
            del self._members[worst.compound_id]
            self._push(score, compound_id)
            return True
        return False

    # ------------------------------------------------------------------ #
    def threshold(self) -> float:
        """Score of the current k-th member (``-inf`` while not full)."""
        if self.k == 0:
            return math.inf
        if len(self._members) < self.k:
            return -math.inf
        return self._worst().score

    def ranking(self) -> list[TopKEntry]:
        """Members sorted best-first: ``(score desc, compound_id asc)``."""
        ordered = sorted(self._members.values(), key=lambda m: (-m.score, m.compound_id))
        return [TopKEntry(compound_id=m.compound_id, score=m.score) for m in ordered]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, scores)`` arrays of the ranking, for exact comparison."""
        ranking = self.ranking()
        return (
            np.array([entry.compound_id for entry in ranking], dtype="U"),
            np.array([entry.score for entry in ranking], dtype=np.float64),
        )


def topk_by_full_sort(offers: Sequence[tuple[str, float]], k: int) -> list[TopKEntry]:
    """Reference full-sort selection the bounded selector must match bit-for-bit.

    Dedupe to the best score per compound id (NaN dropped), sort by
    ``(score desc, compound_id asc)``, truncate to ``k``.
    """
    best: dict[str, float] = {}
    for compound_id, score in offers:
        score = float(score)
        if math.isnan(score):
            continue
        if compound_id not in best or score > best[compound_id]:
            best[compound_id] = score
    ordered = sorted(best.items(), key=lambda item: (-item[1], item[0]))
    return [TopKEntry(compound_id=cid, score=score) for cid, score in ordered[: int(k)]]


# --------------------------------------------------------------------------- #
# Stream configuration and results
# --------------------------------------------------------------------------- #
class StreamShardError(RuntimeError):
    """A shard exhausted its retry budget (or its body raised).

    When raised out of :meth:`StreamingScreen.run`, the engine attaches
    the progress it managed to persist before propagating —
    ``shards_executed`` / ``shards_restored`` / ``num_shards`` — so a
    caller (e.g. the campaign runtime's stage report) can record how far
    the stream got and what a resumed run will skip.
    """

    def __init__(self, shard_index: int, cause: BaseException | FaultEvent, attempts: int) -> None:
        super().__init__(f"shard {shard_index} failed after {attempts} attempts: {cause}")
        self.shard_index = shard_index
        self.cause = cause
        self.attempts = attempts
        self.shards_executed = 0
        self.shards_restored = 0
        self.num_shards = 0
        #: fold-level accounting at the moment of failure (covers every
        #: folded shard plus the failing one) — the runtime copies these
        #: into the kept StageReport so the streamed stage's fault
        #: history is observable even when it dies
        self.total_attempts = 0
        self.total_retries = 0
        self.faults: list[str] = []


@dataclass
class StreamConfig:
    """Execution policy of one streaming screen.

    ``shard_size`` and ``workers`` are pure throughput knobs: results
    are bit-identical across both (see the module docstring), which is
    why they never enter checkpoint keys.  ``fusion_batch_size`` *does*
    shape NN batch composition (within each compound's pose list) and is
    therefore part of the content key; ``0`` scores each compound's
    poses as a single batch.
    """

    shard_size: int = 64
    workers: int = 1
    #: worker execution backend: ``"thread"`` runs shard bodies on the
    #: work-stealing thread pool (the historical default); ``"process"``
    #: keeps the same threads as dispatchers but executes each shard body
    #: in a spawned worker process (:mod:`repro.parallel`), breaking the
    #: GIL.  Like ``shard_size``/``workers``/``docking_engine`` this is a
    #: pure throughput knob — results are bit-identical (golden suite),
    #: so it never enters checkpoint/shard keys.
    backend: str = "thread"
    top_k: int = 50
    fusion_batch_size: int = 0
    poses_per_compound: int = 4
    docking_mc_steps: int = 25
    docking_restarts: int = 2
    docking_engine: str = "batched"
    mmgbsa: bool = True
    mmgbsa_max_poses: int = 10
    seed: int = 2020
    library_name: str = "campaign"
    nan_policy: str = "drop"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: crash budget per shard under ``backend="process"``: a shard whose
    #: worker process dies (SIGKILL, OOM) is re-dispatched into a
    #: respawned pool up to this many total attempts before it is
    #: quarantined and handled as a failed shard (``on_shard_failure``).
    #: Distinct from ``retry``, which governs *exceptions* in the shard
    #: body; like ``retry`` it never enters shard keys.
    max_task_retries: int = 3
    #: optional per-shard wall-clock deadline under ``backend="process"``;
    #: an overdue shard fails with ``TimeoutError`` (flowing into the
    #: ``retry`` policy) without tearing down healthy workers
    shard_deadline_s: float | None = None
    #: escape hatch: when respawning crashed worker processes itself
    #: keeps failing, finish remaining shards on in-process threads
    #: instead of failing the stream (results are unchanged — shard
    #: bodies are pure functions of the shard descriptor)
    degrade_to_thread: bool = False
    #: ``"raise"`` stops the stream on retry exhaustion (completed shards
    #: keep their checkpoints); ``"skip"`` records the shard as failed
    #: and continues — the accounting invariant
    #: ``submitted == completed + failed`` holds either way
    on_shard_failure: str = "raise"
    #: reorder-window factor: at most ``reorder_window_factor * workers``
    #: shards may be completed-but-unfolded, bounding buffered memory
    reorder_window_factor: int = 2

    def __post_init__(self) -> None:
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")
        if self.fusion_batch_size < 0:
            raise ValueError("fusion_batch_size must be non-negative (0 = per-compound)")
        if self.on_shard_failure not in ("raise", "skip"):
            raise ValueError(f"unknown on_shard_failure policy '{self.on_shard_failure}'")
        if self.max_task_retries < 1:
            raise ValueError("max_task_retries must be >= 1")
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive when set")
        validate_engine(self.docking_engine)
        validate_backend(self.backend)


@dataclass
class ShardOutcome:
    """What one shard produced (or why it did not)."""

    index: int
    start: int
    stop: int
    status: str  # "executed" | "restored" | "failed"
    #: per-site ``[(compound_id, best_fusion_pk)]`` in shard compound order
    best_scores: dict[str, list[tuple[str, float]]] = field(default_factory=dict)
    #: per-site docked/rescored/scored records (shard-local)
    records: list[DockingRecord] = field(default_factory=list)
    num_compounds: int = 0
    attempts: int = 1
    faults: list[str] = field(default_factory=list)
    error: str = ""
    #: content key computed by the worker (checkpointed runs only), so
    #: the fold thread never re-materializes the shard to re-derive it
    checkpoint_key: str = ""


@dataclass
class StreamingScreenResult:
    """Folded output of one streaming screen."""

    top_k: dict[str, list[TopKEntry]]
    stats: dict[str, StreamingStats]
    num_compounds: int
    num_shards: int
    shards_executed: int
    shards_restored: int
    shards_failed: int
    failed_shards: list[int]
    steals: int
    total_attempts: int
    total_retries: int
    faults: list[str]
    duration_s: float
    #: True when the run stopped early (``stop_after_shards``)
    aborted: bool = False
    #: per-site ``(compound_id, pose_id) -> fusion_pk`` — only populated
    #: with ``collect_predictions=True`` (campaign integration); the pure
    #: streaming path keeps memory bounded by not retaining per-pose data
    predictions: dict[str, dict[tuple[str, int], float]] | None = None
    #: shard-local records merged in shard order — only with
    #: ``collect_records=True`` (campaign integration)
    records: list[DockingRecord] | None = None

    @property
    def shards_submitted(self) -> int:
        """Shards handed to the pool: completed (executed + restored) + failed."""
        return self.shards_executed + self.shards_restored + self.shards_failed

    def topk_arrays(self, site_name: str) -> tuple[np.ndarray, np.ndarray]:
        entries = self.top_k[site_name]
        return (
            np.array([e.compound_id for e in entries], dtype="U"),
            np.array([e.score for e in entries], dtype=np.float64),
        )

    def summary(self) -> dict[str, float]:
        return {
            "num_compounds": float(self.num_compounds),
            "num_shards": float(self.num_shards),
            "shards_executed": float(self.shards_executed),
            "shards_restored": float(self.shards_restored),
            "shards_failed": float(self.shards_failed),
            "steals": float(self.steals),
            "total_retries": float(self.total_retries),
            "duration_s": self.duration_s,
        }


# --------------------------------------------------------------------------- #
# Work-stealing scheduler
# --------------------------------------------------------------------------- #
class _WorkStealingQueues:
    """Per-worker shard deques with frontier-first stealing.

    Shards are dealt round-robin; a worker drains its own deque from the
    front and, when empty, steals from the longest other deque — so a
    worker stuck on an expensive shard sheds its queued work to idle
    peers.
    """

    def __init__(self, num_items: int, workers: int) -> None:
        self._deques: list[deque[int]] = [deque() for _ in range(workers)]
        for index in range(num_items):
            self._deques[index % workers].append(index)
        self._lock = threading.Lock()
        self.steals = 0

    def next_for(self, worker: int) -> int | None:
        with self._lock:
            own = self._deques[worker]
            if own:
                return own.popleft()
            victim = max(range(len(self._deques)), key=lambda v: len(self._deques[v]))
            if self._deques[victim]:
                self.steals += 1
                # steal the victim's *lowest* shard (its front), not the
                # classic back: the reorder-window admission gate favours
                # indices near the fold frontier, so a back-steal is the
                # shard most likely to park the thief while admissible
                # work sits queued behind the slow victim
                return self._deques[victim].popleft()
            return None


# --------------------------------------------------------------------------- #
# Process-backend shard payload
# --------------------------------------------------------------------------- #
class _ShardWorkerPayload:
    """Shipped once to every spawned shard worker (``backend="process"``).

    Carries the engine (with coordinator-only state stripped — see
    :meth:`StreamingScreen.__getstate__`) and the compound source, so
    per-shard dispatch is a bare ``(index, start, stop)`` descriptor:
    molecules are regenerated *inside* the worker via the source's pure
    per-index protocol (``generate_range`` for a
    :class:`~repro.datasets.libraries.StreamingLibrary`), never pickled
    per task.  Each task runs under an isolated telemetry registry whose
    mergeable export travels back with the outcome, so the coordinator's
    metrics (docking kernel counters, cache ledgers, histograms) match
    the thread backend's exactly.
    """

    def __init__(self, engine: "StreamingScreen", source: Any) -> None:
        self.engine = engine
        self.source = source

    def run_task(self, task: tuple[int, int, int]) -> tuple[ShardOutcome, dict]:
        index, start, stop = task
        with isolated_registry() as registry:
            outcome = self.engine._execute_shard(index, start, stop, self.source)
        return outcome, registry.export_mergeable()


# --------------------------------------------------------------------------- #
# The streaming engine
# --------------------------------------------------------------------------- #
class StreamingScreen:
    """Shard-parallel streaming screen over a compound source.

    Parameters
    ----------
    model:
        Trained fusion model (``predict_batch``-capable, like the zoo in
        :mod:`repro.models.fusion`).  Ignored when ``score_fn`` routes
        scoring elsewhere (e.g. through a :class:`ScoringService`).
    featurizer:
        Shared featurizer; the vectorized engine's content-addressed
        cache makes repeated poses free.
    sites:
        Binding sites to screen against (processed in sorted-name order,
        exactly like :class:`~repro.docking.conveyorlc.CDT3Docking`).
    config:
        See :class:`StreamConfig`.
    service:
        Optional online :class:`~repro.serving.ScoringService`; fusion
        scoring then routes through ``score_many(..., admission=True)``
        — deterministic per-compound batches with backpressure-aware
        admission (the call blocks while the service is at capacity
        instead of queueing unboundedly).
    checkpoints / checkpoint_salt:
        Optional :class:`~repro.runtime.checkpoint.CheckpointStore`;
        every folded shard is persisted under a content key mixing
        ``checkpoint_salt`` (the configuration digest) with the shard's
        compound ids, so a killed run resumes at shard granularity and a
        changed configuration can never restore stale shards.
    fault_injector:
        Optional fault source; each shard attempt passes through one
        draw exactly like the runtime's :class:`JobRunner` jobs.
    process_killer:
        Optional :class:`~repro.hpc.faults.ProcessKillFault` for chaos
        testing the process backend: unlike the coordinator-side
        ``fault_injector`` it *ships with the worker payload* and
        SIGKILLs the worker process executing a named shard, exercising
        the real crash → respawn → re-dispatch supervision path.  Inert
        on the thread backend (the kill only fires inside a pool
        worker), so one engine config is safe on both backends.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle.  When given,
        it is *activated* for the duration of :meth:`run`, so spans from
        nested components (docking kernels, featurization, the serving
        path) land on the same tracer; when omitted, the process-wide
        active bundle is used (the zero-overhead null default unless an
        orchestrator activated one).  Telemetry is observation-only: it
        is deliberately not part of :class:`StreamConfig` and never
        enters shard checkpoint keys, and the golden suite pins the
        results bit-identical with it on or off.
    """

    def __init__(
        self,
        model: Module | None,
        featurizer: ComplexFeaturizer | FeaturePipeline,
        sites: Mapping[str, BindingSite],
        config: StreamConfig | None = None,
        *,
        service: Any = None,
        checkpoints: CheckpointStore | None = None,
        checkpoint_salt: str = "",
        fault_injector: FaultInjector | None = None,
        process_killer: ProcessKillFault | None = None,
        prep_factory: Callable[[], CDT2Ligand] | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if model is None and service is None:
            raise ValueError("provide a model, a service, or both")
        config = config or StreamConfig()
        if service is not None and config.backend == "process":
            raise ValueError(
                "backend='process' cannot score through a ScoringService: worker "
                "processes cannot reach the coordinator's service threads — use "
                "backend='thread' with a service, or drop the service and let each "
                "worker process score with its own model copy"
            )
        self.model = model
        self.featurizer = featurizer
        self.sites = dict(sorted(sites.items()))
        self.config = config
        self.service = service
        self.checkpoints = checkpoints
        self.checkpoint_salt = str(checkpoint_salt)
        self.faults = fault_injector or FaultInjector(enabled=False)
        # Travels in the worker payload (not coordinator-only): the kill
        # must fire inside the worker process it targets.
        self.process_killer = process_killer
        self.prep_factory = prep_factory or CDT2Ligand
        self.telemetry = telemetry
        self._last_run: dict | None = None
        self._shard_pool: SupervisedTaskPool | None = None
        self.receptors = CDT1Receptor().run(list(self.sites.values()))
        self._site_map = {name: receptor.site for name, receptor in self.receptors.items()}

    # ------------------------------------------------------------------ #
    # pickling (process backend): the engine travels to shard workers
    # once, inside the pool payload.  Coordinator-only state — the
    # serving route, checkpoint store, fault injector, telemetry bundle
    # and the pool itself — stays behind: checkpoint restore, retries and
    # fault draws run in the coordinator's dispatcher threads either way,
    # which is exactly what keeps the two backends bit-identical.
    # ------------------------------------------------------------------ #
    _COORDINATOR_ONLY = ("service", "checkpoints", "faults", "telemetry", "_last_run", "_shard_pool")

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for name in self._COORDINATOR_ONLY:
            state[name] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.faults = FaultInjector(enabled=False)

    # ------------------------------------------------------------------ #
    # source access
    # ------------------------------------------------------------------ #
    @staticmethod
    def _source_len(source: Any) -> int:
        return len(source)

    @staticmethod
    def _source_slice(source: Any, start: int, stop: int) -> list[Molecule]:
        """Materialize one shard of molecules from a deck, list or lazy library."""
        generate_range = getattr(source, "generate_range", None)
        if generate_range is not None:
            return generate_range(start, stop)
        molecules = getattr(source, "molecules", source)
        return list(molecules[start:stop])

    # ------------------------------------------------------------------ #
    # shard keys
    # ------------------------------------------------------------------ #
    def shard_name(self, index: int) -> str:
        return f"stream-shard-{index:06d}"

    def shard_key(self, index: int, compound_ids: Sequence[str]) -> str:
        """Content key of one shard: caller salt + shard content + every
        :class:`StreamConfig` knob that shapes shard payloads.

        The config ingredients live in the key itself (not only in the
        caller-provided salt) so a direct user of the checkpointing API
        can never restore shards scored under a different seed, docking
        budget or fusion batch protocol.  The invariance knobs —
        ``shard_size``, ``workers``, ``top_k``, ``docking_engine``,
        ``nan_policy`` — are deliberately absent: they cannot move a bit
        of any shard payload (module docstring), so retuning them keeps
        checkpoints warm.  Model and featurizer identity are the
        caller's to digest into ``checkpoint_salt`` (the campaign
        runtime mixes both via its stage ingredients).
        """
        cfg = self.config
        return checkpoint_key(
            self.shard_name(index),
            {
                "salt": self.checkpoint_salt,
                "compounds": tuple(compound_ids),
                "sites": tuple(self.sites),
                "seed": cfg.seed,
                "library": cfg.library_name,
                "poses_per_compound": cfg.poses_per_compound,
                "docking_mc_steps": cfg.docking_mc_steps,
                "docking_restarts": cfg.docking_restarts,
                "fusion_batch_size": cfg.fusion_batch_size,
                "mmgbsa": (cfg.mmgbsa, cfg.mmgbsa_max_poses),
            },
        )

    # ------------------------------------------------------------------ #
    # per-shard pipeline
    # ------------------------------------------------------------------ #
    def _score_poses(self, site: BindingSite, poses: list[DockingRecord]) -> None:
        """Fusion-score one compound's pose list in composition-stable batches."""
        complexes = [
            ProteinLigandComplex(site=site, ligand=r.pose, complex_id=r.compound_id, pose_id=r.pose_id)
            for r in poses
        ]
        chunk = self.config.fusion_batch_size or len(complexes)
        if self.service is not None:
            for begin in range(0, len(complexes), chunk):
                batch = complexes[begin : begin + chunk]
                responses = self.service.score_many(batch, admission=True)
                for record, response in zip(poses[begin : begin + chunk], responses):
                    record.fusion_pk = float(response.score)
            return
        samples = self.featurizer.featurize_many(complexes)
        for begin in range(0, len(samples), chunk):
            scores = self.model.predict_batch(samples[begin : begin + chunk])
            for record, score in zip(poses[begin : begin + chunk], scores):
                record.fusion_pk = float(score)

    def _execute_shard(self, index: int, start: int, stop: int, source: Any) -> ShardOutcome:
        cfg = self.config
        if self.process_killer is not None:
            # chaos hook: SIGKILL this worker if the fault targets this
            # shard on this attempt (inert outside pool workers)
            self.process_killer.check(self.shard_name(index))
        molecules = self._source_slice(source, start, stop)
        prepared = self.prep_factory().run(molecules, library=cfg.library_name)
        docking = CDT3Docking(
            num_poses=cfg.poses_per_compound,
            monte_carlo_steps=cfg.docking_mc_steps,
            restarts=cfg.docking_restarts,
            seed=derive_seed(cfg.seed, "docking"),
            engine=cfg.docking_engine,
        )
        database = docking.run(self.receptors, prepared)
        if cfg.mmgbsa:
            CDT4Mmgbsa(
                max_poses=cfg.mmgbsa_max_poses,
                seed=derive_seed(cfg.seed, "mmgbsa"),
                engine=cfg.docking_engine,
            ).run(database, self._site_map)

        best_scores: dict[str, list[tuple[str, float]]] = {name: [] for name in self.sites}
        records: list[DockingRecord] = []
        for site_name, site in self.sites.items():
            for prep in prepared:
                poses = database.poses(site_name, prep.compound_id)
                if not poses:
                    continue
                self._score_poses(site, poses)
                best = max(r.fusion_pk for r in poses)
                best_scores[site_name].append((prep.compound_id, best))
                records.extend(poses)
        return ShardOutcome(
            index=index,
            start=start,
            stop=stop,
            status="executed",
            best_scores=best_scores,
            records=records,
            num_compounds=len(molecules),
        )

    def _dispatch_shard(self, index: int, start: int, stop: int, source: Any) -> ShardOutcome:
        """Run one shard attempt on the configured backend.

        Thread backend: execute inline on the calling worker thread.
        Process backend: submit the ``(index, start, stop)`` descriptor to
        the shard pool, then fold the worker process's exported metrics
        into the active registry — exact counter adds and histogram
        merges, so telemetry is backend-invariant too.  Exceptions raised
        in the worker process surface here exactly like inline ones and
        flow into :meth:`_run_shard`'s failure handling.
        """
        pool = self._shard_pool
        if pool is None:
            return self._execute_shard(index, start, stop, source)
        result = pool.run((index, start, stop))
        if isinstance(result, TaskFailure):
            # Quarantined poison shard: escalate into the ordinary
            # shard-failure flow (retry budget, then on_shard_failure).
            raise result.to_exception()
        outcome, worker_metrics = result
        current_telemetry().registry.absorb(worker_metrics)
        return outcome

    def _shard_compound_ids(self, source: Any, start: int, stop: int) -> tuple[str, ...]:
        """Compound ids of one shard, without materializing molecules when
        the source can name compounds by index (``StreamingLibrary``)."""
        compound_name = getattr(source, "compound_name", None)
        if compound_name is not None:
            return tuple(compound_name(index) for index in range(start, stop))
        return tuple(m.name for m in self._source_slice(source, start, stop))

    def _run_shard(self, index: int, start: int, stop: int, source: Any) -> ShardOutcome:
        """One shard with restore-from-checkpoint and fault-injected retries."""
        cfg = self.config
        key = ""
        if self.checkpoints is not None:
            key = self.shard_key(index, self._shard_compound_ids(source, start, stop))
            payload = self.checkpoints.load(self.shard_name(index), key)
            if payload is not None:
                return ShardOutcome(
                    index=index,
                    start=start,
                    stop=stop,
                    status="restored",
                    best_scores=payload["best_scores"],
                    records=payload["records"],
                    num_compounds=payload["num_compounds"],
                    attempts=0,
                    checkpoint_key=key,
                )
        attempt = 0
        faults: list[str] = []
        while True:
            attempt += 1
            fault = self.faults.check(self.shard_name(index), 1, attempt=attempt)
            if fault is None:
                try:
                    outcome = self._dispatch_shard(index, start, stop, source)
                except Exception as error:
                    outcome = ShardOutcome(
                        index=index, start=start, stop=stop, status="failed",
                        attempts=attempt, faults=faults, error=str(error),
                    )
                outcome.attempts = attempt
                outcome.faults = faults
                outcome.checkpoint_key = key
                return outcome
            faults.append(str(fault))
            if attempt > cfg.retry.max_retries:
                return ShardOutcome(
                    index=index, start=start, stop=stop, status="failed",
                    attempts=attempt, faults=faults, error=str(fault),
                )
            delay = cfg.retry.backoff_for(attempt)
            logger.info("fault %s; retrying shard %d (attempt %d)", fault.mode, index, attempt + 1)
            if delay > 0:
                time.sleep(delay)

    # ------------------------------------------------------------------ #
    # the streaming run
    # ------------------------------------------------------------------ #
    def run(
        self,
        source: Any,
        *,
        stop_after_shards: int | None = None,
        collect_predictions: bool = False,
        collect_records: bool = False,
    ) -> StreamingScreenResult:
        """Stream ``source`` through the pipeline and fold the results.

        Parameters
        ----------
        source:
            A materialized molecule sequence, a
            :class:`~repro.datasets.libraries.ScreeningDeck`, or a lazy
            :class:`~repro.datasets.libraries.StreamingLibrary`.
        stop_after_shards:
            Fold (and checkpoint) only the first N shards, then stop —
            simulating a killed run; the returned result is marked
            ``aborted``.  A later :meth:`run` with a checkpoint store
            resumes without rescoring those shards.
        collect_predictions / collect_records:
            Retain per-pose predictions / docking records in the result.
            This trades the bounded-memory guarantee for campaign
            integration, where downstream stages (cost function, assays)
            need the materialized database — only sensible for
            seed-sized decks.
        """
        cfg = self.config
        telemetry = self.telemetry if self.telemetry is not None else current_telemetry()
        scope = activate(self.telemetry) if self.telemetry is not None else nullcontext()
        tracer = telemetry.tracer
        registry = telemetry.registry
        shard_seconds = registry.histogram("stream.shard_s", min_value=1e-6, max_value=1e5, growth=1.05)
        count_executed = registry.counter("stream.shards_executed")
        count_restored = registry.counter("stream.shards_restored")
        count_failed = registry.counter("stream.shards_failed")
        count_retries = registry.counter("stream.shard_retries")
        count_compounds = registry.counter("stream.compounds")
        timer = Timer(tracer=tracer, stage="streamed_screen")
        started = time.perf_counter()
        scope.__enter__()
        run_span = tracer.span("streaming-screen", stage="streamed_screen")
        run_span.__enter__()
        startup_section = timer.section("startup")
        startup_section.__enter__()
        total = self._source_len(source)
        bounds = shard_bounds(total, cfg.shard_size)
        limit = len(bounds) if stop_after_shards is None else min(max(int(stop_after_shards), 0), len(bounds))
        run_span.set("num_shards", limit)

        if cfg.backend == "process" and limit > 0:
            # one payload (stripped engine + source) shipped per worker
            # process; capped at the shard count so tiny runs do not pay
            # for processes that would never receive a task.  The pool
            # runs under supervision: a SIGKILL'd shard worker respawns
            # the pool and re-executes the shard from its seed (shard
            # bodies are pure functions of the descriptor, so recovery
            # never changes a result bit).
            self._shard_pool = SupervisedTaskPool(
                _ShardWorkerPayload(self, source),
                max_workers=min(cfg.workers, limit),
                config=SupervisionConfig(
                    max_task_retries=cfg.max_task_retries,
                    task_deadline_s=cfg.shard_deadline_s,
                    degrade_to_thread=cfg.degrade_to_thread,
                ),
                registry=registry,
            )
            self._shard_pool.warm()
            run_span.set("process_workers", self._shard_pool.max_workers)

        top_k = {name: TopKSelector(cfg.top_k, nan_policy=cfg.nan_policy) for name in self.sites}
        stats = {name: StreamingStats() for name in self.sites}
        predictions: dict[str, dict[tuple[str, int], float]] | None = (
            {name: {} for name in self.sites} if collect_predictions else None
        )
        records: list[DockingRecord] | None = [] if collect_records else None

        executed = restored = failed = 0
        failed_shards: list[int] = []
        total_attempts = 0
        total_retries = 0
        fault_log: list[str] = []
        num_compounds = 0

        queues = _WorkStealingQueues(limit, cfg.workers)
        outcomes: dict[int, ShardOutcome] = {}
        cond = threading.Condition()
        # The reorder window bounds admitted-but-unfolded shards, so a
        # slow shard cannot let fast workers buffer the whole library.
        # Admission is by *shard index* relative to the fold frontier,
        # not by counting slots: a slot semaphore deadlocks once fast
        # workers fill every slot with far-ahead (stolen) results that
        # cannot fold until the frontier shard runs — while the frontier
        # shard's worker starves waiting for a slot.  Index-based
        # admission keeps the frontier shard admissible by construction
        # (``frontier - frontier < window``), so the fold always
        # advances and parked workers always wake.
        window = max(cfg.reorder_window_factor * cfg.workers, 2)
        admission = threading.Condition()
        frontier = 0  # shards folded so far == the index the fold loop needs next
        stop_flag = threading.Event()
        # per-worker busy seconds; each slot is written by one thread only
        busy = [0.0] * cfg.workers

        def worker(worker_index: int) -> None:
            while not stop_flag.is_set():
                shard = queues.next_for(worker_index)
                if shard is None:
                    return
                with admission:
                    while not stop_flag.is_set() and shard - frontier >= window:
                        admission.wait()
                if stop_flag.is_set():
                    return
                start, stop = bounds[shard]
                shard_started = time.perf_counter()
                try:
                    with tracer.span(self.shard_name(shard), stage="streamed_screen", parent=run_span) as span:
                        outcome = self._run_shard(shard, start, stop, source)
                        span.set("compounds", outcome.num_compounds)
                        span.set("attempts", outcome.attempts)
                except BaseException as error:  # defensive: _run_shard catches job errors
                    outcome = ShardOutcome(
                        index=shard, start=start, stop=stop, status="failed", error=str(error)
                    )
                shard_elapsed = time.perf_counter() - shard_started
                busy[worker_index] += shard_elapsed
                shard_seconds.observe(shard_elapsed)
                with cond:
                    outcomes[shard] = outcome
                    cond.notify_all()

        threads = [
            threading.Thread(target=worker, args=(w,), name=f"stream-worker-{w}", daemon=True)
            for w in range(min(cfg.workers, max(limit, 1)))
        ]
        for thread in threads:
            thread.start()

        def fold(outcome: ShardOutcome) -> None:
            nonlocal executed, restored, failed, num_compounds, total_attempts, total_retries
            total_attempts += outcome.attempts
            # attempts beyond the first — the same definition as
            # JobRunner.total_retries, so the streamed stage's retry
            # metric is comparable to every other stage's (a terminal
            # fault that exhausts the budget is not a retry)
            total_retries += max(outcome.attempts - 1, 0)
            count_retries.inc(max(outcome.attempts - 1, 0))
            fault_log.extend(outcome.faults)
            if outcome.status == "failed":
                failed += 1
                count_failed.inc()
                failed_shards.append(outcome.index)
                if cfg.on_shard_failure == "raise":
                    raise StreamShardError(outcome.index, RuntimeError(outcome.error), outcome.attempts)
                return
            if outcome.status == "restored":
                restored += 1
                count_restored.inc()
            else:
                executed += 1
                count_executed.inc()
                if self.checkpoints is not None:
                    key = outcome.checkpoint_key or self.shard_key(
                        outcome.index, self._shard_compound_ids(source, outcome.start, outcome.stop)
                    )
                    try:
                        self.checkpoints.save(
                            self.shard_name(outcome.index),
                            key,
                            {
                                "best_scores": outcome.best_scores,
                                "records": outcome.records,
                                "num_compounds": outcome.num_compounds,
                            },
                        )
                    except Exception as error:
                        logger.warning("could not checkpoint shard %d: %s", outcome.index, error)
            num_compounds += outcome.num_compounds
            count_compounds.inc(outcome.num_compounds)
            for site_name, pairs in outcome.best_scores.items():
                for compound_id, score in pairs:
                    top_k[site_name].offer(compound_id, score)
                    stats[site_name].add(score)
            if records is not None:
                records.extend(outcome.records)
            if predictions is not None:
                for record in outcome.records:
                    predictions[record.site_name][(record.compound_id, record.pose_id)] = record.fusion_pk

        def shutdown_workers() -> None:
            stop_flag.set()
            # wake any worker parked at the reorder-window admission gate
            with admission:
                admission.notify_all()
            for thread in threads:
                thread.join()

        startup_section.__exit__(None, None, None)
        try:
            for next_index in range(limit):
                # the coordinating thread's own Table 7 accounting:
                # "evaluation" while it waits on shard computation,
                # "output" while it folds/checkpoints — disjoint sections,
                # so the phases sum to at most the stage's wall time
                with timer.section("evaluation"):
                    with cond:
                        while next_index not in outcomes:
                            cond.wait()
                        outcome = outcomes.pop(next_index)
                    with admission:
                        frontier = next_index + 1
                        admission.notify_all()
                with timer.section("output"):
                    fold(outcome)
        except BaseException as error:
            # durability on the failure path: let in-flight shards finish,
            # then fold (and checkpoint) every completed shard before
            # propagating, so a resumed run only redoes what genuinely
            # never finished
            shutdown_workers()
            for index in sorted(outcomes):
                outcome = outcomes.pop(index)
                if outcome.status != "failed":
                    try:
                        fold(outcome)
                    except Exception:  # pragma: no cover - best effort
                        pass
            if isinstance(error, StreamShardError):
                error.shards_executed = executed
                error.shards_restored = restored
                error.num_shards = len(bounds)
                error.total_attempts = total_attempts
                error.total_retries = total_retries
                error.faults = list(fault_log)
            raise
        finally:
            shutdown_workers()
            if self._shard_pool is not None:
                self._shard_pool.close()
                self._shard_pool = None
            run_span.__exit__(None, None, None)
            scope.__exit__(None, None, None)

        duration = time.perf_counter() - started
        result = StreamingScreenResult(
            top_k={name: selector.ranking() for name, selector in top_k.items()},
            stats=stats,
            num_compounds=num_compounds,
            num_shards=len(bounds),
            shards_executed=executed,
            shards_restored=restored,
            shards_failed=failed,
            failed_shards=failed_shards,
            steals=queues.steals,
            total_attempts=total_attempts,
            total_retries=total_retries,
            faults=fault_log,
            duration_s=duration,
            aborted=limit < len(bounds),
            predictions=predictions,
            records=records,
        )
        registry.gauge("stream.steals").add(queues.steals)
        self._last_run = {
            "timer": timer.as_dict(),
            "busy": {index: busy[index] for index in range(len(threads))},
            "steals": queues.steals,
            "result": result,
            "duration_s": duration,
            "telemetry": telemetry,
        }
        return result

    # ------------------------------------------------------------------ #
    # run record
    # ------------------------------------------------------------------ #
    def run_record(self) -> dict:
        """Run-record document of the most recent completed :meth:`run`.

        One schema-valid document (see :mod:`repro.telemetry.runrecord`)
        carrying the streamed stage's startup/evaluation/output phase
        breakdown (Table 7, measured on the coordinating thread — the
        phases sum exactly to the stage's wall time), per-worker
        occupancy and steal counts, the metrics-registry snapshot and
        the fold's retry/fault history.
        """
        if self._last_run is None:
            raise RuntimeError("run_record() requires a completed run()")
        info = self._last_run
        result: StreamingScreenResult = info["result"]
        telemetry: Telemetry = info["telemetry"]
        stage = stage_entry(
            "streamed_screen",
            "executed",
            info["duration_s"],
            info["timer"],
            attempts=result.total_attempts,
            retries=result.total_retries,
            faults=result.faults,
            extra=result.summary(),
        )
        return build_run_record(
            "streaming_screen",
            duration_s=info["duration_s"],
            stages=[stage],
            metrics=telemetry.snapshot(),
            workers=worker_occupancy(info["busy"], info["duration_s"], steals=info["steals"]),
            trace={"num_spans": len(telemetry.tracer)},
            faults=result.faults,
        )
