"""Campaign planning: sizing the full 500-million-compound screen.

§4 of the paper: over 500 million compounds were screened against each of
the four Mpro / spike binding sites, generating and evaluating more than
5 billion docked poses; Fusion scoring was packaged into independent
4-node jobs of 2 million poses each (≈200,000 compounds), with up to 125
jobs (500 Lassen nodes) running at once.  The planner turns those numbers
into a concrete job plan and schedules it on the simulated cluster,
reproducing the campaign-level arithmetic (job counts, node-hours,
wall-clock at a given allotment) and the effect of the fault rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hpc.cluster import SimulatedCluster
from repro.hpc.faults import FaultInjector
from repro.hpc.performance import FusionThroughputModel
from repro.hpc.scheduler import Job, JobScheduler, JobState, SchedulerConfig


@dataclass
class CampaignPlan:
    """Static sizing of a screening campaign."""

    num_compounds: int
    num_targets: int
    poses_per_compound: int
    poses_per_job: int
    nodes_per_job: int

    @property
    def total_poses(self) -> int:
        """Poses to score across all targets (the paper's "over 5 billion")."""
        return self.num_compounds * self.num_targets * self.poses_per_compound

    @property
    def num_jobs(self) -> int:
        """Independent Fusion scoring jobs needed."""
        return math.ceil(self.total_poses / self.poses_per_job)

    @property
    def total_node_allocations(self) -> int:
        return self.num_jobs * self.nodes_per_job

    def describe(self) -> dict[str, float]:
        return {
            "compounds": float(self.num_compounds),
            "targets": float(self.num_targets),
            "total_poses": float(self.total_poses),
            "jobs": float(self.num_jobs),
            "nodes_per_job": float(self.nodes_per_job),
        }


@dataclass
class CampaignScheduleResult:
    """Outcome of scheduling (a sampled fraction of) the campaign."""

    plan: CampaignPlan
    jobs_scheduled: int
    jobs_completed: int
    jobs_requeued: int
    wall_clock_hours: float
    node_hours: float
    scaling_factor: float = 1.0

    @property
    def projected_wall_clock_hours(self) -> float:
        """Wall-clock projection for the full campaign at the same allotment."""
        return self.wall_clock_hours * self.scaling_factor

    @property
    def projected_node_hours(self) -> float:
        return self.node_hours * self.scaling_factor


class CampaignPlanner:
    """Plan and (statistically) schedule a paper-scale screening campaign.

    Parameters
    ----------
    throughput_model:
        Analytic single-job performance model.
    cluster_nodes:
        Size of the allotment (500 nodes at the paper's peak).
    walltime_hours:
        Scheduler wall-time limit per job (12 h on Lassen).
    """

    def __init__(
        self,
        throughput_model: FusionThroughputModel | None = None,
        cluster_nodes: int = 500,
        walltime_hours: float = 12.0,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if cluster_nodes <= 0:
            raise ValueError("cluster_nodes must be positive")
        self.throughput_model = throughput_model or FusionThroughputModel()
        self.cluster_nodes = int(cluster_nodes)
        self.walltime_hours = float(walltime_hours)
        self.fault_injector = fault_injector or FaultInjector(seed=0)

    # ------------------------------------------------------------------ #
    def plan(
        self,
        num_compounds: int = 500_000_000,
        num_targets: int = 4,
        poses_per_compound: int = 10,
        poses_per_job: int = 2_000_000,
        nodes_per_job: int = 4,
    ) -> CampaignPlan:
        """Build the static plan (§4's job arithmetic)."""
        if num_compounds <= 0 or num_targets <= 0:
            raise ValueError("num_compounds and num_targets must be positive")
        return CampaignPlan(
            num_compounds=int(num_compounds),
            num_targets=int(num_targets),
            poses_per_compound=int(poses_per_compound),
            poses_per_job=int(poses_per_job),
            nodes_per_job=int(nodes_per_job),
        )

    def schedule(
        self,
        plan: CampaignPlan,
        max_jobs_simulated: int = 500,
        seed: int = 0,
    ) -> CampaignScheduleResult:
        """Schedule up to ``max_jobs_simulated`` jobs and extrapolate to the full plan.

        The full campaign has thousands of jobs; simulating a statistically
        representative sample keeps the discrete-event simulation fast
        while preserving the fault/requeue and queueing behaviour.  The
        result carries the scaling factor used for projection.
        """
        if max_jobs_simulated <= 0:
            raise ValueError("max_jobs_simulated must be positive")
        jobs_to_run = min(plan.num_jobs, int(max_jobs_simulated))
        estimate = self.throughput_model.estimate(
            num_poses=plan.poses_per_job, num_nodes=plan.nodes_per_job
        )
        cluster = SimulatedCluster(num_nodes=self.cluster_nodes)
        scheduler = JobScheduler(
            cluster,
            SchedulerConfig(walltime_limit_seconds=self.walltime_hours * 3600.0),
            FaultInjector(failure_rates=self.fault_injector.failure_rates, seed=seed),
        )
        for index in range(jobs_to_run):
            scheduler.submit(
                Job(
                    name=f"fusion-{index:06d}",
                    num_nodes=plan.nodes_per_job,
                    duration_seconds=estimate.total_minutes * 60.0,
                    max_retries=4,
                )
            )
        scheduler.run()
        completed = sum(1 for s in scheduler.states().values() if s is JobState.COMPLETED)
        requeued = sum(1 for j in scheduler.jobs.values() if j.attempts > 1)
        wall_hours = scheduler.makespan() / 3600.0
        node_hours = sum(
            (j.end_time - j.submit_time) / 3600.0 * j.num_nodes
            for j in scheduler.jobs.values()
            if j.end_time == j.end_time
        )
        scaling = plan.num_jobs / jobs_to_run if jobs_to_run else 1.0
        return CampaignScheduleResult(
            plan=plan,
            jobs_scheduled=jobs_to_run,
            jobs_completed=completed,
            jobs_requeued=requeued,
            wall_clock_hours=wall_hours,
            node_hours=node_hours,
            scaling_factor=scaling,
        )

    # ------------------------------------------------------------------ #
    def paper_campaign_summary(self) -> dict[str, float]:
        """Headline numbers of the paper's campaign under this planner's model."""
        plan = self.plan()
        estimate = self.throughput_model.estimate(num_poses=plan.poses_per_job, num_nodes=plan.nodes_per_job)
        peak = self.throughput_model.peak_estimate(parallel_jobs=self.cluster_nodes // plan.nodes_per_job)
        return {
            "total_poses_billions": plan.total_poses / 1e9,
            "total_jobs": float(plan.num_jobs),
            "single_job_hours": estimate.total_hours,
            "peak_poses_per_second": peak.poses_per_second,
            "peak_compounds_per_hour": peak.compounds_per_hour,
            "node_hours_total": plan.num_jobs * plan.nodes_per_job * estimate.total_hours,
        }
