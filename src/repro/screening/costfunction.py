"""Compound-selection cost function.

§5 of the paper: the Fusion prediction was one of three energy
calculations (Vina, MM/GBSA, Fusion) combined by a hand-tailored cost
function, together with drug-likeness / pharmacokinetic considerations,
to decide which compounds to purchase for experimental evaluation.  The
exact weights are in the companion biology paper; here a transparent
weighted sum of normalized scores plus a drug-likeness bonus reproduces
the role the cost function plays in the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.descriptors import compute_descriptors, lipinski_violations
from repro.docking.conveyorlc import DockingDatabase


@dataclass
class CompoundScore:
    """Combined score of one compound against one binding site."""

    compound_id: str
    site_name: str
    combined: float
    fusion_pk: float
    vina_score: float
    mmgbsa_score: float
    qed_like: float
    lipinski_violations: int


@dataclass
class CompoundCostFunction:
    """Weighted combination of the three affinity estimates plus drug-likeness.

    Attributes
    ----------
    fusion_weight / vina_weight / mmgbsa_weight:
        Relative weights of the (z-score normalized) affinity estimates.
        Vina and MM/GBSA scores are negated so that "larger is better"
        uniformly.
    druglikeness_weight:
        Weight of the QED-like descriptor score.
    lipinski_penalty:
        Penalty per Lipinski violation.
    """

    fusion_weight: float = 0.5
    vina_weight: float = 0.25
    mmgbsa_weight: float = 0.25
    druglikeness_weight: float = 0.35
    lipinski_penalty: float = 0.25
    normalize: bool = True
    _stats: dict = field(default_factory=dict, init=False, repr=False)

    # ------------------------------------------------------------------ #
    def score_site(self, database: DockingDatabase, site_name: str) -> list[CompoundScore]:
        """Score every compound docked against ``site_name``."""
        compounds = database.compounds(site_name)
        fusion, vina, mmgbsa, qed, lipinski = [], [], [], [], []
        for compound_id in compounds:
            best_vina = database.best_pose(site_name, compound_id, by="vina")
            best_fusion = database.best_pose(site_name, compound_id, by="fusion")
            best_mmgbsa = database.best_pose(site_name, compound_id, by="mmgbsa")
            vina.append(best_vina.vina_score if best_vina else np.nan)
            fusion.append(best_fusion.fusion_pk if best_fusion else np.nan)
            mmgbsa.append(best_mmgbsa.mmgbsa_score if best_mmgbsa else np.nan)
            reference = best_vina or best_fusion or best_mmgbsa
            descriptors = compute_descriptors(reference.pose) if reference else {}
            qed.append(descriptors.get("qed_like", 0.0))
            lipinski.append(lipinski_violations(descriptors) if descriptors else 4)

        fusion_n = self._normalize(np.array(fusion))
        vina_n = self._normalize(-np.array(vina))  # lower (more negative) Vina = better
        mmgbsa_n = self._normalize(-np.array(mmgbsa))
        scores: list[CompoundScore] = []
        for index, compound_id in enumerate(compounds):
            combined = (
                self.fusion_weight * fusion_n[index]
                + self.vina_weight * vina_n[index]
                + self.mmgbsa_weight * mmgbsa_n[index]
                + self.druglikeness_weight * qed[index]
                - self.lipinski_penalty * lipinski[index]
            )
            scores.append(
                CompoundScore(
                    compound_id=compound_id,
                    site_name=site_name,
                    combined=float(combined),
                    fusion_pk=float(fusion[index]) if np.isfinite(fusion[index]) else float("nan"),
                    vina_score=float(vina[index]) if np.isfinite(vina[index]) else float("nan"),
                    mmgbsa_score=float(mmgbsa[index]) if np.isfinite(mmgbsa[index]) else float("nan"),
                    qed_like=float(qed[index]),
                    lipinski_violations=int(lipinski[index]),
                )
            )
        return sorted(scores, key=lambda s: -s.combined)

    def select_top(self, database: DockingDatabase, site_name: str, top_n: int) -> list[CompoundScore]:
        """The ``top_n`` compounds a campaign would purchase for this site."""
        if top_n <= 0:
            raise ValueError("top_n must be positive")
        return self.score_site(database, site_name)[: int(top_n)]

    # ------------------------------------------------------------------ #
    def _normalize(self, values: np.ndarray) -> np.ndarray:
        """Z-score normalize, treating missing values as the mean (no contribution)."""
        values = np.asarray(values, dtype=np.float64)
        finite = np.isfinite(values)
        if not self.normalize:
            return np.where(finite, values, 0.0)
        if finite.sum() < 2:
            return np.zeros_like(values)
        mean = values[finite].mean()
        std = values[finite].std()
        if std == 0:
            return np.zeros_like(values)
        out = (values - mean) / std
        out[~finite] = 0.0
        return out
