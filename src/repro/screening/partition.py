"""Work partitioning across jobs and MPI ranks.

The paper's screening formulation: the full pose set is cut into
independent jobs of ~2 million poses (≈200,000 compounds); within a job,
"we simply divide the set of compounds assigned to the job by the number
of ranks and assign each rank the subset with its index".
"""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


def partition_evenly(items: Sequence[T], num_parts: int) -> list[list[T]]:
    """Split ``items`` into ``num_parts`` contiguous chunks of near-equal size.

    Sizes differ by at most one; empty chunks are produced when there are
    more parts than items (a rank with no work still participates in the
    collectives, as in the real MPI program).
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    items = list(items)
    n = len(items)
    base, extra = divmod(n, num_parts)
    chunks: list[list[T]] = []
    start = 0
    for part in range(num_parts):
        size = base + (1 if part < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def partition_poses_into_jobs(
    items: Sequence[T],
    poses_per_job: int = 2_000_000,
) -> list[list[T]]:
    """Split a pose list into independent jobs of at most ``poses_per_job`` poses."""
    if poses_per_job <= 0:
        raise ValueError("poses_per_job must be positive")
    items = list(items)
    return [items[start : start + poses_per_job] for start in range(0, len(items), poses_per_job)] or [[]]
