"""Work partitioning across jobs and MPI ranks.

The paper's screening formulation: the full pose set is cut into
independent jobs of ~2 million poses (≈200,000 compounds); within a job,
"we simply divide the set of compounds assigned to the job by the number
of ranks and assign each rank the subset with its index".
"""

from __future__ import annotations

import operator
from typing import Iterable, TypeVar

T = TypeVar("T")


def partition_evenly(items: Iterable[T], num_parts: int) -> list[list[T]]:
    """Split ``items`` into ``num_parts`` contiguous chunks of near-equal size.

    Sizes differ by at most one; empty chunks are produced when there are
    more parts than items (a rank with no work still participates in the
    collectives, as in the real MPI program), and empty input yields
    ``num_parts`` empty chunks.  ``num_parts`` must be a positive
    integer — a fractional rank count is always a caller bug, so it
    raises instead of silently truncating.
    """
    try:
        num_parts = operator.index(num_parts)
    except TypeError:
        raise ValueError(f"num_parts must be an integer, got {num_parts!r}") from None
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    items = list(items)
    n = len(items)
    base, extra = divmod(n, num_parts)
    chunks: list[list[T]] = []
    start = 0
    for part in range(num_parts):
        size = base + (1 if part < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def shard_bounds(total: int, shard_size: int) -> list[tuple[int, int]]:
    """Half-open ``(start, stop)`` index ranges cutting ``total`` items into shards.

    The streaming screening engine iterates a (possibly lazily
    generated) library through these bounds; concatenating the ranges in
    order reproduces ``range(total)`` exactly, so every compound belongs
    to exactly one shard regardless of ``shard_size`` (the shard-
    partitioning property tests pin this down).  Empty input yields no
    shards.
    """
    try:
        total = operator.index(total)
        shard_size = operator.index(shard_size)
    except TypeError:
        raise ValueError(f"total and shard_size must be integers, got {total!r}, {shard_size!r}") from None
    if total < 0:
        raise ValueError("total must be non-negative")
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    return [(start, min(start + shard_size, total)) for start in range(0, total, shard_size)]


def partition_poses_into_jobs(
    items: Sequence[T],
    poses_per_job: int = 2_000_000,
) -> list[list[T]]:
    """Split a pose list into independent jobs of at most ``poses_per_job`` poses."""
    if poses_per_job <= 0:
        raise ValueError("poses_per_job must be positive")
    items = list(items)
    return [items[start : start + poses_per_job] for start in range(0, len(items), poses_per_job)] or [[]]
