"""High-throughput distributed Fusion screening pipeline."""

from repro.screening.partition import partition_evenly, partition_poses_into_jobs, shard_bounds
from repro.screening.job import FusionScoringJob, JobResult
from repro.screening.output import read_predictions, read_topk, write_job_output, write_topk
from repro.screening.costfunction import CompoundCostFunction, CompoundScore
from repro.screening.throughput import figure4_series, table7_rows
from repro.screening.pipeline import CampaignConfig, CampaignResult, ScreeningCampaign
from repro.screening.planner import CampaignPlan, CampaignPlanner, CampaignScheduleResult

#: Lazily re-exported from :mod:`repro.screening.stream` (PEP 562).  The
#: stream module imports ``repro.runtime`` (checkpoints, retry policy)
#: while ``repro.runtime.executor`` imports ``repro.screening.job`` — an
#: eager import here would make ``import repro.runtime`` fail as a first
#: import with a partially-initialized-module error.
_STREAM_EXPORTS = frozenset(
    {
        "ShardOutcome",
        "StreamConfig",
        "StreamingScreen",
        "StreamingScreenResult",
        "StreamingStats",
        "StreamShardError",
        "TopKEntry",
        "TopKSelector",
        "topk_by_full_sort",
    }
)


def __getattr__(name: str):
    if name in _STREAM_EXPORTS:
        from repro.screening import stream

        return getattr(stream, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "partition_evenly",
    "partition_poses_into_jobs",
    "shard_bounds",
    "FusionScoringJob",
    "JobResult",
    "write_job_output",
    "read_predictions",
    "CompoundCostFunction",
    "CompoundScore",
    "table7_rows",
    "figure4_series",
    "CampaignConfig",
    "CampaignResult",
    "ScreeningCampaign",
    "CampaignPlan",
    "CampaignPlanner",
    "CampaignScheduleResult",
    "ShardOutcome",
    "StreamConfig",
    "StreamingScreen",
    "StreamingScreenResult",
    "StreamingStats",
    "StreamShardError",
    "TopKEntry",
    "TopKSelector",
    "topk_by_full_sort",
    "write_topk",
    "read_topk",
]
