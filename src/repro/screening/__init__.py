"""High-throughput distributed Fusion screening pipeline."""

from repro.screening.partition import partition_evenly, partition_poses_into_jobs
from repro.screening.job import FusionScoringJob, JobResult
from repro.screening.output import read_predictions, write_job_output
from repro.screening.costfunction import CompoundCostFunction, CompoundScore
from repro.screening.throughput import figure4_series, table7_rows
from repro.screening.pipeline import CampaignConfig, CampaignResult, ScreeningCampaign
from repro.screening.planner import CampaignPlan, CampaignPlanner, CampaignScheduleResult

__all__ = [
    "partition_evenly",
    "partition_poses_into_jobs",
    "FusionScoringJob",
    "JobResult",
    "write_job_output",
    "read_predictions",
    "CompoundCostFunction",
    "CompoundScore",
    "table7_rows",
    "figure4_series",
    "CampaignConfig",
    "CampaignResult",
    "ScreeningCampaign",
    "CampaignPlan",
    "CampaignPlanner",
    "CampaignScheduleResult",
]
