"""Distributed Fusion scoring job (Figure 3 of the paper).

A job receives a set of docked poses for one binding site, divides them
per node and per rank, and each rank runs parallel data loaders that
featurize poses and feed batches to its model instance.  When evaluation
finishes, identifiers and predictions are combined with ``allgather`` and
written in parallel to the HDF5-like store.  The in-process execution
uses the same code structure (Horovod context over a local MPI
communicator, per-rank data loaders, allgather, partitioned output) at a
vastly smaller scale; the analytic performance model provides the
paper-scale timing (Table 7, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.chem.complexes import ProteinLigandComplex
from repro.chem.protein import BindingSite
from repro.docking.conveyorlc import DockingRecord
from repro.featurize.engine import FeaturePipeline
from repro.featurize.pipeline import ComplexFeaturizer, collate_complexes
from repro.hpc.h5store import H5Store
from repro.hpc.horovod import HorovodContext
from repro.hpc.mpi import RankContext, run_spmd
from repro.hpc.performance import FusionThroughputModel, PerformanceEstimate
from repro.nn.dataloader import DataLoader, InMemoryDataset
from repro.nn.module import Module
from repro.nn.tensor import no_grad
from repro.screening.output import write_job_output
from repro.screening.partition import partition_evenly
from repro.utils.timer import Timer


@dataclass
class JobResult:
    """Output of one Fusion scoring job."""

    job_name: str
    site_name: str
    predictions: dict[tuple[str, int], float]
    store: H5Store
    timings: dict[str, float]
    num_ranks: int
    failed: bool = False
    failure_mode: str = ""
    modelled: PerformanceEstimate | None = None

    @property
    def num_poses(self) -> int:
        return len(self.predictions)


@dataclass
class FusionScoringJob:
    """Score docked poses of one binding site with a Fusion model.

    Parameters
    ----------
    model:
        A trained model with ``forward(batch) -> Tensor``; evaluated in
        inference mode on every rank.
    featurizer:
        Complex featurizer shared by the per-rank data loaders.
    site:
        The binding site the poses belong to.
    records:
        Docked poses to score (``DockingRecord`` objects; their
        ``fusion_pk`` fields are filled in place).
    num_nodes / gpus_per_node:
        Job geometry; ranks = nodes x GPUs (4-node, 16-rank jobs in the
        paper).
    batch_size_per_rank:
        Poses loaded per batch on each rank (up to 56 on a 16 GB V100).
    num_data_workers:
        Pre-fetch workers per rank (12 in the production configuration).
    job_name:
        Name used in the output layout and the scheduler.
    barrier_timeout:
        Seconds a rank waits at a collective before failing the job —
        short in tests, raised for long campaign-scale jobs.
    """

    model: Module
    featurizer: ComplexFeaturizer | FeaturePipeline
    site: BindingSite
    records: Sequence[DockingRecord]
    num_nodes: int = 4
    gpus_per_node: int = 4
    batch_size_per_rank: int = 8
    num_data_workers: int = 0
    job_name: str = "fusion-job-0"
    barrier_timeout: float = 120.0
    throughput_model: FusionThroughputModel = field(default_factory=FusionThroughputModel)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.gpus_per_node <= 0:
            raise ValueError("num_nodes and gpus_per_node must be positive")
        if self.batch_size_per_rank <= 0:
            raise ValueError("batch_size_per_rank must be positive")

    # ------------------------------------------------------------------ #
    @property
    def num_ranks(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def modelled_estimate(self, num_poses: int | None = None) -> PerformanceEstimate:
        """Paper-scale timing of this job geometry from the analytic model."""
        poses = len(self.records) if num_poses is None else int(num_poses)
        return self.throughput_model.estimate(
            num_poses=max(poses, 1),
            num_nodes=self.num_nodes,
            batch_size_per_rank=min(self.batch_size_per_rank, self.throughput_model.max_batch_size()),
        )

    # ------------------------------------------------------------------ #
    def run(self, use_threads: bool | None = None) -> JobResult:
        """Execute the job in-process across simulated MPI ranks.

        Ranks communicate through MPI-style collectives, so multi-rank jobs
        run their ranks on a thread pool; a single-rank job runs inline.
        ``use_threads`` may be forced, but multi-rank jobs require threads
        (the collectives rendezvous) and ignore ``False``.
        """
        timer = Timer()
        records = list(self.records)
        store = H5Store()

        with timer.section("startup"):
            # rank partitioning and model replication (broadcast) happen here
            per_rank = partition_evenly(records, self.num_ranks)
            self.model.eval()

        def rank_program(ctx: RankContext):
            hvd = HorovodContext(ctx, gpus_per_node=self.gpus_per_node)
            hvd.broadcast_parameters(self.model, root_rank=0)
            my_records = per_rank[hvd.rank()]
            ids: list[str] = []
            pose_ids: list[int] = []
            predictions: list[float] = []
            if my_records:
                # featurize the rank's slice through the featurizer's batch
                # entry point: the vectorized engine featurizes (and caches)
                # whole pose batches, while the scalar reference loops —
                # either way the samples are bit-identical
                samples = self.featurizer.featurize_many(
                    [
                        ProteinLigandComplex(
                            site=self.site,
                            ligand=record.pose,
                            complex_id=record.compound_id,
                            pose_id=record.pose_id,
                        )
                        for record in my_records
                    ]
                )
                loader = DataLoader(
                    InMemoryDataset(samples),
                    batch_size=self.batch_size_per_rank,
                    shuffle=False,
                    num_workers=self.num_data_workers,
                    collate_fn=collate_complexes,
                )
                predict = getattr(self.model, "predict_batch", None)
                with no_grad():
                    for batch in loader:
                        if predict is not None:
                            outputs = predict(batch)
                        else:
                            outputs = self.model(batch).numpy()
                        ids.extend(batch["ids"])
                        pose_ids.extend(int(p) for p in batch["pose_ids"])
                        predictions.extend(float(v) for v in outputs)
            # gather identifiers and predictions across ranks (Figure 3)
            gathered = hvd.allgather_object((ids, pose_ids, predictions), tag="job-results")
            return gathered if hvd.rank() == 0 else None

        threads_needed = self.num_ranks > 1 if use_threads is None else (use_threads or self.num_ranks > 1)
        with timer.section("evaluation"):
            results = run_spmd(
                rank_program,
                self.num_ranks,
                use_threads=threads_needed,
                barrier_timeout=self.barrier_timeout,
            )

        gathered = results[0]
        all_ids: list[str] = []
        all_pose_ids: list[int] = []
        all_predictions: list[float] = []
        for ids, pose_ids, predictions in gathered:
            all_ids.extend(ids)
            all_pose_ids.extend(pose_ids)
            all_predictions.extend(predictions)

        with timer.section("output"):
            # each rank writes its own slice in the real system; the slices are
            # recombined here into one store per job
            rank_slices = partition_evenly(list(zip(all_ids, all_pose_ids, all_predictions)), self.num_ranks)
            for rank, chunk in enumerate(rank_slices):
                if not chunk:
                    continue
                ids, pose_ids, predictions = zip(*chunk)
                write_job_output(
                    store,
                    self.site.name,
                    list(ids),
                    list(pose_ids),
                    np.array(predictions),
                    job_name=f"{self.job_name}/rank{rank}",
                    timings=timer.as_dict(),
                )

        predictions_map = {
            (cid, pid): pred for cid, pid, pred in zip(all_ids, all_pose_ids, all_predictions)
        }
        # annotate the docking records in place so downstream selection sees the ML score
        for record in records:
            key = (record.compound_id, record.pose_id)
            if key in predictions_map:
                record.fusion_pk = predictions_map[key]

        return JobResult(
            job_name=self.job_name,
            site_name=self.site.name,
            predictions=predictions_map,
            store=store,
            timings=timer.as_dict(),
            num_ranks=self.num_ranks,
            modelled=self.modelled_estimate(),
        )
