"""Throughput reporting: Table 7 rows and Figure 4 series."""

from __future__ import annotations

from typing import Sequence

from repro.hpc.performance import FusionThroughputModel


def table7_rows(
    model: FusionThroughputModel | None = None,
    num_poses: int = 2_000_000,
    num_nodes: int = 4,
    batch_size_per_rank: int = 56,
    peak_jobs: int = 125,
) -> dict[str, dict[str, float]]:
    """Reproduce the rows of Table 7: single-job and peak throughput."""
    model = model or FusionThroughputModel()
    single = model.estimate(num_poses=num_poses, num_nodes=num_nodes, batch_size_per_rank=batch_size_per_rank)
    peak = model.peak_estimate(
        parallel_jobs=peak_jobs,
        num_poses_per_job=num_poses,
        num_nodes_per_job=num_nodes,
        batch_size_per_rank=batch_size_per_rank,
    )
    return {
        "single_job": {
            "avg_startup_minutes": single.startup_minutes,
            "avg_evaluation_minutes": single.evaluation_minutes,
            "avg_file_output_minutes": single.output_minutes,
            "poses_per_second": single.poses_per_second,
            "poses_per_hour": single.poses_per_hour,
            "compounds_per_hour": single.compounds_per_hour,
        },
        "peak": {
            "avg_startup_minutes": peak.startup_minutes,
            "avg_evaluation_minutes": peak.evaluation_minutes,
            "avg_file_output_minutes": peak.output_minutes,
            "poses_per_second": peak.poses_per_second,
            "poses_per_hour": peak.poses_per_hour,
            "compounds_per_hour": peak.compounds_per_hour,
        },
    }


def figure4_series(
    model: FusionThroughputModel | None = None,
    num_poses: int = 2_000_000,
    node_counts: Sequence[int] = (1, 2, 4, 8),
    batch_sizes: Sequence[int] = (12, 23, 56),
) -> dict[int, list[tuple[int, float]]]:
    """Strong-scaling series of Figure 4.

    Returns ``{batch_size: [(nodes, total_minutes), ...]}`` — run time of a
    single 2-million-pose job as a function of node count, one series per
    per-rank batch size.
    """
    model = model or FusionThroughputModel()
    series: dict[int, list[tuple[int, float]]] = {}
    for batch in batch_sizes:
        rows = []
        for nodes in node_counts:
            estimate = model.estimate(num_poses=num_poses, num_nodes=nodes, batch_size_per_rank=batch)
            rows.append((int(nodes), float(estimate.total_minutes)))
        series[int(batch)] = rows
    return series


def speedup_summary(model: FusionThroughputModel | None = None) -> dict[str, float]:
    """Fusion-vs-physics speedups quoted in §4.2 (2.7x over Vina, 403x over MM/GBSA)."""
    model = model or FusionThroughputModel()
    return {
        "fusion_vs_vina": model.speedup_vs_vina(),
        "fusion_vs_mmgbsa": model.speedup_vs_mmgbsa(),
    }
