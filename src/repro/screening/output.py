"""Job output format mirroring ConveyorLC's CDT3Docking layout.

Each scoring job writes, per binding site, parallel arrays of compound
identifiers, pose ids and predicted binding affinities, plus throughput
metadata as attributes — the same information ConveyorLC emits, so the
downstream selection tooling can consume physics and ML scores uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.hpc.h5store import H5Store


def write_job_output(
    store: H5Store,
    site_name: str,
    compound_ids: list[str],
    pose_ids: list[int],
    predictions: np.ndarray,
    job_name: str = "job0",
    timings: dict[str, float] | None = None,
) -> None:
    """Write one job's predictions for one site into ``store``."""
    if not (len(compound_ids) == len(pose_ids) == len(predictions)):
        raise ValueError("compound_ids, pose_ids and predictions must be aligned")
    prefix = f"dock/{site_name}/{job_name}"
    store.write(f"{prefix}/compound_ids", np.array(compound_ids, dtype="U"))
    store.write(f"{prefix}/pose_ids", np.array(pose_ids, dtype=np.int64))
    store.write(f"{prefix}/fusion_pk", np.asarray(predictions, dtype=np.float64))
    for key, value in (timings or {}).items():
        store.write_attr(prefix, key, float(value))


def write_topk(
    store: H5Store,
    site_name: str,
    compound_ids: list[str],
    scores: np.ndarray,
    stats: dict[str, float] | None = None,
) -> None:
    """Write one site's streaming top-K table (rank order) plus summary stats.

    The streaming engine's end-of-run artifact: parallel ``compound_ids``
    / ``score`` arrays already in ranking order, with the exact
    streaming statistics (count/min/max/mean/std) as attributes — the
    bounded-memory counterpart of the full per-pose prediction layout
    written by :func:`write_job_output`.
    """
    if len(compound_ids) != len(scores):
        raise ValueError("compound_ids and scores must be aligned")
    prefix = f"topk/{site_name}"
    store.write(f"{prefix}/compound_ids", np.array(compound_ids, dtype="U"))
    store.write(f"{prefix}/score", np.asarray(scores, dtype=np.float64))
    for key, value in (stats or {}).items():
        store.write_attr(prefix, key, float(value))


def read_topk(store: H5Store, site_name: str) -> tuple[list[str], np.ndarray]:
    """Read one site's top-K table back as ``(compound_ids, scores)``."""
    prefix = f"topk/{site_name}"
    ids = store.read(f"{prefix}/compound_ids")
    scores = store.read(f"{prefix}/score")
    return [str(cid) for cid in ids], np.asarray(scores, dtype=np.float64)


def read_predictions(store: H5Store, site_name: str) -> dict[tuple[str, int], float]:
    """Read every job's predictions for a site back into a dictionary."""
    out: dict[tuple[str, int], float] = {}
    prefix = f"dock/{site_name}"
    for path, preds in store.datasets_under(prefix):
        if not path.endswith("/fusion_pk"):
            continue
        base = path[: -len("/fusion_pk")]
        ids = store.read(f"{base}/compound_ids")
        poses = store.read(f"{base}/pose_ids")
        for cid, pid, pred in zip(ids, poses, preds):
            out[(str(cid), int(pid))] = float(pred)
    return out
