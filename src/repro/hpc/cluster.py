"""Simulated compute cluster with Lassen-like node specifications."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUSpec:
    """A GPU model description."""

    name: str = "V100"
    memory_gb: float = 16.0
    peak_tflops: float = 7.0  # FP32-ish sustained throughput used for FLOPS accounting


@dataclass(frozen=True)
class NodeSpec:
    """Per-node hardware description."""

    cpu_cores: int = 44
    cpu_frequency_ghz: float = 3.45
    gpus_per_node: int = 4
    gpu: GPUSpec = field(default_factory=GPUSpec)
    memory_gb: float = 256.0

    @property
    def node_tflops(self) -> float:
        return self.gpus_per_node * self.gpu.peak_tflops


#: The Lassen node description from §3.2 of the paper.
LASSEN_NODE = NodeSpec()


@dataclass
class NodeAllocation:
    """A set of node indices granted to one job."""

    job_name: str
    node_ids: tuple[int, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)


class SimulatedCluster:
    """Tracks node allocation on a simulated cluster.

    Parameters
    ----------
    num_nodes:
        Cluster size (Lassen has 792 GPU nodes; tests use much smaller
        clusters).
    node_spec:
        Per-node hardware description.
    """

    def __init__(self, num_nodes: int = 792, node_spec: NodeSpec = LASSEN_NODE) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = int(num_nodes)
        self.node_spec = node_spec
        self._free: set[int] = set(range(self.num_nodes))
        self._allocations: dict[str, NodeAllocation] = {}

    # ------------------------------------------------------------------ #
    @property
    def free_nodes(self) -> int:
        return len(self._free)

    @property
    def busy_nodes(self) -> int:
        return self.num_nodes - self.free_nodes

    @property
    def total_tflops(self) -> float:
        """Aggregate GPU throughput of the whole cluster."""
        return self.num_nodes * self.node_spec.node_tflops

    def allocation_of(self, job_name: str) -> NodeAllocation | None:
        return self._allocations.get(job_name)

    # ------------------------------------------------------------------ #
    def can_allocate(self, num_nodes: int) -> bool:
        return 0 < num_nodes <= self.free_nodes

    def allocate(self, job_name: str, num_nodes: int) -> NodeAllocation:
        """Grant ``num_nodes`` free nodes to ``job_name``."""
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if job_name in self._allocations:
            raise ValueError(f"job '{job_name}' already holds an allocation")
        if num_nodes > self.free_nodes:
            raise RuntimeError(
                f"cannot allocate {num_nodes} nodes; only {self.free_nodes} free"
            )
        chosen = tuple(sorted(self._free)[:num_nodes])
        self._free.difference_update(chosen)
        allocation = NodeAllocation(job_name=job_name, node_ids=chosen)
        self._allocations[job_name] = allocation
        return allocation

    def release(self, job_name: str) -> None:
        """Return a job's nodes to the free pool (idempotent)."""
        allocation = self._allocations.pop(job_name, None)
        if allocation is not None:
            self._free.update(allocation.node_ids)

    def utilization(self) -> float:
        """Fraction of nodes currently allocated."""
        return self.busy_nodes / self.num_nodes
